#!/usr/bin/env python3
"""Replay a Linux-kernel-like membership trace: IBBE-SGX vs HE.

A runnable miniature of the paper's Fig. 9 experiment: synthesize a trace
matched to the kernel-history statistics (scaled down), replay it against
the full IBBE-SGX system at several partition sizes and against the
HE-PKI baseline, and print the administrator totals and mean user
decryption times.

Usage: python examples/trace_replay.py [scale]
       (scale defaults to 0.005 ≈ 217 membership operations)
"""

import sys

from repro.baselines import HePkiScheme, HybridGroupManager
from repro.bench import format_seconds
from repro.crypto.rng import DeterministicRng
from repro import quickstart_system
from repro.workloads import (
    HybridReplayAdapter,
    IbbeSgxReplayAdapter,
    KernelTraceConfig,
    ReplayEngine,
    synthesize_kernel_trace,
)
from repro.workloads.synthetic import trace_stats


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    trace = synthesize_kernel_trace(KernelTraceConfig(scale=scale))
    print("trace:", trace_stats(trace).describe())

    print(f"\n{'configuration':<16} {'admin total':>12} {'mean decrypt':>13}")
    for capacity in (4, 8, 16):
        system = quickstart_system(
            partition_capacity=capacity, params="toy64",
            rng=DeterministicRng(f"replay{capacity}"),
        )
        engine = ReplayEngine(IbbeSgxReplayAdapter(system), group_id="g",
                              decrypt_sample_every=25)
        report = engine.run(trace)
        print(f"{'IBBE-SGX/' + str(capacity):<16} "
              f"{format_seconds(report.admin_seconds):>12} "
              f"{format_seconds(report.mean_decrypt_seconds):>13}")

    manager = HybridGroupManager(HePkiScheme(rng=DeterministicRng("he-k")),
                                 rng=DeterministicRng("he"))
    engine = ReplayEngine(HybridReplayAdapter(manager), group_id="g",
                          decrypt_sample_every=25)
    report = engine.run(trace)
    print(f"{'HE-PKI':<16} {format_seconds(report.admin_seconds):>12} "
          f"{format_seconds(report.mean_decrypt_seconds):>13}")
    print("\n(the paper's Fig. 9: IBBE-SGX ~1 order of magnitude faster "
          "for the administrator; decrypt time grows with partition size)")


if __name__ == "__main__":
    main()
