#!/usr/bin/env python3
"""Multi-administrator auditing with a hash-chained operation log.

Demonstrates the paper's third future-work avenue (§VIII): certifying
blocks of membership-operation logs "through blockchain-like technologies"
— realized here as a hash-chained, admin-signed log with checkpoints.

Two administrators share a group; every membership change is appended to
the chain; a checkpoint certifies the prefix; and a tampering attempt by
the storage provider is detected on audit.

Usage: python examples/multi_admin_oplog.py
"""

from dataclasses import replace

from repro import quickstart_system
from repro.core.oplog import LoggedAdministrator, OperationLog
from repro.crypto import ecdsa
from repro.crypto.rng import DeterministicRng
from repro.errors import AuthenticationError


def main() -> None:
    rng = DeterministicRng("oplog-example")
    system = quickstart_system(partition_capacity=4, params="toy64",
                               rng=rng)

    keys = {
        "alice-admin": ecdsa.generate_keypair(rng),
        "bob-admin": ecdsa.generate_keypair(rng),
    }
    log = OperationLog({n: k.public_key() for n, k in keys.items()})
    alice = LoggedAdministrator(system.admin, log, "alice-admin",
                                keys["alice-admin"])
    bob = LoggedAdministrator(system.admin, log, "bob-admin",
                              keys["bob-admin"])

    alice.create_group("ops", ["u1", "u2", "u3", "u4"])
    bob.add_user("ops", "u5")
    alice.remove_user("ops", "u2")
    bob.rekey("ops")

    log.verify_chain()
    print(f"operation log: {len(log)} entries, chain verified ✓")
    for entry in log.entries():
        print(f"  #{entry.index} {entry.kind:<7} {entry.user or '-':<4} "
              f"by {entry.admin_id}")

    checkpoint = bob.log.checkpoint("bob-admin", keys["bob-admin"])
    log.verify_checkpoint(checkpoint)
    print(f"checkpoint at #{checkpoint.up_to_index} certified by "
          f"{checkpoint.admin_id} ✓")

    # A malicious storage provider rewrites history: swap the revocation
    # for an addition.  The chain audit catches it.
    entries = log.entries()
    forged = replace(entries[2], kind="add")
    try:
        log.verify_chain(entries[:2] + [forged] + entries[3:])
        raise SystemExit("BUG: forged history passed the audit")
    except AuthenticationError as exc:
        print(f"tampered history rejected: {exc} ✓")

    # The group state reflects the real history.
    print("final members:", ", ".join(sorted(system.admin.members("ops"))))


if __name__ == "__main__":
    main()
