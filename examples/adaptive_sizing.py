#!/usr/bin/env python3
"""Adaptive partition sizing — the paper's first future-work avenue.

§IV-C leaves the partition size as a deployment-time constant and §VIII
suggests "dynamically adapt[ing] the partition sizes based on the
undergoing workload".  This demo runs two workload phases against an
:class:`AdaptiveAdministrator`:

1. a *decrypt-heavy* phase (many clients, few revocations) — the policy
   shrinks partitions to cut the quadratic client cost;
2. a *churn-heavy* phase (constant revocations, few reads) — the policy
   grows partitions to cut the per-revocation re-key fan-out.

Usage: python examples/adaptive_sizing.py
"""

from repro import quickstart_system
from repro.core.adaptive import AdaptiveAdministrator, AdaptivePolicy
from repro.crypto.rng import DeterministicRng


def main() -> None:
    system = quickstart_system(
        partition_capacity=8, params="toy64", system_bound=32,
        rng=DeterministicRng("adaptive-demo"), auto_repartition=False,
    )
    policy = AdaptivePolicy(min_capacity=2, max_capacity=32,
                            hysteresis=1.3)
    admin = AdaptiveAdministrator(system.admin, policy, review_every=8)

    members = [f"u{i}" for i in range(24)]
    admin.create_group("g", members)
    state = system.admin.group_state("g")
    print(f"start: capacity {state.table.capacity}, "
          f"{state.table.partition_count} partitions")

    # Phase 1: read-heavy — lots of client decryptions, trickle of joins.
    print("\nphase 1: decrypt-heavy workload")
    for i in range(16):
        admin.record_decrypt("g", count=40)
        admin.add_user("g", f"reader{i}")
    state = system.admin.group_state("g")
    print(f"  capacity now {state.table.capacity} "
          f"({state.table.partition_count} partitions, "
          f"{admin.resizes} resizes so far)")
    assert state.table.capacity <= 8, "read-heavy phase should shrink"

    # Phase 2: churn-heavy — constant revocations, no reads.
    print("\nphase 2: revocation-heavy workload")
    current = system.admin.members("g")
    for i, user in enumerate(current[:16]):
        admin.remove_user("g", user)
    state = system.admin.group_state("g")
    print(f"  capacity now {state.table.capacity} "
          f"({state.table.partition_count} partitions, "
          f"{admin.resizes} resizes total)")

    # Members keep deriving keys across every resize.
    survivor = system.admin.members("g")[0]
    client = system.make_client("g", survivor)
    client.sync()
    key = client.current_group_key()
    print(f"\nsurvivor {survivor!r} still derives the group key: "
          f"{key.hex()[:16]} …")


if __name__ == "__main__":
    main()
