#!/usr/bin/env python3
"""Pay-per-view broadcasting — the paper's §I alternative use case.

"The proposed solution can be applied for encrypting arbitrary information
that is securely broadcasted to a group of users over any shared media …
for example pay-per-view TV."

A broadcaster streams encrypted segments over a shared channel (the cloud
store plays the channel's role).  Subscribers derive the current channel
key through IBBE-SGX; churn (subscribe / unsubscribe between segments) is
handled by the O(1) membership operations, and every unsubscribe rotates
the channel key so lapsed subscribers lose access immediately.

Usage: python examples/pay_per_view.py
"""

from repro import quickstart_system
from repro.crypto.modes import gcm_decrypt, gcm_encrypt
from repro.crypto.rng import SystemRng
from repro.errors import RevokedError

CHANNEL = "ppv-boxing-night"


def broadcast_segment(cloud, key: bytes, index: int, payload: str,
                      rng) -> None:
    nonce = rng.random_bytes(12)
    aad = f"{CHANNEL}:{index}".encode()
    cloud.put(f"/{CHANNEL}-stream/seg{index}",
              nonce + gcm_encrypt(key, nonce, payload.encode(), aad=aad))


def watch_segment(cloud, key: bytes, index: int) -> str:
    blob = cloud.get(f"/{CHANNEL}-stream/seg{index}").data
    aad = f"{CHANNEL}:{index}".encode()
    return gcm_decrypt(key, blob[:12], blob[12:], aad=aad).decode()


def main() -> None:
    rng = SystemRng()
    system = quickstart_system(partition_capacity=4, params="toy64")
    admin = system.admin

    subscribers = [f"viewer{i}" for i in range(12)]
    admin.create_group(CHANNEL, subscribers)
    print(f"channel {CHANNEL!r}: {len(subscribers)} subscribers, "
          f"{admin.group_state(CHANNEL).table.partition_count} partitions")

    clients = {}
    for name in ("viewer0", "viewer5", "viewer11"):
        client = system.make_client(CHANNEL, name)
        client.sync()
        clients[name] = client

    # Segment 1: everyone watches.
    key = clients["viewer0"].current_group_key()
    broadcast_segment(system.cloud, key, 1, "ROUND 1: jab, cross…", rng)
    for name, client in clients.items():
        assert watch_segment(system.cloud, client.current_group_key(), 1)
    print("segment 1 delivered to all sampled viewers")

    # Between segments: viewer5's payment lapses; two new viewers join.
    admin.remove_user(CHANNEL, "viewer5")
    admin.add_user(CHANNEL, "viewer12")
    admin.add_user(CHANNEL, "viewer13")
    print("churn applied: -viewer5, +viewer12, +viewer13")

    # Segment 2 under the rotated key.
    clients["viewer0"].sync()
    key2 = clients["viewer0"].current_group_key()
    assert key2 != key
    broadcast_segment(system.cloud, key2, 2, "ROUND 2: uppercut!", rng)

    late_joiner = system.make_client(CHANNEL, "viewer13")
    late_joiner.sync()
    print("viewer13 (joined mid-event) watches:",
          watch_segment(system.cloud, late_joiner.current_group_key(), 2))

    lapsed = clients["viewer5"]
    lapsed.sync()
    try:
        lapsed.current_group_key()
        raise SystemExit("BUG: lapsed subscriber still has the key")
    except RevokedError:
        print("viewer5 (lapsed) is locked out of segment 2 ✓")
    # …but their old key still opens segment 1, which they paid for.
    print("viewer5 can still replay segment 1:",
          watch_segment(system.cloud, key, 1))

    # Broadcast efficiency: metadata pushed per churn operation is tiny
    # and independent of the audience size (the paper's headline).
    state = admin.group_state(CHANNEL)
    print(f"\nper-partition crypto metadata: "
          f"{next(iter(state.records.values())).crypto_bytes()} bytes; "
          f"audience size plays no role")


if __name__ == "__main__":
    main()
