#!/usr/bin/env python3
"""Collaborative editing on encrypted cloud storage — the paper's §I use
case.

A design team keeps documents on an honest-but-curious cloud.  Documents
are AES-256-GCM encrypted under the group key; the IBBE-SGX access-control
plane distributes and rotates that key as membership changes.  The script
walks through joins, edits by different members, a revocation with key
rotation, and re-encryption of the document under the new key — then shows
what the curious cloud actually sees.

Usage: python examples/collaborative_storage.py
"""

from repro import quickstart_system
from repro.crypto.modes import gcm_decrypt, gcm_encrypt
from repro.crypto.rng import SystemRng
from repro.errors import AuthenticationError, RevokedError

GROUP = "design-team"
DOC_PATH = f"/{GROUP}-data/spec.md"


def save_document(cloud, key: bytes, text: str, rng) -> None:
    nonce = rng.random_bytes(12)
    blob = nonce + gcm_encrypt(key, nonce, text.encode("utf-8"),
                               aad=DOC_PATH.encode())
    cloud.put(DOC_PATH, blob)


def load_document(cloud, key: bytes) -> str:
    blob = cloud.get(DOC_PATH).data
    plaintext = gcm_decrypt(key, blob[:12], blob[12:],
                            aad=DOC_PATH.encode())
    return plaintext.decode("utf-8")


def main() -> None:
    rng = SystemRng()
    system = quickstart_system(partition_capacity=3, params="toy64")
    admin = system.admin

    team = ["ana", "ben", "cho", "dia", "eli"]
    admin.create_group(GROUP, team)
    print(f"group {GROUP!r}: {admin.group_state(GROUP).table.partition_count}"
          " partitions for", ", ".join(team))

    # Ana writes the first draft.
    ana = system.make_client(GROUP, "ana")
    ana.sync()
    save_document(system.cloud, ana.current_group_key(),
                  "# Spec v1\nWritten by Ana.", rng)
    print("ana saved spec v1 (encrypted)")

    # Dia, in another partition, reads and extends it.
    dia = system.make_client(GROUP, "dia")
    dia.sync()
    text = load_document(system.cloud, dia.current_group_key())
    save_document(system.cloud, dia.current_group_key(),
                  text + "\nReviewed by Dia.", rng)
    print("dia read and extended the spec")

    # A new hire joins; no re-keying is needed (paper A-E).
    admin.add_user(GROUP, "fox")
    fox = system.make_client(GROUP, "fox")
    fox.sync()
    print("fox joined and can read:",
          load_document(system.cloud, fox.current_group_key())
          .splitlines()[0])

    # Ben leaves the company: revoke, rotate, re-encrypt.
    old_key = ana.current_group_key()
    admin.remove_user(GROUP, "ben")
    ana.sync()
    new_key = ana.current_group_key()
    assert new_key != old_key
    text = load_document(system.cloud, old_key)  # last version, old key
    save_document(system.cloud, new_key, text + "\n(re-encrypted)", rng)
    print("ben revoked; document re-encrypted under the rotated key")

    ben = system.make_client(GROUP, "ben")
    ben.sync()
    try:
        ben.current_group_key()
        raise SystemExit("BUG: ben still has key access")
    except RevokedError:
        pass
    try:
        load_document(system.cloud, old_key)
        raise SystemExit("BUG: old key still opens the document")
    except AuthenticationError:
        print("ben's stale key no longer opens the document ✓")

    # What the honest-but-curious cloud sees.
    objects = list(system.cloud.adversary_view())
    doc = next(o for o in objects if o.path == DOC_PATH)
    print(f"\ncloud view: {len(objects)} objects; document is "
          f"{len(doc.data)} bytes of ciphertext")
    print("membership metadata is public by design (paper §II):",
          ", ".join(sorted(admin.members(GROUP))))


if __name__ == "__main__":
    main()
