#!/usr/bin/env python3
"""Quickstart: stand up IBBE-SGX, share a group key, revoke a member.

Runs the complete paper pipeline in miniature:

1. platform manufacturing + enclave load + remote attestation (Fig. 3);
2. group creation by the administrator (Algorithm 1);
3. clients deriving the group key from cloud metadata;
4. a revocation (Algorithm 3) and proof that the revoked member is out.

Usage: python examples/quickstart.py
"""

from repro import quickstart_system
from repro.errors import RevokedError


def main() -> None:
    # Small partitions + toy pairing parameters keep this instant; swap
    # params="std160" for the paper's security level.
    system = quickstart_system(partition_capacity=4, params="toy64")
    admin = system.admin

    print("enclave measurement:", system.enclave.measurement.hex()[:32], "…")
    print("certificate issued by auditor/CA: OK")

    members = [f"user{i}@example.com" for i in range(10)]
    admin.create_group("engineering", members)
    state = admin.group_state("engineering")
    print(f"group created: {len(members)} members in "
          f"{state.table.partition_count} partitions")

    alice = system.make_client("engineering", "user0@example.com")
    bob = system.make_client("engineering", "user7@example.com")
    alice.sync()
    bob.sync()
    gk = alice.current_group_key()
    assert bob.current_group_key() == gk
    print("alice and bob derived the same 256-bit group key:",
          gk.hex()[:16], "…")

    admin.remove_user("engineering", "user7@example.com")
    alice.sync()
    bob.sync()
    new_gk = alice.current_group_key()
    print("after revoking bob the group key rotated:",
          new_gk.hex()[:16], "…")
    try:
        bob.current_group_key()
        raise SystemExit("BUG: revoked member derived the key")
    except RevokedError:
        print("bob (revoked) can no longer derive the group key ✓")

    # The curious cloud never sees a plaintext key.
    leaked = any(
        gk in obj.data or new_gk in obj.data
        for obj in system.cloud.adversary_view()
    )
    print("plaintext group key visible to the cloud:", leaked)
    assert not leaked


if __name__ == "__main__":
    main()
