"""Plain-text reporting for benchmark output (tables and series).

Benchmarks print the same rows/series the paper's figures plot, in a form
that diffs cleanly into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def format_seconds(seconds: float) -> str:
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    if seconds < 7200.0:
        return f"{seconds / 60:.1f} min"
    return f"{seconds / 3600:.2f} h"


def format_bytes(count: float) -> str:
    value = float(count)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024
    return f"{value:.1f} GB"


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence[str]]) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    print(f"\n== {title} ==")
    header_line = "  ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    print(header_line)
    print("-" * len(header_line))
    for row in rows:
        print("  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row)))


def print_series(title: str, xlabel: str, ylabel: str,
                 series: Sequence[Tuple[str, Sequence[Tuple[float, str]]]],
                 ) -> None:
    """Print named (x, formatted-y) series — one figure's worth of lines."""
    print(f"\n== {title} ==")
    for name, points in series:
        print(f"  [{name}] ({xlabel} -> {ylabel})")
        for x, y in points:
            print(f"    {x:>12g}  {y}")


def cdf_points(samples: Sequence[float],
               steps: int = 20) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs for a latency CDF (Fig. 8a)."""
    if not samples:
        return []
    ordered = sorted(samples)
    count = len(ordered)
    points = []
    for i in range(1, steps + 1):
        idx = min(count - 1, max(0, round(i * count / steps) - 1))
        points.append((ordered[idx], i / steps))
    return points
