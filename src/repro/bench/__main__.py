"""``python -m repro.bench`` — run the perf-regression gate."""

from repro.bench.gate import main

if __name__ == "__main__":
    raise SystemExit(main())
