"""Timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple


def time_call(fn: Callable[..., Any], *args: Any,
              **kwargs: Any) -> Tuple[Any, float]:
    """Run ``fn`` once; return (result, elapsed seconds)."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     sum(range(1000))
    >>> t.seconds >= 0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start
