"""Shared benchmark harness utilities (timing, curve fitting, reporting)
and the CI performance-regression gate (:mod:`repro.bench.gate`)."""

from repro.bench.fitting import FitResult, extrapolate, fit_power_law
from repro.bench.gate import (
    compare,
    current_rev,
    load_snapshot,
    load_tolerances,
    make_snapshot,
    run_ops,
    write_snapshot,
)
from repro.bench.reporting import (
    cdf_points,
    format_bytes,
    format_seconds,
    print_series,
    print_table,
)
from repro.bench.timing import Timer, time_call

__all__ = [
    "Timer",
    "time_call",
    "compare",
    "current_rev",
    "load_snapshot",
    "load_tolerances",
    "make_snapshot",
    "run_ops",
    "write_snapshot",
    "FitResult",
    "fit_power_law",
    "extrapolate",
    "print_table",
    "print_series",
    "cdf_points",
    "format_seconds",
    "format_bytes",
]
