"""The CI performance-regression gate.

``python -m repro.bench.gate`` runs a small, headless subset of the
paper's benchmark operations (Fig. 2 raw-scheme crypto, Fig. 6 group
bootstrap, Fig. 7 membership churn) at toy parameters, records for each
operation

* the wall-time distribution (``mean``/``p50``/``p95`` over
  ``--repeats`` runs), and
* the **deterministic cost dimensions** — cloud bytes written and
  enclave boundary crossings — which depend only on the algorithm, not
  the machine,

and writes the lot to ``BENCH_<rev>.json``.  Given ``--baseline`` it
compares against a committed snapshot and exits non-zero on regression.

Two tolerance classes keep the gate honest on noisy CI runners:
deterministic dimensions use ``tolerance_deterministic`` (default 0 —
*any* extra crossing or byte is a regression, because those numbers
cannot jitter), while wall time uses the loose ``tolerance_time``
(default 0.5, i.e. flag only a >50 % slowdown).  Both knobs live in
``pyproject.toml``'s ``[tool.repro.bench]`` table.

The schema of a snapshot file::

    {"schema": 1, "rev": "abc1234", "scale": 1.0, "repeats": 3,
     "params": "toy64",
     "ops": {"fig6.create_group": {"mean": ..., "p50": ..., "p95": ...,
                                   "bytes": ..., "crossings": ...,
                                   "samples": [...]}, ...}}
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import quantile_from_samples
from repro.errors import ValidationError

SCHEMA_VERSION = 1

#: Dimensions that are a pure function of the algorithm and inputs; any
#: drift is a real cost change, never measurement noise.
DETERMINISTIC_DIMS = ("bytes", "crossings")

DEFAULT_TOLERANCES = {
    "tolerance_time": 0.5,
    "tolerance_deterministic": 0.0,
}


# ---------------------------------------------------------------------------
# The benchmark operations
# ---------------------------------------------------------------------------

def _bench_system(seed: str, capacity: int):
    from repro import quickstart_system
    from repro.crypto.rng import DeterministicRng

    return quickstart_system(
        partition_capacity=capacity,
        params="toy64",
        rng=DeterministicRng(f"gate:{seed}"),
        system_bound=capacity,
        workers=1,
    )


def _footprint(system) -> Tuple[float, float]:
    metrics = system.telemetry()["metrics"]
    return metrics["cloud.bytes_in"], metrics["sgx.crossings"]


def _op_fig2_encrypt(scale: float) -> Tuple[float, float, float]:
    """Raw IBBE encryption to a broadcast set (Fig. 2 kernel)."""
    from repro import ibbe
    from repro.crypto.rng import DeterministicRng
    from repro.pairing import PairingGroup, preset

    n = max(4, int(16 * scale))
    group = PairingGroup(preset("toy64"))
    rng = DeterministicRng("gate:fig2")
    _, pk = ibbe.setup(group, m=n, rng=rng)
    identities = [f"u{i}" for i in range(n)]
    start = time.perf_counter()
    _, ciphertext = ibbe.encrypt_pk(pk, identities, rng)
    elapsed = time.perf_counter() - start
    return elapsed, float(ciphertext.size_bytes()), 0.0


def _op_fig6_create_group(scale: float) -> Tuple[float, float, float]:
    """Group bootstrap: create one group of ``64·scale`` users (Fig. 6)."""
    n = max(8, int(64 * scale))
    system = _bench_system("fig6", capacity=16)
    try:
        before_bytes, before_crossings = _footprint(system)
        start = time.perf_counter()
        system.admin.create_group("g", [f"u{i}" for i in range(n)])
        elapsed = time.perf_counter() - start
        after_bytes, after_crossings = _footprint(system)
        return (elapsed, after_bytes - before_bytes,
                after_crossings - before_crossings)
    finally:
        system.close()


def _op_fig7_add_user(scale: float) -> Tuple[float, float, float]:
    """Membership add into an existing group (Fig. 7 churn)."""
    n = max(8, int(32 * scale))
    system = _bench_system("fig7a", capacity=8)
    try:
        system.admin.create_group("g", [f"u{i}" for i in range(n)])
        before_bytes, before_crossings = _footprint(system)
        start = time.perf_counter()
        system.admin.add_user("g", "newcomer")
        elapsed = time.perf_counter() - start
        after_bytes, after_crossings = _footprint(system)
        return (elapsed, after_bytes - before_bytes,
                after_crossings - before_crossings)
    finally:
        system.close()


def _op_fig7_remove_user(scale: float) -> Tuple[float, float, float]:
    """Revocation (key rotation) from an existing group (Fig. 7)."""
    n = max(8, int(32 * scale))
    system = _bench_system("fig7r", capacity=8)
    try:
        system.admin.create_group("g", [f"u{i}" for i in range(n)])
        before_bytes, before_crossings = _footprint(system)
        start = time.perf_counter()
        system.admin.remove_user("g", "u0")
        elapsed = time.perf_counter() - start
        after_bytes, after_crossings = _footprint(system)
        return (elapsed, after_bytes - before_bytes,
                after_crossings - before_crossings)
    finally:
        system.close()


def _op_fig8_decrypt(scale: float) -> Tuple[float, float, float]:
    """Client-side partition decryption (Fig. 8 kernel): IBBE decrypt
    plus envelope unwrap at a synced member."""
    n = max(8, int(32 * scale))
    system = _bench_system("fig8", capacity=8)
    try:
        system.admin.create_group("g", [f"u{i}" for i in range(n)])
        client = system.make_client("g", "u0")
        client.sync()
        state = system.admin.group_state("g")
        record = next(r for r in state.records.values()
                      if "u0" in r.members)
        start = time.perf_counter()
        client.decrypt_partition(record)
        elapsed = time.perf_counter() - start
        return elapsed, float(record.crypto_bytes()), 0.0
    finally:
        system.close()


def _op_client_sync(scale: float) -> Tuple[float, float, float]:
    """Fresh-client bootstrap against a churned group: the download +
    verify cost of joining late (the client path of Fig. 5)."""
    n = max(8, int(32 * scale))
    system = _bench_system("sync", capacity=8)
    try:
        system.admin.create_group("g", [f"u{i}" for i in range(n)])
        for i in range(4):
            system.admin.remove_user("g", f"u{i}")
            system.admin.add_user("g", f"w{i}")
        client = system.make_client("g", f"u{n - 1}")
        before = system.cloud.metrics.bytes_out
        start = time.perf_counter()
        client.sync()
        elapsed = time.perf_counter() - start
        return elapsed, float(system.cloud.metrics.bytes_out - before), 0.0
    finally:
        system.close()


#: (scale, compacted) -> TemporaryDirectory holding a prebuilt history
#: store.  The cold-start ops only *read* the store (compaction happens
#: at build time), so one build serves every repeat.
_COLD_STORES: Dict[Tuple[float, bool], Any] = {}


def _cold_start_store(scale: float, compacted: bool):
    """A FileCloudStore carrying one live group plus a long mutation
    history (~``10000·scale`` filler events over 50 rotating paths), so
    history length dwarfs live object count — the regime where snapshot
    bootstrap pays off."""
    import tempfile

    from repro.cloud import CloudBatch, FileCloudStore

    key = (scale, compacted)
    if key not in _COLD_STORES:
        tmp = tempfile.TemporaryDirectory(prefix="gate-cold-")
        store = FileCloudStore(tmp.name)
        system = _bench_system("cold", capacity=8)
        try:
            system.cloud = store
            system.admin.cloud = store
            n = max(8, int(32 * scale))
            system.admin.create_group("g", [f"u{i}" for i in range(n)])
            events = max(200, int(10_000 * scale))
            paths = [f"/history/h{i}" for i in range(50)]
            written = 0
            while written < events:
                batch = CloudBatch()
                for _ in range(min(200, events - written)):
                    batch.put(paths[written % len(paths)],
                              written.to_bytes(4, "big") * 8)
                    written += 1
                store.commit(batch)
            if compacted:
                store.compact()
        finally:
            system.close()
        _COLD_STORES[key] = tmp
    return _COLD_STORES[key].name


def _op_cold_start(scale: float, compacted: bool
                   ) -> Tuple[float, float, float]:
    """Cold start: reopen the store, reload the group's administrative
    state, and sync a brand-new client from sequence zero.  The
    ``replay`` variant scans the full event history; the ``snapshot``
    variant bootstraps from the compacted manifest — the O(changes)
    claim under test."""
    from repro.cloud import FileCloudStore

    root = _cold_start_store(scale, compacted)
    system = _bench_system("cold", capacity=8)
    try:
        system.user_key("u0")   # provision outside the timer
        start = time.perf_counter()
        store = FileCloudStore(root)
        system.cloud = store
        system.admin.cloud = store
        system.admin.load_group_from_cloud("g")
        client = system.make_client("g", "u0")
        client.sync()
        elapsed = time.perf_counter() - start
        client.current_group_key()   # sanity: the key must be reachable
        return elapsed, float(store.metrics.bytes_out), 0.0
    finally:
        system.close()


def _op_cold_start_replay(scale: float) -> Tuple[float, float, float]:
    return _op_cold_start(scale, compacted=False)


def _op_cold_start_snapshot(scale: float) -> Tuple[float, float, float]:
    return _op_cold_start(scale, compacted=True)


def _net_rpc_harness():
    """A live :class:`~repro.net.StoreServer` over the in-memory store
    plus a connected client, torn down by the caller."""
    from repro.cloud import CloudStore
    from repro.net import RemoteCloudStore, ServerThread

    server = ServerThread(CloudStore())
    store = RemoteCloudStore(server.start())
    return server, store


def _wire_bytes(store) -> float:
    counters = store.metrics.registry.counters_snapshot()
    return (counters.get("net.rpc.bytes_sent", 0.0)
            + counters.get("net.rpc.bytes_received", 0.0))


def _op_net_rpc_get(scale: float) -> Tuple[float, float, float]:
    """Per-RPC ``store.get`` round trip over a real TCP connection: the
    framing + JSON + syscall overhead the network layer adds to a read.
    Bytes is the wire volume of one round trip (request and response),
    which is deterministic for a fixed payload."""
    n = max(16, int(64 * scale))
    server, store = _net_rpc_harness()
    try:
        store.put("/bench/obj", b"\x5a" * 4096)
        store.get("/bench/obj")          # warm: connection + handshake
        before = _wire_bytes(store)
        start = time.perf_counter()
        for _ in range(n):
            store.get("/bench/obj")
        elapsed = time.perf_counter() - start
        wire = _wire_bytes(store) - before
        return elapsed / n, wire / n, 0.0
    finally:
        store.close()
        server.stop()


def _op_net_rpc_commit(scale: float) -> Tuple[float, float, float]:
    """Per-RPC atomic batch commit (8 puts of 1 KiB) over TCP — the
    mutation path every admin operation rides.  Fresh fixed-width paths
    each round keep versions at 1, so the wire volume per commit is
    deterministic."""
    from repro.cloud import CloudBatch

    n = max(16, int(64 * scale))
    server, store = _net_rpc_harness()
    try:
        store.head_sequence()            # warm: connection + handshake
        before = _wire_bytes(store)
        start = time.perf_counter()
        for i in range(n):
            batch = CloudBatch()
            for j in range(8):
                batch.put(f"/bench/{i:05d}/{j}", b"\xa5" * 1024)
            store.commit(batch)
        elapsed = time.perf_counter() - start
        wire = _wire_bytes(store) - before
        return elapsed / n, wire / n, 0.0
    finally:
        store.close()
        server.stop()


def _bench_sharded(seed: str, nshards: int):
    from repro.shard import ShardedSystem

    return ShardedSystem(nshards=nshards, partition_capacity=16,
                         params="toy64", seed=f"gate:{seed}")


def _op_shard_create_group(scale: float) -> Tuple[float, float, float]:
    """Per-group bootstrap cost through a 2-shard deployment's router.

    The group path is shared-nothing (each group lives wholly on its
    owning shard; no cross-shard coordination), so the per-op bytes and
    crossings here must equal the single-enclave ``fig6`` numbers per
    group — the deterministic basis of the linear-in-N aggregate
    throughput claim.  Crossings are summed over all shard enclaves
    (the merged telemetry view would overwrite same-named counters)."""
    n = max(8, int(32 * scale))
    groups = 4
    system = _bench_sharded("shard-create", 2)
    try:
        before_bytes = system.telemetry()["metrics"]["cloud.bytes_in"]
        before_crossings = system.total_crossings()
        start = time.perf_counter()
        for k in range(groups):
            system.create_group(f"g{k}",
                                [f"g{k}.u{i}" for i in range(n)])
        elapsed = time.perf_counter() - start
        after_bytes = system.telemetry()["metrics"]["cloud.bytes_in"]
        after_crossings = system.total_crossings()
        return (elapsed / groups, (after_bytes - before_bytes) / groups,
                (after_crossings - before_crossings) / groups)
    finally:
        system.close()


def _op_shard_rekey(scale: float) -> Tuple[float, float, float]:
    """Per-group key rotation through the shard router (the revocation
    cost driver of Fig. 7, here on a 2-shard fleet): same shared-nothing
    argument as ``shard.create_group``."""
    n = max(8, int(32 * scale))
    groups = 4
    system = _bench_sharded("shard-rekey", 2)
    try:
        for k in range(groups):
            system.create_group(f"g{k}",
                                [f"g{k}.u{i}" for i in range(n)])
        before_bytes = system.telemetry()["metrics"]["cloud.bytes_in"]
        before_crossings = system.total_crossings()
        start = time.perf_counter()
        for k in range(groups):
            system.rekey(f"g{k}")
        elapsed = time.perf_counter() - start
        after_bytes = system.telemetry()["metrics"]["cloud.bytes_in"]
        after_crossings = system.total_crossings()
        return (elapsed / groups, (after_bytes - before_bytes) / groups,
                (after_crossings - before_crossings) / groups)
    finally:
        system.close()


def _scale_runner(scale: float):
    """A bounded scale-suite scenario (Zipf roster + churn trace), small
    enough for the gate's repeat loop yet exercising the same phases the
    nightly soak runs at 10^5 users."""
    from repro.workloads.scale import ScaleConfig, ScaleRunner

    config = ScaleConfig(
        users=max(300, int(1200 * scale)),
        seed="gate-scale",
        churn_ops=max(24, int(96 * scale)),
        sync_clients=max(4, int(8 * scale)),
        sync_rounds=2,
        resync_churn=6,
        contention_rounds=1,
        workers=1,
    )
    return ScaleRunner(config)


def _op_scale_churn(scale: float) -> Tuple[float, float, float]:
    """Per-op cost of the scale suite's bursty churn phase: Zipf-
    weighted join/leave bursts through the adaptive administrator
    (inline partition reviews included).  Bytes and crossings are the
    per-op cloud/enclave footprint — deterministic for a fixed seed."""
    runner = _scale_runner(scale)
    try:
        runner.provision()
        ops = len(runner.trace)
        before_bytes, before_crossings = _footprint(runner.system)
        start = time.perf_counter()
        runner.churn()
        elapsed = time.perf_counter() - start
        after_bytes, after_crossings = _footprint(runner.system)
        return (elapsed / ops, (after_bytes - before_bytes) / ops,
                (after_crossings - before_crossings) / ops)
    finally:
        runner.close()


def _op_scale_sync(scale: float) -> Tuple[float, float, float]:
    """Per-client cost of the scale suite's read-heavy phase: a bounded
    client fleet syncs and derives keys, then re-syncs incrementally
    after an interleaved churn slice (the resume path).  Bytes is the
    per-sync cloud read volume."""
    runner = _scale_runner(scale)
    try:
        runner.provision()
        runner.churn()
        metrics = runner.system.telemetry()["metrics"]
        before_bytes = metrics["cloud.bytes_out"]
        start = time.perf_counter()
        runner.sync_storm()
        elapsed = time.perf_counter() - start
        metrics = runner.system.telemetry()["metrics"]
        ops = max(1, runner.phase_stats["sync"].ops)
        return (elapsed / ops,
                (metrics["cloud.bytes_out"] - before_bytes) / ops, 0.0)
    finally:
        runner.close()


#: name -> callable(scale) -> (seconds, bytes, crossings)
OPS: Dict[str, Callable[[float], Tuple[float, float, float]]] = {
    "fig2.encrypt": _op_fig2_encrypt,
    "fig6.create_group": _op_fig6_create_group,
    "fig7.add_user": _op_fig7_add_user,
    "fig7.remove_user": _op_fig7_remove_user,
    "fig8.decrypt": _op_fig8_decrypt,
    "client.sync": _op_client_sync,
    "cold_start.replay": _op_cold_start_replay,
    "cold_start.snapshot": _op_cold_start_snapshot,
    "net.rpc.get": _op_net_rpc_get,
    "net.rpc.commit": _op_net_rpc_commit,
    "scale.churn": _op_scale_churn,
    "scale.sync": _op_scale_sync,
    "shard.create_group": _op_shard_create_group,
    "shard.rekey": _op_shard_rekey,
}


def run_ops(scale: float = 1.0, repeats: int = 3,
            log: Optional[Callable[[str], None]] = None
            ) -> Dict[str, Dict[str, Any]]:
    """Run every gate operation ``repeats`` times; return the op table."""
    results: Dict[str, Dict[str, Any]] = {}
    for name, op in OPS.items():
        samples: List[float] = []
        dims = (0.0, 0.0)
        for _ in range(max(1, repeats)):
            seconds, op_bytes, crossings = op(scale)
            samples.append(seconds)
            dims = (op_bytes, crossings)
        results[name] = {
            "mean": sum(samples) / len(samples),
            "p50": quantile_from_samples(samples, 0.5),
            "p95": quantile_from_samples(samples, 0.95),
            "bytes": dims[0],
            "crossings": dims[1],
            "samples": samples,
        }
        if log is not None:
            log(f"  {name}: mean {results[name]['mean'] * 1e3:.2f} ms, "
                f"{int(dims[0])} B, {int(dims[1])} crossings")
    return results


# ---------------------------------------------------------------------------
# Snapshot files and tolerances
# ---------------------------------------------------------------------------

def current_rev() -> str:
    """Short git revision of the working tree, else ``"dev"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except OSError:
        return "dev"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "dev"


def make_snapshot(ops: Dict[str, Dict[str, Any]], rev: str,
                  scale: float, repeats: int) -> Dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "rev": rev,
        "params": "toy64",
        "scale": scale,
        "repeats": repeats,
        "ops": ops,
    }


def write_snapshot(snapshot: Dict[str, Any], path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")


def load_snapshot(path) -> Dict[str, Any]:
    snapshot = json.loads(Path(path).read_text("utf-8"))
    if snapshot.get("schema") != SCHEMA_VERSION:
        raise ValidationError(
            f"{path}: unsupported bench snapshot schema "
            f"{snapshot.get('schema')!r} (expected {SCHEMA_VERSION})"
        )
    return snapshot


def _parse_toml_floats(text: str, table: str) -> Dict[str, float]:
    """Minimal ``key = number`` extraction from one TOML table.

    Fallback for interpreters without :mod:`tomllib` (< 3.11); handles
    exactly the flat float/int assignments ``[tool.repro.bench]`` uses.
    """
    values: Dict[str, float] = {}
    in_table = False
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("["):
            in_table = stripped == f"[{table}]"
            continue
        if not in_table or not stripped or stripped.startswith("#"):
            continue
        match = re.match(r"([A-Za-z0-9_-]+)\s*=\s*([0-9.eE+-]+)", stripped)
        if match:
            try:
                values[match.group(1)] = float(match.group(2))
            except ValueError:
                pass
    return values


def load_tolerances(pyproject: Optional[Path] = None) -> Dict[str, float]:
    """Gate tolerances from ``[tool.repro.bench]``, with defaults."""
    tolerances = dict(DEFAULT_TOLERANCES)
    if pyproject is None:
        pyproject = Path(__file__).resolve().parents[3] / "pyproject.toml"
    if not Path(pyproject).exists():
        return tolerances
    text = Path(pyproject).read_text("utf-8")
    try:
        import tomllib
        table = (tomllib.loads(text).get("tool", {})
                 .get("repro", {}).get("bench", {}))
    except ModuleNotFoundError:
        table = _parse_toml_floats(text, "tool.repro.bench")
    for key in tolerances:
        if key in table:
            tolerances[key] = float(table[key])
    return tolerances


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

def compare(baseline: Dict[str, Any], current: Dict[str, Any],
            tolerances: Optional[Dict[str, float]] = None) -> List[str]:
    """Regression messages (empty = gate passes).

    Wall time compares ``mean`` within ``tolerance_time``; the
    deterministic dimensions compare within ``tolerance_deterministic``
    (both relative).  Operations missing from the current run are
    regressions too — a gate that silently stops measuring an op would
    otherwise rot.  *New* ops absent from the baseline are allowed (the
    baseline is refreshed by committing the new snapshot).
    """
    if tolerances is None:
        tolerances = load_tolerances()
    time_tol = tolerances["tolerance_time"]
    det_tol = tolerances["tolerance_deterministic"]
    problems: List[str] = []
    base_ops = baseline.get("ops", {})
    cur_ops = current.get("ops", {})
    for name, base in sorted(base_ops.items()):
        cur = cur_ops.get(name)
        if cur is None:
            problems.append(f"{name}: missing from current run")
            continue
        for dim in DETERMINISTIC_DIMS:
            allowed = base[dim] * (1.0 + det_tol)
            if cur[dim] > allowed + 1e-9:
                problems.append(
                    f"{name}: {dim} regressed {base[dim]:.0f} -> "
                    f"{cur[dim]:.0f} (tolerance {det_tol:.0%})"
                )
        allowed = base["mean"] * (1.0 + time_tol)
        if cur["mean"] > allowed:
            problems.append(
                f"{name}: mean time regressed "
                f"{base['mean'] * 1e3:.2f} ms -> "
                f"{cur['mean'] * 1e3:.2f} ms (tolerance {time_tol:.0%})"
            )
    return problems


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.gate",
        description="headless benchmark run + perf-regression gate",
    )
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_*.json to compare against; "
                             "omit to only record")
    parser.add_argument("--out", default=None,
                        help="snapshot output path "
                             "(default: BENCH_<rev>.json in the cwd)")
    parser.add_argument("--rev", default=None,
                        help="revision label (default: git short rev)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier")
    parser.add_argument("--tolerance-time", type=float, default=None,
                        help="override [tool.repro.bench] tolerance_time")
    parser.add_argument("--trace-out", default=None,
                        help="also record one traced fig6 run as Chrome "
                             "trace_event JSON")
    parser.add_argument("--prom-out", default=None,
                        help="also dump the fig6 system's metrics in "
                             "Prometheus text exposition")
    args = parser.parse_args(argv)

    rev = args.rev or current_rev()
    print(f"bench gate: rev {rev}, scale {args.scale}, "
          f"repeats {args.repeats}")
    ops = run_ops(scale=args.scale, repeats=args.repeats, log=print)
    snapshot = make_snapshot(ops, rev, args.scale, args.repeats)
    out = Path(args.out) if args.out else Path(f"BENCH_{rev}.json")
    write_snapshot(snapshot, out)
    print(f"wrote {out}")

    if args.trace_out or args.prom_out:
        _export_artifacts(args.scale, args.trace_out, args.prom_out)

    if not args.baseline:
        print("no --baseline given; recorded only (gate passes)")
        return 0
    baseline = load_snapshot(args.baseline)
    tolerances = load_tolerances()
    if args.tolerance_time is not None:
        tolerances["tolerance_time"] = args.tolerance_time
    problems = compare(baseline, snapshot, tolerances)
    if problems:
        print(f"\nREGRESSION against {args.baseline} "
              f"(rev {baseline.get('rev')}):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"gate passed against {args.baseline} "
          f"(rev {baseline.get('rev')}, "
          f"time tolerance {tolerances['tolerance_time']:.0%}, "
          f"deterministic tolerance "
          f"{tolerances['tolerance_deterministic']:.0%})")
    return 0


def _export_artifacts(scale: float, trace_out: Optional[str],
                      prom_out: Optional[str]) -> None:
    """One traced fig6 run whose spans/metrics become CI artifacts."""
    from repro import obs

    tracer = obs.tracer()
    tracer.reset()
    obs.enable()
    n = max(8, int(64 * scale))
    system = _bench_system("artifacts", capacity=16)
    try:
        system.admin.create_group("g", [f"u{i}" for i in range(n)])
        for out in (trace_out, prom_out):
            if out:
                Path(out).parent.mkdir(parents=True, exist_ok=True)
        if trace_out:
            written = obs.write_chrome_trace(tracer.spans(), trace_out)
            print(f"wrote {written} trace events -> {trace_out}")
        if prom_out:
            metrics = obs.merge_snapshots(system.metric_sources())
            metrics.update(tracer.registry.snapshot())
            lines = obs.write_prometheus(metrics, prom_out)
            print(f"wrote {lines} metric lines -> {prom_out}")
    finally:
        obs.disable()
        tracer.reset()
        system.close()


if __name__ == "__main__":
    raise SystemExit(main())
