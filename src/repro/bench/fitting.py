"""Complexity-curve fitting and extrapolation.

The paper sweeps group sizes up to one million users on a C/SGX
implementation; the pure-Python substrate measures smaller sweeps and
extrapolates along the *known* complexity class of each operation
(Table I).  The fit doubles as an empirical check of that class: the
Table I benchmark asserts the fitted exponent of each operation against
the theoretical one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple
from repro.errors import ValidationError


@dataclass(frozen=True)
class FitResult:
    """Power-law fit ``t ≈ coefficient · n^exponent``."""

    coefficient: float
    exponent: float
    r_squared: float

    def predict(self, n: float) -> float:
        return self.coefficient * (n ** self.exponent)

    def describe(self) -> str:
        return (
            f"t ≈ {self.coefficient:.3g}·n^{self.exponent:.2f} "
            f"(R²={self.r_squared:.3f})"
        )


def fit_power_law(points: Sequence[Tuple[float, float]]) -> FitResult:
    """Least-squares fit of ``log t = log a + b·log n``.

    Points with non-positive coordinates are rejected (they have no
    log-log image).
    """
    if len(points) < 2:
        raise ValidationError("power-law fit needs at least two points")
    xs: List[float] = []
    ys: List[float] = []
    for n, t in points:
        if n <= 0 or t <= 0:
            raise ValidationError(f"power-law fit needs positive points, got {(n, t)}")
        xs.append(math.log(n))
        ys.append(math.log(t))
    count = len(xs)
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValidationError("all sweep points share one n; cannot fit")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    # R² in log space.
    ss_res = sum(
        (y - (intercept + slope * x)) ** 2 for x, y in zip(xs, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return FitResult(
        coefficient=math.exp(intercept), exponent=slope, r_squared=r_squared
    )


def extrapolate(points: Sequence[Tuple[float, float]], target_n: float,
                exponent: float | None = None) -> float:
    """Predict the metric at ``target_n``.

    With ``exponent`` given, only the coefficient is fitted (anchored to
    the theoretical complexity class); otherwise both are fitted.
    """
    if exponent is None:
        return fit_power_law(points).predict(target_n)
    # Anchored fit: a = geometric mean of t / n^b.
    log_as = [
        math.log(t) - exponent * math.log(n)
        for n, t in points if n > 0 and t > 0
    ]
    if not log_as:
        raise ValidationError("no usable points for anchored extrapolation")
    coefficient = math.exp(sum(log_as) / len(log_as))
    return coefficient * (target_n ** exponent)
