"""RSA with OAEP padding (PKCS#1 v2.2).

One of the two public-key primitives for the HE-PKI baseline (the other is
ECIES).  Key generation uses Miller-Rabin primes with a CRT-enabled private
key for fast decryption.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.kdf import mgf1, sha256
from repro.crypto.rng import Rng
from repro.errors import CryptoError
from repro.mathutils.modular import modinv
from repro.mathutils.primes import gen_prime

_E = 65537


@dataclass(frozen=True)
class RsaPublicKey:
    n: int
    e: int = _E

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def encrypt(self, plaintext: bytes, rng: Rng, label: bytes = b"") -> bytes:
        """RSA-OAEP encryption."""
        k = self.size_bytes
        h_len = 32
        if len(plaintext) > k - 2 * h_len - 2:
            raise CryptoError("message too long for RSA-OAEP")
        l_hash = sha256(label)
        padding = b"\x00" * (k - len(plaintext) - 2 * h_len - 2)
        data_block = l_hash + padding + b"\x01" + plaintext
        seed = rng.random_bytes(h_len)
        masked_db = _xor(data_block, mgf1(seed, k - h_len - 1))
        masked_seed = _xor(seed, mgf1(masked_db, h_len))
        em = b"\x00" + masked_seed + masked_db
        m = int.from_bytes(em, "big")
        return pow(m, self.e, self.n).to_bytes(k, "big")


@dataclass(frozen=True)
class RsaPrivateKey:
    n: int
    d: int
    p: int
    q: int
    e: int = _E

    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)

    def decrypt(self, ciphertext: bytes, label: bytes = b"") -> bytes:
        """RSA-OAEP decryption (CRT accelerated)."""
        k = (self.n.bit_length() + 7) // 8
        h_len = 32
        if len(ciphertext) != k or k < 2 * h_len + 2:
            raise CryptoError("malformed RSA ciphertext")
        c = int.from_bytes(ciphertext, "big")
        if c >= self.n:
            raise CryptoError("ciphertext out of range")
        # CRT: m_p = c^(d mod p-1) mod p, m_q likewise, recombine.
        d_p = self.d % (self.p - 1)
        d_q = self.d % (self.q - 1)
        m_p = pow(c % self.p, d_p, self.p)
        m_q = pow(c % self.q, d_q, self.q)
        q_inv = modinv(self.q, self.p)
        h = (q_inv * (m_p - m_q)) % self.p
        m = m_q + h * self.q
        em = m.to_bytes(k, "big")
        if em[0] != 0:
            raise CryptoError("OAEP decoding failed")
        masked_seed, masked_db = em[1:1 + h_len], em[1 + h_len:]
        seed = _xor(masked_seed, mgf1(masked_db, h_len))
        data_block = _xor(masked_db, mgf1(seed, k - h_len - 1))
        l_hash = sha256(label)
        if data_block[:h_len] != l_hash:
            raise CryptoError("OAEP label mismatch")
        try:
            sep = data_block.index(b"\x01", h_len)
        except ValueError as exc:
            raise CryptoError("OAEP separator missing") from exc
        if any(data_block[h_len:sep]):
            raise CryptoError("OAEP padding malformed")
        return data_block[sep + 1:]


def generate_keypair(bits: int, rng: Rng) -> RsaPrivateKey:
    """Generate an RSA keypair with modulus of ``bits`` bits."""
    if bits < 512:
        raise CryptoError("refusing RSA modulus below 512 bits")
    half = bits // 2
    while True:
        p = gen_prime(half, rng.randint_below,
                      condition=lambda c: c % _E != 1)
        q = gen_prime(bits - half, rng.randint_below,
                      condition=lambda c: c % _E != 1)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        d = modinv(_E, phi)
        return RsaPrivateKey(n=n, d=d, p=p, q=q)


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))
