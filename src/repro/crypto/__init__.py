"""Cryptographic primitives built from scratch for the reproduction.

Contents:

* :mod:`repro.crypto.rng` — system / deterministic randomness sources.
* :mod:`repro.crypto.aes` — AES-128/192/256 block cipher (FIPS-197).
* :mod:`repro.crypto.modes` — CTR and GCM modes of operation.
* :mod:`repro.crypto.kdf` — SHA-256 based HKDF and hashing helpers.
* :mod:`repro.crypto.rsa` — RSA-OAEP (HE-PKI baseline primitive).
* :mod:`repro.crypto.ecies` — ECIES over NIST P-256 (HE-PKI baseline primitive).
* :mod:`repro.crypto.ecdsa` — ECDSA over NIST P-256 (signatures for admins,
  quotes, IAS reports and CA certificates).
"""

from repro.crypto.rng import DeterministicRng, Rng, SystemRng

__all__ = ["Rng", "SystemRng", "DeterministicRng"]
