"""Modes of operation: CTR and GCM (NIST SP 800-38A / 800-38D).

GCM is the authenticated mode used to envelope the group key ``gk`` under
the hashed partition broadcast key (Algorithms 1-3 in the paper use
``sgx_aes(sgx_sha(bk), gk)``; authenticated encryption also gives clients a
cheap integrity check on partition metadata).
"""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.errors import AuthenticationError, CryptoError


def ctr_transform(aes: AES, nonce: bytes, data: bytes,
                  initial_counter: int = 0) -> bytes:
    """Encrypt/decrypt ``data`` in CTR mode (the operation is an involution).

    The counter block is ``nonce (12 bytes) || counter (4 bytes, big endian)``.
    """
    if len(nonce) != 12:
        raise CryptoError("CTR nonce must be 12 bytes")
    out = bytearray()
    counter = initial_counter
    for offset in range(0, len(data), 16):
        keystream = aes.encrypt_block(nonce + counter.to_bytes(4, "big"))
        chunk = data[offset:offset + 16]
        out.extend(b ^ k for b, k in zip(chunk, keystream))
        counter += 1
    return bytes(out)


# -- GHASH over GF(2^128) -----------------------------------------------------

_R = 0xE1000000000000000000000000000000


def _gf128_mul(x: int, y: int) -> int:
    """Multiplication in GF(2^128) with the GCM polynomial (bit-reflected).

    Bit-by-bit reference implementation; :class:`Ghash` uses Shoup's
    4-bit-table method, which the property tests check against this.
    """
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _shift1(v: int) -> int:
    """Multiply by t (one reflected shift with reduction)."""
    if v & 1:
        return (v >> 1) ^ _R
    return v >> 1


def _build_reduction_table() -> list:
    """RED[n] = the reduction residue of shifting a value with low nibble
    ``n`` right by 4 (key-independent, computed once)."""
    table = []
    for n in range(16):
        v = n
        for _ in range(4):
            v = _shift1(v)
        table.append(v)
    return table


_RED = _build_reduction_table()


class Ghash:
    """Incremental GHASH universal hash (Shoup 4-bit tables).

    Per 16-byte block: 32 table lookups and shifts instead of 128
    conditional shift-xors — ~4× faster in pure Python, verified
    bit-identical to :func:`_gf128_mul` by the test suite.
    """

    def __init__(self, h: bytes) -> None:
        self._y = 0
        # P[j] = H·t^j, then T[u] = Σ_{bit b set in u} P[3-b]: the product
        # of H with the nibble-polynomial of u.
        h_int = int.from_bytes(h, "big")
        powers = [h_int]
        for _ in range(3):
            powers.append(_shift1(powers[-1]))
        table = [0] * 16
        for u in range(1, 16):
            acc = 0
            for b in range(4):
                if (u >> b) & 1:
                    acc ^= powers[3 - b]
            table[u] = acc
        self._table = table

    def _mul_h(self, x: int) -> int:
        """x·H via nibble Horner: least-significant nibble carries the
        highest power of t (reflected convention)."""
        table = self._table
        z = table[x & 0xF]
        x >>= 4
        for _ in range(31):
            z = (z >> 4) ^ _RED[z & 0xF] ^ table[x & 0xF]
            x >>= 4
        return z

    def update(self, data: bytes) -> "Ghash":
        y = self._y
        for offset in range(0, len(data), 16):
            block = data[offset:offset + 16].ljust(16, b"\x00")
            y = self._mul_h(y ^ int.from_bytes(block, "big"))
        self._y = y
        return self

    def digest(self) -> bytes:
        return self._y.to_bytes(16, "big")


def gcm_encrypt(key: bytes, nonce: bytes, plaintext: bytes,
                aad: bytes = b"", tag_length: int = 16) -> bytes:
    """AES-GCM encryption.  Returns ``ciphertext || tag``."""
    aes = AES(key)
    j0, h = _gcm_setup(aes, nonce)
    ciphertext = ctr_transform(
        aes, j0[:12], plaintext, initial_counter=int.from_bytes(j0[12:], "big") + 1
    ) if len(nonce) == 12 else _gcm_ctr(aes, j0, plaintext)
    tag = _gcm_tag(aes, h, j0, aad, ciphertext)[:tag_length]
    return ciphertext + tag


def gcm_decrypt(key: bytes, nonce: bytes, data: bytes,
                aad: bytes = b"", tag_length: int = 16) -> bytes:
    """AES-GCM decryption; raises AuthenticationError on tag mismatch."""
    if len(data) < tag_length:
        raise AuthenticationError("ciphertext shorter than the GCM tag")
    ciphertext, tag = data[:-tag_length], data[-tag_length:]
    aes = AES(key)
    j0, h = _gcm_setup(aes, nonce)
    expected = _gcm_tag(aes, h, j0, aad, ciphertext)[:tag_length]
    if not _constant_time_eq(expected, tag):
        raise AuthenticationError("GCM tag verification failed")
    if len(nonce) == 12:
        return ctr_transform(
            aes, j0[:12], ciphertext,
            initial_counter=int.from_bytes(j0[12:], "big") + 1,
        )
    return _gcm_ctr(aes, j0, ciphertext)


def _gcm_setup(aes: AES, nonce: bytes):
    h = aes.encrypt_block(bytes(16))
    if len(nonce) == 12:
        j0 = nonce + b"\x00\x00\x00\x01"
    else:
        ghash = Ghash(h).update(nonce)
        length_block = (8 * len(nonce)).to_bytes(16, "big")
        ghash.update(length_block)
        j0 = ghash.digest()
    return j0, h


def _gcm_ctr(aes: AES, j0: bytes, data: bytes) -> bytes:
    """GCTR starting at inc32(J0) for non-96-bit nonces."""
    out = bytearray()
    counter = int.from_bytes(j0, "big")
    for offset in range(0, len(data), 16):
        counter_block = (
            (counter & ~0xFFFFFFFF)
            | ((counter + 1 + offset // 16) & 0xFFFFFFFF)
        ).to_bytes(16, "big")
        keystream = aes.encrypt_block(counter_block)
        out.extend(b ^ k for b, k in zip(data[offset:offset + 16], keystream))
    return bytes(out)


def _gcm_tag(aes: AES, h: bytes, j0: bytes, aad: bytes,
             ciphertext: bytes) -> bytes:
    ghash = Ghash(h)
    ghash.update(aad)
    ghash.update(ciphertext)
    lengths = (8 * len(aad)).to_bytes(8, "big") + (8 * len(ciphertext)).to_bytes(8, "big")
    ghash.update(lengths)
    s = ghash.digest()
    e_j0 = aes.encrypt_block(j0)
    return bytes(a ^ b for a, b in zip(s, e_j0))


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0
