"""Randomness sources.

All key material in the package is drawn through the :class:`Rng` interface
so that tests and benchmarks can substitute a fast deterministic source
(seeded, reproducible runs) while production paths use the operating system
CSPRNG.
"""

from __future__ import annotations

import hashlib
import os
from typing import Protocol
from repro.errors import ValidationError


class Rng(Protocol):
    """Source of uniform random bytes and integers."""

    def random_bytes(self, n: int) -> bytes:
        """Return ``n`` uniform random bytes."""
        ...

    def randint_below(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)``."""
        ...


class SystemRng:
    """Operating-system CSPRNG (``os.urandom``)."""

    def random_bytes(self, n: int) -> bytes:
        return os.urandom(n)

    def randint_below(self, bound: int) -> int:
        return _uniform_below(bound, self.random_bytes)


class DeterministicRng:
    """Reproducible RNG for tests and benchmarks.

    Implements a simple counter-mode construction over SHA-256.  Not intended
    for production key material; intended for deterministic experiment replay.
    """

    def __init__(self, seed: bytes | str | int = b"repro") -> None:
        if isinstance(seed, int):
            seed = seed.to_bytes((seed.bit_length() + 7) // 8 or 1, "big")
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        self._key = hashlib.sha256(b"repro-drng:" + seed).digest()
        self._counter = 0
        self._buffer = b""

    def random_bytes(self, n: int) -> bytes:
        while len(self._buffer) < n:
            block = hashlib.sha256(
                self._key + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            self._buffer += block
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out

    def randint_below(self, bound: int) -> int:
        return _uniform_below(bound, self.random_bytes)

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent stream, e.g. one per simulated user."""
        return DeterministicRng(self._key + label.encode("utf-8"))

    def getstate(self) -> tuple:
        """Opaque snapshot of the stream position (for crash-recovery
        replay: a redone operation can consume the exact same bytes)."""
        return (self._key, self._counter, self._buffer)

    def setstate(self, state: tuple) -> None:
        """Rewind/advance the stream to a :meth:`getstate` snapshot."""
        self._key, self._counter, self._buffer = state


def _uniform_below(bound: int, random_bytes) -> int:
    """Rejection-sample a uniform integer in ``[0, bound)``."""
    if bound <= 0:
        raise ValidationError(f"bound must be positive, got {bound}")
    if bound == 1:
        return 0
    nbytes = (bound.bit_length() + 7) // 8
    # Mask off excess high bits so the acceptance rate is at least 1/2.
    excess_bits = nbytes * 8 - bound.bit_length()
    mask = (1 << (nbytes * 8 - excess_bits)) - 1
    while True:
        candidate = int.from_bytes(random_bytes(nbytes), "big") & mask
        if candidate < bound:
            return candidate
