"""AES block cipher (FIPS-197) — AES-128/192/256.

From-scratch table-based implementation.  The paper's enclave uses the
AES-256 implementation from Intel's SGX-SSL port of OpenSSL because the SGX
SDK caps out at AES-128; we likewise default to 256-bit keys everywhere the
group key is enveloped.

Only the raw block transform lives here; modes of operation are in
:mod:`repro.crypto.modes`.
"""

from __future__ import annotations

from typing import List

from repro.errors import CryptoError

# -- S-box construction (computed, not pasted, to keep the source auditable) --


def _build_sbox() -> bytes:
    # Multiplicative inverse in GF(2^8) via exp/log tables over generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 in GF(2^8) with the AES polynomial 0x11B
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = bytearray(256)
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # Affine transformation.
        res = 0
        for bit in range(8):
            res |= (
                ((inv >> bit) ^ (inv >> ((bit + 4) % 8))
                 ^ (inv >> ((bit + 5) % 8)) ^ (inv >> ((bit + 6) % 8))
                 ^ (inv >> ((bit + 7) % 8)) ^ (0x63 >> bit)) & 1
            ) << bit
        sbox[value] = res
    return bytes(sbox)


_SBOX = _build_sbox()
_INV_SBOX = bytearray(256)
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i
_INV_SBOX = bytes(_INV_SBOX)


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Precomputed T-tables for the forward rounds (SubBytes+ShiftRows+MixColumns).
_T0 = []
_T1 = []
_T2 = []
_T3 = []
for _s in _SBOX:
    _t = (_mul(_s, 2) << 24) | (_s << 16) | (_s << 8) | _mul(_s, 3)
    _T0.append(_t)
    _T1.append(((_t >> 8) | (_t << 24)) & 0xFFFFFFFF)
    _T2.append(((_t >> 16) | (_t << 16)) & 0xFFFFFFFF)
    _T3.append(((_t >> 24) | (_t << 8)) & 0xFFFFFFFF)

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36,
         0x6C, 0xD8, 0xAB, 0x4D]


class AES:
    """The AES block transform for a fixed key.

    >>> AES(bytes(16)).encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    block_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise CryptoError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key = key
        self._round_keys = self._expand_key(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]

    @staticmethod
    def _expand_key(key: bytes) -> List[int]:
        nk = len(key) // 4
        rounds = {4: 10, 6: 12, 8: 14}[nk]
        words = [int.from_bytes(key[4 * i:4 * i + 4], "big") for i in range(nk)]
        for i in range(nk, 4 * (rounds + 1)):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = int.from_bytes(
                    bytes(_SBOX[b] for b in temp.to_bytes(4, "big")), "big"
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = int.from_bytes(
                    bytes(_SBOX[b] for b in temp.to_bytes(4, "big")), "big"
                )
            words.append(words[i - nk] ^ temp)
        return words

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise CryptoError("AES operates on 16-byte blocks")
        rk = self._round_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        for rnd in range(1, self.rounds):
            k = 4 * rnd
            t0 = (_T0[s0 >> 24] ^ _T1[(s1 >> 16) & 0xFF]
                  ^ _T2[(s2 >> 8) & 0xFF] ^ _T3[s3 & 0xFF] ^ rk[k])
            t1 = (_T0[s1 >> 24] ^ _T1[(s2 >> 16) & 0xFF]
                  ^ _T2[(s3 >> 8) & 0xFF] ^ _T3[s0 & 0xFF] ^ rk[k + 1])
            t2 = (_T0[s2 >> 24] ^ _T1[(s3 >> 16) & 0xFF]
                  ^ _T2[(s0 >> 8) & 0xFF] ^ _T3[s1 & 0xFF] ^ rk[k + 2])
            t3 = (_T0[s3 >> 24] ^ _T1[(s0 >> 16) & 0xFF]
                  ^ _T2[(s1 >> 8) & 0xFF] ^ _T3[s2 & 0xFF] ^ rk[k + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
        # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        k = 4 * self.rounds
        out0 = ((_SBOX[s0 >> 24] << 24) | (_SBOX[(s1 >> 16) & 0xFF] << 16)
                | (_SBOX[(s2 >> 8) & 0xFF] << 8) | _SBOX[s3 & 0xFF]) ^ rk[k]
        out1 = ((_SBOX[s1 >> 24] << 24) | (_SBOX[(s2 >> 16) & 0xFF] << 16)
                | (_SBOX[(s3 >> 8) & 0xFF] << 8) | _SBOX[s0 & 0xFF]) ^ rk[k + 1]
        out2 = ((_SBOX[s2 >> 24] << 24) | (_SBOX[(s3 >> 16) & 0xFF] << 16)
                | (_SBOX[(s0 >> 8) & 0xFF] << 8) | _SBOX[s1 & 0xFF]) ^ rk[k + 2]
        out3 = ((_SBOX[s3 >> 24] << 24) | (_SBOX[(s0 >> 16) & 0xFF] << 16)
                | (_SBOX[(s1 >> 8) & 0xFF] << 8) | _SBOX[s2 & 0xFF]) ^ rk[k + 3]
        return (out0.to_bytes(4, "big") + out1.to_bytes(4, "big")
                + out2.to_bytes(4, "big") + out3.to_bytes(4, "big"))

    def decrypt_block(self, block: bytes) -> bytes:
        """Inverse cipher (straightforward, non-table implementation).

        Only CTR/GCM modes are used in the system (which never need the
        inverse cipher); this is provided for completeness and tests.
        """
        if len(block) != 16:
            raise CryptoError("AES operates on 16-byte blocks")
        rk = self._round_keys
        state = [
            b ^ kb
            for four, key_word in zip(
                (block[i:i + 4] for i in range(0, 16, 4)),
                rk[4 * self.rounds:4 * self.rounds + 4],
            )
            for b, kb in zip(four, key_word.to_bytes(4, "big"))
        ]
        for rnd in range(self.rounds - 1, -1, -1):
            state = _inv_shift_rows(state)
            state = [_INV_SBOX[b] for b in state]
            key_bytes = b"".join(
                rk[4 * rnd + i].to_bytes(4, "big") for i in range(4)
            )
            state = [b ^ kb for b, kb in zip(state, key_bytes)]
            if rnd != 0:
                state = _inv_mix_columns(state)
        return bytes(state)


def _inv_shift_rows(state: List[int]) -> List[int]:
    out = [0] * 16
    for col in range(4):
        for row in range(4):
            out[4 * ((col + row) % 4) + row] = state[4 * col + row]
    return out


def _inv_mix_columns(state: List[int]) -> List[int]:
    out = [0] * 16
    for col in range(4):
        a = state[4 * col:4 * col + 4]
        out[4 * col + 0] = (_mul(a[0], 14) ^ _mul(a[1], 11)
                            ^ _mul(a[2], 13) ^ _mul(a[3], 9))
        out[4 * col + 1] = (_mul(a[0], 9) ^ _mul(a[1], 14)
                            ^ _mul(a[2], 11) ^ _mul(a[3], 13))
        out[4 * col + 2] = (_mul(a[0], 13) ^ _mul(a[1], 9)
                            ^ _mul(a[2], 14) ^ _mul(a[3], 11))
        out[4 * col + 3] = (_mul(a[0], 11) ^ _mul(a[1], 13)
                            ^ _mul(a[2], 9) ^ _mul(a[3], 14))
    return out
