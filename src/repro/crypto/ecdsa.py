"""ECDSA over NIST P-256 with deterministic nonces (RFC 6979 style).

Signatures appear throughout the system: administrators authenticate
membership updates (the paper authenticates admin identities, §II), SGX
quotes are signed by the simulated quoting infrastructure, IAS reports by
the simulated attestation service, and the Auditor/CA signs enclave
certificates (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.kdf import hmac_sha256, sha256
from repro.crypto.rng import Rng
from repro.ec.curve import Point
from repro.ec.p256 import P256
from repro.errors import AuthenticationError, CryptoError
from repro.mathutils.modular import modinv

_N = P256.order


@dataclass(frozen=True)
class EcdsaPublicKey:
    point: Point

    def verify(self, message: bytes, signature: bytes) -> None:
        """Verify; raises :class:`AuthenticationError` on failure."""
        if len(signature) != 64:
            raise AuthenticationError("ECDSA signature must be 64 bytes")
        r = int.from_bytes(signature[:32], "big")
        s = int.from_bytes(signature[32:], "big")
        if not (0 < r < _N and 0 < s < _N):
            raise AuthenticationError("ECDSA signature out of range")
        z = _hash_to_int(message)
        w = modinv(s, _N)
        u1 = (z * w) % _N
        u2 = (r * w) % _N
        point = P256.multi_mul([(u1, P256.generator), (u2, self.point)])
        if point.is_infinity() or point.x % _N != r:
            raise AuthenticationError("ECDSA signature invalid")

    def is_valid(self, message: bytes, signature: bytes) -> bool:
        try:
            self.verify(message, signature)
            return True
        except AuthenticationError:
            return False

    def encode(self) -> bytes:
        return self.point.encode()

    @classmethod
    def decode(cls, data: bytes) -> "EcdsaPublicKey":
        return cls(Point.decode(P256, data))


@dataclass(frozen=True)
class EcdsaPrivateKey:
    scalar: int

    def public_key(self) -> EcdsaPublicKey:
        return EcdsaPublicKey(P256.mul_generator(self.scalar))

    def sign(self, message: bytes) -> bytes:
        """Deterministic ECDSA (RFC 6979-style HMAC nonce derivation)."""
        z = _hash_to_int(message)
        k = _deterministic_nonce(self.scalar, message)
        for attempt in range(64):
            point = P256.mul_generator(k)
            r = point.x % _N
            if r != 0:
                s = (modinv(k, _N) * (z + r * self.scalar)) % _N
                if s != 0:
                    return r.to_bytes(32, "big") + s.to_bytes(32, "big")
            k = (k * 2 + 1 + attempt) % _N or 1
        raise CryptoError("failed to produce an ECDSA signature")


def generate_keypair(rng: Rng) -> EcdsaPrivateKey:
    return EcdsaPrivateKey(1 + rng.randint_below(_N - 1))


def _hash_to_int(message: bytes) -> int:
    return int.from_bytes(sha256(message), "big") % _N


def _deterministic_nonce(secret: int, message: bytes) -> int:
    """Simplified RFC 6979: HMAC-derived nonce, unique per (key, message)."""
    key_bytes = secret.to_bytes(32, "big")
    v = hmac_sha256(key_bytes, b"nonce:" + sha256(message))
    k = int.from_bytes(v + hmac_sha256(v, key_bytes), "big") % _N
    return k or 1
