"""Hashing and key-derivation helpers (SHA-256 based).

``hashlib`` provides the compression function; everything above it (HMAC,
HKDF, MGF1) is implemented here so the package carries its own KDF stack.
"""

from __future__ import annotations

import hashlib
from repro.errors import ValidationError

_BLOCK = 64  # SHA-256 block size
_DIGEST = 32


def sha256(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 (RFC 2104)."""
    if len(key) > _BLOCK:
        key = sha256(key)
    key = key.ljust(_BLOCK, b"\x00")
    o_pad = bytes(b ^ 0x5C for b in key)
    i_pad = bytes(b ^ 0x36 for b in key)
    return sha256(o_pad + sha256(i_pad + message))


def hkdf(ikm: bytes, length: int, salt: bytes = b"",
         info: bytes = b"") -> bytes:
    """HKDF-SHA256 extract-then-expand (RFC 5869)."""
    if length > 255 * _DIGEST:
        raise ValidationError("HKDF output too long")
    prk = hmac_sha256(salt or bytes(_DIGEST), ikm)
    out = b""
    block = b""
    counter = 1
    while len(out) < length:
        block = hmac_sha256(prk, block + info + bytes([counter]))
        out += block
        counter += 1
    return out[:length]


def mgf1(seed: bytes, length: int) -> bytes:
    """MGF1 mask generation (PKCS#1), used by RSA-OAEP."""
    out = b""
    counter = 0
    while len(out) < length:
        out += sha256(seed + counter.to_bytes(4, "big"))
        counter += 1
    return out[:length]
