"""ECIES over NIST P-256.

The default public-key primitive of the Hybrid Encryption (HE-PKI) baseline:
ephemeral ECDH → HKDF → AES-256-GCM.  Chosen over RSA as the baseline
workhorse because EC key generation is cheap enough to provision the very
large user populations the benchmarks sweep (the paper's HE baseline uses
"RSA or ECC", §III-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.kdf import hkdf
from repro.crypto.modes import gcm_decrypt, gcm_encrypt
from repro.crypto.rng import Rng
from repro.ec.curve import Point
from repro.ec.p256 import P256
from repro.errors import CryptoError

_POINT_SIZE = 33  # compressed P-256 point


@dataclass(frozen=True)
class EciesPublicKey:
    point: Point

    def encrypt(self, plaintext: bytes, rng: Rng, aad: bytes = b"") -> bytes:
        """Returns ``ephemeral_point || nonce || ciphertext || tag``."""
        eph_scalar = 1 + rng.randint_below(P256.order - 1)
        eph_point = P256.mul_generator(eph_scalar)
        shared = self.point * eph_scalar
        if shared.is_infinity():
            raise CryptoError("degenerate ECDH result")
        key = _derive_key(shared, eph_point)
        nonce = rng.random_bytes(12)
        return eph_point.encode() + nonce + gcm_encrypt(key, nonce, plaintext, aad)

    def encode(self) -> bytes:
        return self.point.encode()

    @classmethod
    def decode(cls, data: bytes) -> "EciesPublicKey":
        return cls(Point.decode(P256, data))


@dataclass(frozen=True)
class EciesPrivateKey:
    scalar: int

    def public_key(self) -> EciesPublicKey:
        return EciesPublicKey(P256.mul_generator(self.scalar))

    def decrypt(self, data: bytes, aad: bytes = b"") -> bytes:
        if len(data) < _POINT_SIZE + 12 + 16:
            raise CryptoError("ECIES ciphertext too short")
        eph_point = Point.decode(P256, data[:_POINT_SIZE])
        nonce = data[_POINT_SIZE:_POINT_SIZE + 12]
        body = data[_POINT_SIZE + 12:]
        shared = eph_point * self.scalar
        if shared.is_infinity():
            raise CryptoError("degenerate ECDH result")
        key = _derive_key(shared, eph_point)
        return gcm_decrypt(key, nonce, body, aad)


def generate_keypair(rng: Rng) -> EciesPrivateKey:
    return EciesPrivateKey(1 + rng.randint_below(P256.order - 1))


def ciphertext_overhead() -> int:
    """Bytes added per recipient: point + nonce + GCM tag.

    Used by the metadata-footprint benchmarks (Fig. 2b / Fig. 7)."""
    return _POINT_SIZE + 12 + 16


def _derive_key(shared: Point, eph_point: Point) -> bytes:
    return hkdf(
        shared.encode(), 32, salt=eph_point.encode(), info=b"repro:ecies:v1"
    )
