"""Exception hierarchy for the IBBE-SGX reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors such as
``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParameterError(ReproError):
    """Invalid or inconsistent cryptographic parameters."""


class MathError(ReproError):
    """Number-theoretic operation failed (e.g. non-invertible element)."""


class CurveError(ReproError):
    """A point is not on the expected curve or group operation failed."""


class PairingError(ReproError):
    """Pairing computation received degenerate or mismatched inputs."""


class CryptoError(ReproError):
    """Symmetric or public-key primitive failure."""


class AuthenticationError(CryptoError):
    """An authenticated decryption or signature verification failed."""


class SchemeError(ReproError):
    """IBE/IBBE scheme misuse (wrong key, user not in broadcast set, ...)."""


class EnclaveError(ReproError):
    """SGX substrate failure (sealing, measurement, boundary violation)."""


class AttestationError(EnclaveError):
    """Attestation or provisioning protocol failure."""


class SealingError(EnclaveError):
    """Sealed blob cannot be unsealed (wrong enclave, tampering, ...)."""


class EPCError(EnclaveError):
    """Enclave Page Cache exhaustion or invalid page operation."""


class StorageError(ReproError):
    """Cloud storage substrate failure."""


class NotFoundError(StorageError):
    """Requested object or directory does not exist."""


class UnavailableError(StorageError):
    """Transient storage outage: the request never reached the store and
    is safe to retry (the class :class:`~repro.faults.RetryPolicy`
    retries by default)."""


class StoreTimeoutError(UnavailableError):
    """A storage round trip timed out before completing.

    Injected only on *read* operations, where a retry is always safe; a
    timed-out write would leave the outcome ambiguous."""


class ConflictError(StorageError):
    """Optimistic-concurrency version conflict on a storage object."""


class AccessControlError(ReproError):
    """Group access control system misuse (duplicate member, unknown group)."""


class MembershipError(AccessControlError):
    """A membership operation references a user in an invalid state."""


class RevokedError(AccessControlError):
    """A revoked principal attempted an operation requiring membership."""


class StaleMetadataError(AccessControlError):
    """The cloud served metadata older than previously observed — a
    rollback/freshness violation by the storage provider."""


class ParallelError(ReproError):
    """Misconfiguration or failure of the parallel execution engine
    (:mod:`repro.par`): invalid worker counts, dead worker pools."""


class CrashError(ReproError):
    """Simulated process death at a named crash point (:mod:`repro.faults`).

    Raised by :func:`repro.faults.crash_point` when the active
    :class:`~repro.faults.FaultInjector` schedules a crash.  Nothing in
    the library catches it: it must unwind to the chaos driver, which
    models the recovery a freshly restarted process would run.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point!r}")
        self.point = point
