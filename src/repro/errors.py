"""Exception hierarchy for the IBBE-SGX reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors such as
``TypeError``.

Wire mapping: each class carries a stable string :attr:`~ReproError.code`
(``"conflict"``, ``"not_found"``, ...) used by the network serving layer
(:mod:`repro.net`) to carry errors across the store protocol without
pickling exception objects.  Codes are part of the wire contract — they
never change once released, even if a class is renamed.  Use
:func:`error_code` to read the code of an exception instance and
:func:`error_for_code` to reconstruct the closest matching exception on
the receiving side (unknown codes degrade to plain :class:`ReproError`).

Argument-validation failures raise :class:`ValidationError`, which also
subclasses :class:`ValueError`: callers that historically caught
``ValueError`` from e.g. :class:`~repro.faults.RetryPolicy` or the wNAF
recoder keep working for one release while migrating to the
``repro.errors`` type.
"""

from __future__ import annotations

from typing import Dict, Type


class ReproError(Exception):
    """Base class for all errors raised by this package."""

    #: Stable wire code (see the module docstring); subclasses override.
    code = "internal"


class ParameterError(ReproError):
    """Invalid or inconsistent cryptographic parameters."""

    code = "parameter"


class ValidationError(ReproError, ValueError):
    """Invalid argument to a library API (non-crypto misuse).

    Subclasses :class:`ValueError` so pre-existing ``except ValueError``
    callers keep working — the plain ``ValueError`` raises scattered
    through the package were consolidated onto this type."""

    code = "validation"


class MathError(ReproError):
    """Number-theoretic operation failed (e.g. non-invertible element)."""

    code = "math"


class CurveError(ReproError):
    """A point is not on the expected curve or group operation failed."""

    code = "curve"


class PairingError(ReproError):
    """Pairing computation received degenerate or mismatched inputs."""

    code = "pairing"


class CryptoError(ReproError):
    """Symmetric or public-key primitive failure."""

    code = "crypto"


class AuthenticationError(CryptoError):
    """An authenticated decryption or signature verification failed."""

    code = "authentication"


class SchemeError(ReproError):
    """IBE/IBBE scheme misuse (wrong key, user not in broadcast set, ...)."""

    code = "scheme"


class EnclaveError(ReproError):
    """SGX substrate failure (sealing, measurement, boundary violation)."""

    code = "enclave"


class AttestationError(EnclaveError):
    """Attestation or provisioning protocol failure."""

    code = "attestation"


class SealingError(EnclaveError):
    """Sealed blob cannot be unsealed (wrong enclave, tampering, ...)."""

    code = "sealing"


class EPCError(EnclaveError):
    """Enclave Page Cache exhaustion or invalid page operation."""

    code = "epc"


class StorageError(ReproError):
    """Cloud storage substrate failure."""

    code = "storage"


class NotFoundError(StorageError):
    """Requested object or directory does not exist."""

    code = "not_found"


class UnavailableError(StorageError):
    """Transient storage outage: the request never reached the store and
    is safe to retry (the class :class:`~repro.faults.RetryPolicy`
    retries by default)."""

    code = "unavailable"


class StoreTimeoutError(UnavailableError):
    """A storage round trip timed out before completing.

    Injected only on *read* operations, where a retry is always safe; a
    timed-out write would leave the outcome ambiguous."""

    code = "timeout"


class TransientAttestationError(AttestationError, UnavailableError):
    """A *transient* attestation failure: the handshake never completed
    (an IAS round trip dropped, an injected ``attest_fail`` fault fired),
    so repeating the exchange from the top is always safe.

    Subclasses both :class:`AttestationError` (it *is* an attestation
    failure, so existing ``except AttestationError`` handlers see it)
    and :class:`UnavailableError` (the default ``retry_on`` tuple of
    :class:`~repro.faults.RetryPolicy` covers it, so mutual-attestation
    drivers retried through a policy absorb these automatically).
    """

    code = "attest_transient"


class ConflictError(StorageError):
    """Optimistic-concurrency version conflict on a storage object."""

    code = "conflict"


class WireError(StorageError):
    """Malformed traffic on the store network protocol (:mod:`repro.net`):
    oversized or truncated frames, invalid JSON, unknown methods."""

    code = "wire"


class ProtocolVersionError(WireError):
    """Client and server speak incompatible store-protocol versions."""

    code = "protocol_version"


class AccessControlError(ReproError):
    """Group access control system misuse (duplicate member, unknown group)."""

    code = "access_control"


class MembershipError(AccessControlError):
    """A membership operation references a user in an invalid state."""

    code = "membership"


class RevokedError(AccessControlError):
    """A revoked principal attempted an operation requiring membership."""

    code = "revoked"


class StaleMetadataError(AccessControlError):
    """The cloud served metadata older than previously observed — a
    rollback/freshness violation by the storage provider."""

    code = "stale_metadata"


class ParallelError(ReproError):
    """Misconfiguration or failure of the parallel execution engine
    (:mod:`repro.par`): invalid worker counts, dead worker pools."""

    code = "parallel"


class CrashError(ReproError):
    """Simulated process death at a named crash point (:mod:`repro.faults`).

    Raised by :func:`repro.faults.crash_point` when the active
    :class:`~repro.faults.FaultInjector` schedules a crash.  Nothing in
    the library catches it: it must unwind to the chaos driver, which
    models the recovery a freshly restarted process would run.
    """

    code = "crash"

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point!r}")
        self.point = point


# ---------------------------------------------------------------------------
# Wire code registry
# ---------------------------------------------------------------------------

def _build_code_registry() -> Dict[str, Type[ReproError]]:
    """``code -> class`` for every :class:`ReproError` subclass defined
    here.  Built from the classes themselves so a new error type cannot
    forget to be wire-mappable; duplicate codes are a programming error."""
    registry: Dict[str, Type[ReproError]] = {}
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        existing = registry.get(cls.code)
        if existing is not None and not issubclass(cls, existing):
            raise RuntimeError(
                f"duplicate wire code {cls.code!r}: "
                f"{existing.__name__} vs {cls.__name__}"
            )
        # Prefer the most derived class only when codes genuinely
        # collide through inheritance (they should not); first wins.
        if cls.code not in registry:
            registry[cls.code] = cls
        stack.extend(cls.__subclasses__())
    return registry


CODE_REGISTRY: Dict[str, Type[ReproError]] = _build_code_registry()


def error_code(exc: BaseException) -> str:
    """The stable wire code for ``exc`` (``"internal"`` for anything that
    is not a :class:`ReproError`)."""
    if isinstance(exc, ReproError):
        return type(exc).code
    return ReproError.code


def error_for_code(code: str, message: str) -> ReproError:
    """Reconstruct the exception class registered for ``code``.

    Unknown codes (a newer server talking to an older client) degrade to
    a plain :class:`ReproError` carrying the code in its message, so the
    caller still sees the failure even if it cannot type-match it."""
    cls = CODE_REGISTRY.get(code)
    if cls is None:
        return ReproError(f"[{code}] {message}")
    try:
        return cls(message)
    except TypeError:  # pragma: no cover - defensive (odd __init__)
        return ReproError(f"[{code}] {message}")
