"""Elliptic curves over prime fields.

* :mod:`repro.ec.curve` — generic short-Weierstrass arithmetic
  (affine API, Jacobian-coordinate internals).
* :mod:`repro.ec.p256` — the NIST P-256 curve (HE-PKI baseline, signatures).
* :mod:`repro.ec.hashing` — try-and-increment hash-to-curve.
* :mod:`repro.ec.wnaf` — fixed-base wNAF precomputation tables
  (``ec.precomp.*`` metrics live in :data:`precomp_registry`).
"""

from repro.ec.curve import Curve, Point
from repro.ec.hashing import hash_to_point
from repro.ec.p256 import P256
from repro.ec.wnaf import FixedBaseWnaf, wnaf_digits
from repro.ec.wnaf import registry as precomp_registry

__all__ = ["Curve", "Point", "P256", "hash_to_point",
           "FixedBaseWnaf", "wnaf_digits", "precomp_registry"]
