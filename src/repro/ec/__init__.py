"""Elliptic curves over prime fields.

* :mod:`repro.ec.curve` — generic short-Weierstrass arithmetic
  (affine API, Jacobian-coordinate internals).
* :mod:`repro.ec.p256` — the NIST P-256 curve (HE-PKI baseline, signatures).
* :mod:`repro.ec.hashing` — try-and-increment hash-to-curve.
"""

from repro.ec.curve import Curve, Point
from repro.ec.hashing import hash_to_point
from repro.ec.p256 import P256

__all__ = ["Curve", "Point", "P256", "hash_to_point"]
