"""Hashing to elliptic-curve points (try-and-increment).

Boneh-Franklin IBE requires a map from arbitrary identity strings to curve
points.  We use the classic try-and-increment technique: hash the identity
with a counter to a candidate x-coordinate, lift when the cubic is a square,
then clear the cofactor so the result lands in the prime-order subgroup.
"""

from __future__ import annotations

import hashlib

from repro.errors import CurveError
from repro.ec.curve import Curve, Point
from repro.mathutils.modular import jacobi_symbol, modsqrt


def hash_to_point(curve: Curve, data: bytes, domain: bytes = b"repro:h2p",
                  max_tries: int = 512) -> Point:
    """Map ``data`` to a point in the prime-order subgroup of ``curve``.

    Deterministic in ``(curve, data, domain)``.  The expected number of
    tries is 2; ``max_tries`` bounds pathological inputs.
    """
    p = curve.p
    size = (p.bit_length() + 7) // 8
    for counter in range(max_tries):
        digest = b""
        block = 0
        while len(digest) < size:
            digest += hashlib.sha256(
                domain + counter.to_bytes(4, "big")
                + block.to_bytes(4, "big") + data
            ).digest()
            block += 1
        x = int.from_bytes(digest[:size], "big") % p
        rhs = (pow(x, 3, p) + curve.a * x + curve.b) % p
        if rhs != 0 and jacobi_symbol(rhs, p) != 1:
            continue
        y = modsqrt(rhs, p)
        # Use the hash's parity bit to pick a root deterministically.
        if digest[-1] & 1:
            y = (p - y) % p
        point = Point(curve, x, y)
        if curve.cofactor != 1:
            point = point * curve.cofactor
            if point.is_infinity():
                continue
        return point
    raise CurveError("hash_to_point exhausted its tries")
