"""Fixed-base scalar multiplication via width-w non-adjacent form (wNAF).

A scalar recoded into width-``w`` NAF has digits that are zero or odd with
``|d| < 2^(w-1)``, and at most one non-zero digit in any ``w`` consecutive
positions — on average ``bits/(w+1)`` non-zero digits versus ``bits/2``
set bits in binary.  For a *fixed* base the per-bit-position odd multiples
can be precomputed once, after which every multiplication is just the
sparse sum of table entries (group negation is free in EC groups, which is
what lets wNAF halve the table against unsigned windows of the same
width).

The long-lived bases this serves are the IBBE public-key elements ``w``,
``v``, ``h`` (exponentiated by every membership operation, Algorithms 1-3)
and curve generators (every signature / key generation).  Table usage is
observable through the module-level :data:`registry` (``ec.precomp.*``
metrics), which :meth:`repro.System.metric_sources` folds into the
unified telemetry snapshot.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.obs.collect import register_worker_source
from repro.obs.metrics import MetricRegistry
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.ec.curve import Curve, Jacobian

#: Process-wide precomputation metrics: ``ec.precomp.tables`` (tables
#: built), ``ec.precomp.hits`` (exponentiations served by a table),
#: ``ec.precomp.misses`` (exponentiations that ran a full ladder).
#: Registered as a worker source so counters bumped inside pool workers
#: are merged back into the parent process after each traced dispatch.
registry = register_worker_source(MetricRegistry())
TABLES = registry.counter("ec.precomp.tables")
HITS = registry.counter("ec.precomp.hits")
MISSES = registry.counter("ec.precomp.misses")

#: Default window width; 2^(w-2) table entries per digit position.
DEFAULT_WIDTH = 5


def wnaf_digits(k: int, width: int = DEFAULT_WIDTH) -> List[int]:
    """Width-``width`` NAF of ``k >= 0``, least-significant digit first.

    Every digit is either zero or an odd integer with absolute value below
    ``2^(width-1)``; for a ``b``-bit scalar the digit string has at most
    ``b + 1`` entries.
    """
    if k < 0:
        raise ValidationError("wNAF recoding expects a non-negative scalar")
    if width < 2:
        raise ValidationError("wNAF width must be >= 2")
    radix = 1 << width
    half = radix >> 1
    digits: List[int] = []
    while k:
        if k & 1:
            digit = k & (radix - 1)
            if digit >= half:
                digit -= radix
            k -= digit
            digits.append(digit)
        else:
            digits.append(0)
        k >>= 1
    return digits


class FixedBaseWnaf:
    """Per-digit-position odd-multiple tables for one fixed curve point.

    ``rows[i][t]`` holds ``(2t+1) · 2^i · B`` in Jacobian coordinates, so a
    recoded scalar is evaluated with one mixed addition per non-zero digit
    and *no* doublings; negative digits negate the looked-up point, which
    costs one field subtraction.
    """

    __slots__ = ("curve", "width", "rows")

    def __init__(self, curve: "Curve", base: "Jacobian",
                 bits: int, width: int = DEFAULT_WIDTH) -> None:
        self.curve = curve
        self.width = width
        rows: List[List["Jacobian"]] = []
        entries = 1 << (width - 2)
        for _ in range(bits + 2):
            twice = curve._jac_double(base)
            row = [base]
            for _ in range(entries - 1):
                row.append(curve._jac_add(row[-1], twice))
            rows.append(row)
            base = twice
        self.rows = rows
        TABLES.add()

    def mul(self, k: int) -> "Jacobian":
        """``k · B`` for ``0 <= k < 2^bits`` (Jacobian result)."""
        HITS.add()
        curve = self.curve
        p = curve.p
        acc: "Jacobian" = (1, 1, 0)
        for i, digit in enumerate(wnaf_digits(k, self.width)):
            if digit:
                x, y, z = self.rows[i][(abs(digit) - 1) >> 1]
                if digit < 0:
                    y = p - y
                acc = curve._jac_add(acc, (x, y, z))
        return acc
