"""Network serving layer for the cloud store (:mod:`repro.net`).

The paper's deployment separates the administrator (and clients) from
the storage provider by a network; this package makes that boundary
real while keeping every store consumer unchanged:

* :mod:`repro.net.wire` — the frame format, typed request/response
  payloads, protocol version and error-code mapping;
* :class:`StoreServer` / :class:`ServerThread` — an asyncio server
  hosting any :class:`~repro.cloud.CloudStoreProtocol` (plus optional
  :class:`AdminBridge` ecall forwarding);
* :class:`RemoteCloudStore` — a client implementing the same protocol
  ABC, so ``GroupAdministrator(cloud=RemoteCloudStore(url))`` just
  works;
* :class:`RemoteAdmin` — drives a server-hosted administrator through
  the whitelisted admin endpoint;
* :class:`RequestLog` — the opt-in JSONL per-request operational log
  servers write (one record per request, slow-request flagging, bounded
  in-memory tail surfaced through ``ops.stats``).

Observability across the boundary: requests can carry a trace context
(stitched back into one Chrome trace with per-connection lanes), and
every server answers the read-only ``ops.stats`` / ``ops.health``
methods — see ``docs/API.md`` ("Observability over the network").
"""

from repro.net.client import (
    RemoteAdmin,
    RemoteCloudStore,
    connect_store,
    parse_store_url,
)
from repro.net.reqlog import RequestLog
from repro.net.router import ShardDirectory, aggregate_health, probe_health
from repro.net.server import ADMIN_OPS, AdminBridge, ServerThread, StoreServer
from repro.net.wire import MAX_FRAME_BYTES, PROTOCOL_VERSION

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "StoreServer",
    "ServerThread",
    "AdminBridge",
    "ADMIN_OPS",
    "RemoteCloudStore",
    "RemoteAdmin",
    "RequestLog",
    "connect_store",
    "parse_store_url",
    "ShardDirectory",
    "aggregate_health",
    "probe_health",
]
