"""Structured per-request operational log for the store server.

One JSON object per handled request — request id, trace id, method,
bytes in/out, latency, outcome (``"ok"`` or the stable error code),
peer address and a ``slow`` flag — appended to a JSONL file when a
path is configured and always retained in a bounded in-memory tail.
The tail is what ``ops.stats`` responses, :class:`ChaosReport` and
:class:`ScaleReport` embed, so an operator (or a red CI job) sees the
last requests before a fault without shipping the whole log.

The log is strictly *observational*: it never touches the store, its
records carry wall-clock timestamps and OS-assigned peer ports, and
nothing in it feeds back into request handling — which is why enabling
it cannot perturb the byte-deterministic store digests the chaos and
scale suites pin.

Writes are line-buffered appends from the server's event loop; a
request record is a few hundred bytes, far below any pipe/file
atomicity concern, and the file is opened in append mode so several
server incarnations (e.g. chaos restarts) can share one log.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional

#: Default number of records kept in the in-memory tail.
DEFAULT_TAIL = 64

#: Default slow-request threshold in milliseconds.
DEFAULT_SLOW_MS = 250.0


class RequestLog:
    """Opt-in JSONL request log with a bounded in-memory tail.

    ``path=None`` keeps the log purely in memory (the chaos harness
    uses this to surface a request tail without touching disk).
    Requests at or above ``slow_ms`` latency are flagged ``slow`` so
    ``grep '"slow": true'`` finds the outliers.
    """

    def __init__(self, path: Optional[str] = None,
                 slow_ms: float = DEFAULT_SLOW_MS,
                 tail_size: int = DEFAULT_TAIL) -> None:
        self.path = str(Path(path)) if path else None
        self.slow_ms = float(slow_ms)
        self.records = 0
        self.slow = 0
        self.errors = 0
        self._tail: Deque[Dict[str, Any]] = deque(maxlen=tail_size)
        self._handle = None
        if self.path:
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")

    def record(self, *, request_id: int, method: str,
               latency_ms: float, outcome: str = "ok",
               trace_id: Optional[str] = None,
               bytes_in: int = 0, bytes_out: int = 0,
               peer: str = "?") -> Dict[str, Any]:
        """Append one request record; returns the record dict."""
        slow = latency_ms >= self.slow_ms
        row: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "request_id": request_id,
            "method": method,
            "trace_id": trace_id,
            "bytes_in": bytes_in,
            "bytes_out": bytes_out,
            "latency_ms": round(latency_ms, 3),
            "outcome": outcome,
            "peer": peer,
            "slow": slow,
        }
        self.records += 1
        if slow:
            self.slow += 1
        if outcome != "ok":
            self.errors += 1
        self._tail.append(row)
        if self._handle is not None:
            self._handle.write(json.dumps(row, sort_keys=True) + "\n")
            self._handle.flush()
        return row

    def tail(self) -> List[Dict[str, Any]]:
        """The most recent records, oldest first."""
        return list(self._tail)

    def status(self) -> Dict[str, Any]:
        """Summary block embedded in ``ops.stats`` responses."""
        return {
            "enabled": True,
            "path": self.path,
            "records": self.records,
            "slow": self.slow,
            "errors": self.errors,
            "slow_ms": self.slow_ms,
            "tail": self.tail(),
        }

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RequestLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        where = self.path or "<memory>"
        return (f"RequestLog({where}, records={self.records}, "
                f"slow={self.slow})")
