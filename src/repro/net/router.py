"""Client-side routing across a sharded server fleet.

``repro serve --shards N`` hosts one :class:`~repro.net.StoreServer`
per shard over a common store; this module is the consumer-side
counterpart.  :class:`ShardDirectory` maps a group id to the serving
shard with the same rendezvous hash the deployment itself uses
(:class:`~repro.shard.ring.ShardRing`), so any process holding the url
list — an admin tool, a syncing client, a health probe — agrees on
placement with every other, with no coordination service in between.

:func:`aggregate_health` is the fleet-wide form of the single-server
``ops.health`` probe: every endpoint is polled and the verdict is the
*worst* answer, mapped onto the same exit-code contract the ``repro
health`` CLI has always used (0 ok, 1 degraded/failing, 2 unreachable).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.errors import ReproError, ValidationError
from repro.net.client import RemoteCloudStore, connect_store
from repro.shard.ring import ShardRing

#: ops.health statuses ranked by severity; anything unknown ranks worst.
_STATUS_RANK = {"ok": 0, "degraded": 1, "failing": 1, "unreachable": 2}

#: status -> ``repro health`` exit code (worst-of across a fleet).
HEALTH_EXIT_CODES = {"ok": 0, "degraded": 1, "failing": 1, "unreachable": 2}


class ShardDirectory:
    """Deterministic group-to-server routing over a shard url list.

    The url *order* defines shard identity (``urls[i]`` is
    ``shard-i``), matching the order ``repro serve --shards`` prints
    its ``serving`` lines in.  Connections are opened lazily and cached
    per shard; :meth:`close` drops them all.
    """

    def __init__(self, urls: Sequence[str], timeout: float = 30.0) -> None:
        if not urls:
            raise ValidationError("ShardDirectory needs at least one url")
        self.urls: List[str] = list(urls)
        self.timeout = timeout
        self.ring = ShardRing([f"shard-{i}" for i in range(len(urls))])
        self._stores: Dict[int, RemoteCloudStore] = {}

    @property
    def nshards(self) -> int:
        return len(self.urls)

    def owner(self, group_id: str) -> int:
        """Index of the shard serving ``group_id``."""
        return self.ring.owner(group_id)

    def url_for(self, group_id: str) -> str:
        return self.urls[self.owner(group_id)]

    def store_for(self, group_id: str) -> RemoteCloudStore:
        """A (cached) connection to the store server owning ``group_id``."""
        return self.store_at(self.owner(group_id))

    def store_at(self, index: int) -> RemoteCloudStore:
        store = self._stores.get(index)
        if store is None:
            store = connect_store(self.urls[index], timeout=self.timeout)
            self._stores[index] = store
        return store

    def health(self) -> Dict[str, Any]:
        """Worst-of fleet health (see :func:`aggregate_health`)."""
        return aggregate_health(self.urls, timeout=self.timeout)

    def close(self) -> None:
        for store in self._stores.values():
            store.close()
        self._stores.clear()


def probe_health(url: str, timeout: float = 5.0) -> Dict[str, Any]:
    """One endpoint's ``ops.health`` answer, with connection failures
    folded into the status (``unreachable``) instead of raised."""
    try:
        store = connect_store(url, timeout=timeout)
    except ReproError as exc:
        return {"url": url, "status": "unreachable", "error": str(exc)}
    try:
        health = store.server_health()
    except ReproError as exc:
        return {"url": url, "status": "unreachable", "error": str(exc)}
    finally:
        store.close()
    health["url"] = url
    return health


def aggregate_health(urls: Sequence[str],
                     timeout: float = 5.0) -> Dict[str, Any]:
    """Probe every endpoint and report the worst status.

    Returns ``{"status": ..., "exit_code": ..., "endpoints": [...]}``
    where ``endpoints`` holds each per-url payload in input order and
    ``exit_code`` follows the CLI contract (0 ok, 1 degraded/failing,
    2 any endpoint unreachable).
    """
    endpoints = [probe_health(url, timeout=timeout) for url in urls]
    worst = max(
        (e.get("status", "unreachable") for e in endpoints),
        key=lambda status: _STATUS_RANK.get(status, 2),
    )
    return {
        "status": worst,
        "exit_code": HEALTH_EXIT_CODES.get(worst, 2),
        "endpoints": endpoints,
    }
