"""Wire schema of the store network protocol (:mod:`repro.net`).

**Framing.**  Every message is one *frame*: a 4-byte big-endian length
prefix followed by that many bytes of UTF-8 JSON.  Frames larger than
:data:`MAX_FRAME_BYTES` are rejected with
:class:`~repro.errors.WireError` before allocation (a malicious peer
cannot make the other side buffer gigabytes).  Binary payloads travel as
base64 strings inside the JSON body.

**Envelopes.**  A request frame decodes to :class:`Request` —
``{"id": n, "method": "store.put", "params": {...}}`` — and a response
frame to :class:`Response` — ``{"id": n, "ok": true, "result": {...}}``
or ``{"id": n, "ok": false, "error": {"code": ..., "message": ...}}``.
``id`` echoes the request so a client can pipeline; it must be a JSON
integer and is *required* — a missing or non-integer id raises
:class:`~repro.errors.ValidationError` (code ``validation``) so a
malformed frame can never alias request 0.  Error codes are the stable
strings of the :mod:`repro.errors` taxonomy (see
:func:`repro.errors.error_code`); :func:`error_to_wire` /
:func:`wire_to_error` convert between exception objects and the wire
form, with unknown codes degrading to plain
:class:`~repro.errors.ReproError` on the receiving side.

**Trace context.**  A request may carry an optional ``trace`` object —
``{"id": "<hex trace id>", "parent": <client span id>}`` — asking the
server to run the handler under a distributed-trace capture and ship
the resulting span rows and counter deltas back on the response's
optional ``telemetry`` object.  Both keys are *omitted entirely* when
unused, keeping the non-traced envelope byte-identical to protocol
version 1 as shipped (the perf gate pins per-RPC wire bytes).

**Handshake.**  The first exchange on every connection must be
``hello``: the client sends its :data:`PROTOCOL_VERSION`, the server
answers with its own plus a feature list (``"store"``; ``"trace"`` for
trace-context propagation; ``"ops"`` for the read-only ``ops.stats`` /
``ops.health`` surface; and ``"admin"`` when ecall forwarding is
enabled).  A version mismatch fails the connection with code
``protocol_version``.  Versioning rule: additive, backwards-compatible
changes (new optional params, new methods, new features) keep the
version; anything that changes the meaning of an existing field bumps
it, and servers refuse clients they cannot serve faithfully.

**Method payloads.**  One typed request/response dataclass pair per
contract method (``PutRequest``/``PutResponse``, ...), each knowing its
``METHOD`` string and its ``to_params``/``from_params`` codec.
:data:`METHODS` maps the method string to the pair — the server
dispatches and the client marshals through that single table, so a
schema change is one edit here plus its handler.
"""

from __future__ import annotations

import base64
import json
import struct
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Type

from repro.cloud.store import (
    BatchDelete,
    BatchPut,
    CloudBatch,
    CloudObject,
    DirectoryEvent,
)
from repro.errors import ReproError, ValidationError, WireError, \
    error_code, error_for_code

#: Bumped on incompatible schema changes (see the module docstring).
PROTOCOL_VERSION = 1

#: Hello feature strings (additive capabilities within one protocol
#: version).  Clients must treat unknown features as ignorable.
FEATURE_STORE = "store"
FEATURE_ADMIN = "admin"
FEATURE_TRACE = "trace"
FEATURE_OPS = "ops"

#: Upper bound on a single frame.  Generous for group metadata (records
#: are a few KiB) while bounding what a peer can force us to buffer.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One length-prefixed JSON frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte limit")
    return _LENGTH.pack(len(body)) + body


def decode_frame_length(header: bytes) -> int:
    """Validated body length from the 4-byte prefix."""
    if len(header) != _LENGTH.size:
        raise WireError("truncated frame header")
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"peer announced a {length}-byte frame "
                        f"(limit {MAX_FRAME_BYTES})")
    return length


def decode_frame_body(body: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError("frame body is not valid JSON") from exc
    if not isinstance(payload, dict):
        raise WireError("frame body must be a JSON object")
    return payload


def b64e(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def b64d(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:
        raise WireError("invalid base64 payload") from exc


# ---------------------------------------------------------------------------
# Envelopes
# ---------------------------------------------------------------------------

def _envelope_id(obj: Dict[str, Any], kind: str) -> int:
    """The envelope's ``id``, validated strictly.

    The id must be present and a JSON integer (bools are rejected —
    they are ``int`` subclasses in Python but not request ids).  A
    missing or malformed id raises :class:`ValidationError` rather than
    silently defaulting to 0, which would alias an attacker-chosen or
    truncated frame onto a legitimate request id.
    """
    if "id" not in obj:
        raise ValidationError(f"{kind} envelope is missing its id")
    raw = obj["id"]
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ValidationError(
            f"{kind} envelope id must be an integer, got {raw!r}")
    return raw


@dataclass(frozen=True)
class Request:
    """One RPC request envelope.

    ``trace`` is the optional distributed-trace context —
    ``{"id": "<hex>", "parent": <span id>}`` — serialized only when
    set so a non-traced request stays byte-identical on the wire.
    """

    id: int
    method: str
    params: Dict[str, Any] = field(default_factory=dict)
    trace: Optional[Dict[str, Any]] = None

    def to_wire(self) -> Dict[str, Any]:
        obj: Dict[str, Any] = {"id": self.id, "method": self.method,
                               "params": self.params}
        if self.trace is not None:
            obj["trace"] = self.trace
        return obj

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "Request":
        try:
            method = obj["method"]
        except KeyError as exc:
            raise WireError("malformed request envelope") from exc
        params = obj.get("params", {})
        if not isinstance(method, str) or not isinstance(params, dict):
            raise WireError("malformed request envelope")
        request_id = _envelope_id(obj, "request")
        trace = obj.get("trace")
        if trace is not None and not isinstance(trace, dict):
            raise WireError("malformed request trace context")
        return cls(id=request_id, method=method, params=params,
                   trace=trace)


@dataclass(frozen=True)
class WireFault:
    """The error half of a failed :class:`Response`."""

    code: str
    message: str

    def to_wire(self) -> Dict[str, Any]:
        return {"code": self.code, "message": self.message}

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "WireFault":
        return cls(code=str(obj.get("code", "internal")),
                   message=str(obj.get("message", "")))


@dataclass(frozen=True)
class Response:
    """One RPC response envelope (success XOR error).

    ``telemetry`` piggybacks the server-side capture of a traced
    request — ``{"spans": [row, ...], "counters": {name: delta},
    "dropped": n, "pid": n}`` — and is serialized only when present,
    so responses to non-traced requests stay byte-identical.
    """

    id: int
    result: Optional[Dict[str, Any]] = None
    error: Optional[WireFault] = None
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_wire(self) -> Dict[str, Any]:
        if self.error is not None:
            obj: Dict[str, Any] = {"id": self.id, "ok": False,
                                   "error": self.error.to_wire()}
        else:
            obj = {"id": self.id, "ok": True, "result": self.result or {}}
        if self.telemetry is not None:
            obj["telemetry"] = self.telemetry
        return obj

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "Response":
        try:
            ok = bool(obj["ok"])
        except KeyError as exc:
            raise WireError("malformed response envelope") from exc
        request_id = _envelope_id(obj, "response")
        telemetry = obj.get("telemetry")
        if telemetry is not None and not isinstance(telemetry, dict):
            raise WireError("malformed response telemetry")
        if ok:
            result = obj.get("result", {})
            if not isinstance(result, dict):
                raise WireError("malformed response result")
            return cls(id=request_id, result=result, telemetry=telemetry)
        error = obj.get("error")
        if not isinstance(error, dict):
            raise WireError("malformed response error")
        return cls(id=request_id, error=WireFault.from_wire(error),
                   telemetry=telemetry)


def error_to_wire(exc: BaseException) -> WireFault:
    """Map an exception onto its stable wire code."""
    return WireFault(code=error_code(exc), message=str(exc))


def wire_to_error(fault: WireFault) -> ReproError:
    """Reconstruct the closest matching exception for a wire fault."""
    return error_for_code(fault.code, fault.message)


# ---------------------------------------------------------------------------
# Shared object codecs
# ---------------------------------------------------------------------------

def encode_object(obj: CloudObject) -> Dict[str, Any]:
    return {"path": obj.path, "data": b64e(obj.data),
            "version": obj.version}


def decode_object(obj: Dict[str, Any]) -> CloudObject:
    try:
        return CloudObject(path=obj["path"], data=b64d(obj["data"]),
                           version=int(obj["version"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError("malformed object record") from exc


def encode_event(event: DirectoryEvent) -> Dict[str, Any]:
    return {"seq": event.sequence, "path": event.path,
            "kind": event.kind, "version": event.version}


def decode_event(obj: Dict[str, Any]) -> DirectoryEvent:
    try:
        return DirectoryEvent(sequence=int(obj["seq"]), path=obj["path"],
                              kind=obj["kind"], version=int(obj["version"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError("malformed directory event") from exc


def encode_batch(batch: CloudBatch) -> List[Dict[str, Any]]:
    ops: List[Dict[str, Any]] = []
    for op in batch.ops:
        if isinstance(op, BatchPut):
            ops.append({"op": "put", "path": op.path,
                        "data": b64e(op.data),
                        "expected_version": op.expected_version})
        elif isinstance(op, BatchDelete):
            ops.append({"op": "delete", "path": op.path,
                        "ignore_missing": op.ignore_missing})
        else:  # pragma: no cover - defensive
            raise WireError(f"unknown batch operation {op!r}")
    return ops


def decode_batch(ops: List[Dict[str, Any]]) -> CloudBatch:
    batch = CloudBatch()
    for op in ops:
        try:
            kind = op["op"]
            if kind == "put":
                expected = op.get("expected_version")
                batch.put(op["path"], b64d(op["data"]),
                          int(expected) if expected is not None else None)
            elif kind == "delete":
                batch.delete(op["path"],
                             bool(op.get("ignore_missing", False)))
            else:
                raise WireError(f"unknown batch op kind {kind!r}")
        except (KeyError, TypeError, ValueError) as exc:
            raise WireError("malformed batch operation") from exc
    return batch


# ---------------------------------------------------------------------------
# Typed method payloads
# ---------------------------------------------------------------------------

class _Message:
    """Base for typed payloads: default codec is field-by-field JSON."""

    METHOD: ClassVar[str] = ""

    def to_params(self) -> Dict[str, Any]:
        return dict(self.__dict__)

    @classmethod
    def from_params(cls, params: Dict[str, Any]):
        try:
            return cls(**params)
        except TypeError as exc:
            raise WireError(
                f"malformed {cls.__name__} payload: {exc}") from exc


@dataclass
class HelloRequest(_Message):
    METHOD: ClassVar[str] = "hello"
    protocol: int = PROTOCOL_VERSION
    client: str = "repro"


@dataclass
class HelloResponse(_Message):
    METHOD: ClassVar[str] = "hello"
    protocol: int = PROTOCOL_VERSION
    server: str = "repro-store"
    features: List[str] = field(default_factory=lambda: ["store"])


@dataclass
class PutRequest(_Message):
    METHOD: ClassVar[str] = "store.put"
    path: str = ""
    data: str = ""                       # base64
    expected_version: Optional[int] = None


@dataclass
class PutResponse(_Message):
    METHOD: ClassVar[str] = "store.put"
    version: int = 0


@dataclass
class GetRequest(_Message):
    METHOD: ClassVar[str] = "store.get"
    path: str = ""


@dataclass
class GetResponse(_Message):
    METHOD: ClassVar[str] = "store.get"
    object: Dict[str, Any] = field(default_factory=dict)


@dataclass
class GetManyRequest(_Message):
    METHOD: ClassVar[str] = "store.get_many"
    paths: List[str] = field(default_factory=list)


@dataclass
class GetManyResponse(_Message):
    METHOD: ClassVar[str] = "store.get_many"
    objects: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class ExistsRequest(_Message):
    METHOD: ClassVar[str] = "store.exists"
    path: str = ""


@dataclass
class ExistsResponse(_Message):
    METHOD: ClassVar[str] = "store.exists"
    exists: bool = False


@dataclass
class DeleteRequest(_Message):
    METHOD: ClassVar[str] = "store.delete"
    path: str = ""


@dataclass
class DeleteResponse(_Message):
    METHOD: ClassVar[str] = "store.delete"


@dataclass
class CommitRequest(_Message):
    METHOD: ClassVar[str] = "store.commit"
    ops: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class CommitResponse(_Message):
    METHOD: ClassVar[str] = "store.commit"
    versions: Dict[str, int] = field(default_factory=dict)


@dataclass
class ListDirRequest(_Message):
    METHOD: ClassVar[str] = "store.list_dir"
    directory: str = ""


@dataclass
class ListDirResponse(_Message):
    METHOD: ClassVar[str] = "store.list_dir"
    children: List[str] = field(default_factory=list)


@dataclass
class PollDirRequest(_Message):
    METHOD: ClassVar[str] = "store.poll_dir"
    directory: str = ""
    after_sequence: int = 0
    #: Server-side long-poll budget; 0 returns immediately (the
    #: in-process ``poll_dir`` semantics).
    wait_ms: float = 0.0


@dataclass
class PollDirResponse(_Message):
    METHOD: ClassVar[str] = "store.poll_dir"
    events: List[Dict[str, Any]] = field(default_factory=list)
    cursor: int = 0


@dataclass
class CompactRequest(_Message):
    METHOD: ClassVar[str] = "store.compact"


@dataclass
class CompactResponse(_Message):
    METHOD: ClassVar[str] = "store.compact"
    truncated: int = 0


@dataclass
class HorizonRequest(_Message):
    METHOD: ClassVar[str] = "store.snapshot_horizon"


@dataclass
class HorizonResponse(_Message):
    METHOD: ClassVar[str] = "store.snapshot_horizon"
    horizon: int = 0


@dataclass
class HeadSequenceRequest(_Message):
    METHOD: ClassVar[str] = "store.head_sequence"


@dataclass
class HeadSequenceResponse(_Message):
    METHOD: ClassVar[str] = "store.head_sequence"
    sequence: int = 0


@dataclass
class AdversaryViewRequest(_Message):
    """Test/audit interface: the honest-but-curious provider's view.

    Served so remote runs can execute the same security assertions and
    chaos digests as in-process runs; a hardened deployment would gate
    this behind operator authentication."""

    METHOD: ClassVar[str] = "store.adversary_view"


@dataclass
class AdversaryViewResponse(_Message):
    METHOD: ClassVar[str] = "store.adversary_view"
    objects: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class StoredBytesRequest(_Message):
    METHOD: ClassVar[str] = "store.total_stored_bytes"
    prefix: str = "/"


@dataclass
class StoredBytesResponse(_Message):
    METHOD: ClassVar[str] = "store.total_stored_bytes"
    total: int = 0


@dataclass
class AdminCallRequest(_Message):
    """Admin-ecall forwarding: run one whitelisted administrative
    operation on the server-hosted enclave/administrator."""

    METHOD: ClassVar[str] = "admin.call"
    op: str = ""
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class AdminCallResponse(_Message):
    METHOD: ClassVar[str] = "admin.call"
    result: Any = None


@dataclass
class StatsRequest(_Message):
    """Read-only operational snapshot of a running server (uptime,
    connection gauges, merged metrics, per-method SLO windows,
    journal-recovery state, request-log status)."""

    METHOD: ClassVar[str] = "ops.stats"


@dataclass
class StatsResponse(_Message):
    METHOD: ClassVar[str] = "ops.stats"
    stats: Dict[str, Any] = field(default_factory=dict)


@dataclass
class HealthRequest(_Message):
    """Liveness/health probe: cheap enough for a tight CI loop."""

    METHOD: ClassVar[str] = "ops.health"


@dataclass
class HealthResponse(_Message):
    METHOD: ClassVar[str] = "ops.health"
    status: str = "ok"                   # ok | degraded | failing
    uptime_s: float = 0.0
    checks: Dict[str, Any] = field(default_factory=dict)


#: Wire methods whose request mutates store state.  A connection lost
#: after sending one of these leaves the outcome ambiguous — the client
#: must NOT map that onto the retry-safe ``unavailable`` code.
MUTATING_WIRE_METHODS = frozenset({
    "store.put", "store.delete", "store.commit", "store.compact",
    "admin.call",
})

#: method string -> (request type, response type); the dispatch table.
METHODS: Dict[str, Tuple[Type[_Message], Type[_Message]]] = {
    cls.METHOD: (cls, resp) for cls, resp in [
        (HelloRequest, HelloResponse),
        (PutRequest, PutResponse),
        (GetRequest, GetResponse),
        (GetManyRequest, GetManyResponse),
        (ExistsRequest, ExistsResponse),
        (DeleteRequest, DeleteResponse),
        (CommitRequest, CommitResponse),
        (ListDirRequest, ListDirResponse),
        (PollDirRequest, PollDirResponse),
        (CompactRequest, CompactResponse),
        (HorizonRequest, HorizonResponse),
        (HeadSequenceRequest, HeadSequenceResponse),
        (AdversaryViewRequest, AdversaryViewResponse),
        (StoredBytesRequest, StoredBytesResponse),
        (AdminCallRequest, AdminCallResponse),
        (StatsRequest, StatsResponse),
        (HealthRequest, HealthResponse),
    ]
}
