"""``RemoteCloudStore`` — the client side of the store protocol.

Implements the full :class:`~repro.cloud.CloudStoreProtocol`, so every
consumer of a store — :class:`~repro.core.GroupAdministrator`,
:class:`~repro.core.GroupClient`, the multi-admin machinery, the chaos
harness, the benchmarks — runs unmodified against a remote
:class:`~repro.net.StoreServer`.  The transport is a single blocking
socket guarded by a lock (store consumers are synchronous; one
in-flight request at a time mirrors the sequential round-trip model the
rest of the stack accounts for).

**Failure taxonomy** (what :class:`~repro.faults.RetryPolicy` relies
on):

* connect/handshake failures and send failures on *read* operations
  raise :class:`~repro.errors.UnavailableError` — the request did not
  execute, retrying is safe;
* a connection lost *after a mutating request may have reached the
  server* raises plain :class:`~repro.errors.StorageError` ("outcome
  unknown") — blind retry is **not** safe, the caller must re-inspect
  state exactly as it would after a process crash;
* server-reported errors are reconstructed from their stable wire code
  (:func:`repro.errors.error_for_code`) — a remote
  :class:`~repro.errors.ConflictError` is a local ``ConflictError``.

**Observability.**  The client keeps a local
:class:`~repro.cloud.store.CloudMetrics` mirror (``cloud.requests``,
``cloud.bytes_in/out`` measured on payloads, exactly like an in-process
store) so bandwidth-reporting code works unchanged, plus ``net.rpc.*``
counters and a latency histogram in the same registry; every RPC runs
inside a ``net.rpc.<method>`` span.

**Distributed tracing.**  When the global tracer is enabled and the
server advertised the ``"trace"`` hello feature, every RPC carries a
``trace`` context (the tracer's trace id + the open ``net.rpc.*``
span's id) and the response's piggybacked ``telemetry`` — the server's
handler span tree and store counter deltas — is stitched into the
local trace via :func:`repro.obs.merge_traces`.  Each connection gets
its own negative ``tid`` lane (``conn-1``, ``conn-2``, … in the Chrome
trace), and shipped counter deltas accumulate in
:attr:`RemoteCloudStore.server_metrics` — deliberately separate from
the client-side mirror so server-observed and client-observed costs
never double count.  With tracing disabled nothing is added to the
envelope: the wire bytes are identical to a pre-trace client.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.cloud.protocol import CloudStoreProtocol
from repro.cloud.store import (
    CloudBatch,
    CloudMetrics,
    CloudObject,
    DirectoryEvent,
)
from repro.errors import (
    ProtocolVersionError,
    StorageError,
    UnavailableError,
    ValidationError,
    WireError,
)
from repro.net import wire
from repro.net.wire import MUTATING_WIRE_METHODS
from repro.obs import MetricRegistry, merge_traces, span, tracer

#: Per-process connection-lane allocator: lane n renders as Chrome
#: trace thread ``conn-n`` (tid -n; negative so lanes can never collide
#: with worker pids).
_CONNECTION_LANES = itertools.count(1)


def parse_store_url(url: str) -> Tuple[str, int]:
    """``tcp://host:port`` (or bare ``host:port``) -> ``(host, port)``."""
    stripped = url.strip()
    if stripped.startswith("tcp://"):
        stripped = stripped[len("tcp://"):]
    host, sep, port = stripped.rpartition(":")
    if not sep or not host:
        raise ValidationError(f"store URL {url!r} is not host:port")
    try:
        return host, int(port)
    except ValueError as exc:
        raise ValidationError(f"store URL {url!r} has a bad port") from exc


class RemoteCloudStore(CloudStoreProtocol):
    """A :class:`~repro.cloud.CloudStoreProtocol` over TCP."""

    def __init__(self, url: str, timeout: float = 30.0,
                 poll_wait_ms: float = 0.0,
                 client_name: str = "repro",
                 trace_propagation: bool = True) -> None:
        self._host, self._port = parse_store_url(url)
        self.url = f"tcp://{self._host}:{self._port}"
        self._timeout = timeout
        #: Server-side long-poll budget attached to every ``poll_dir``;
        #: 0 keeps the immediate-return contract semantics.
        self.poll_wait_ms = poll_wait_ms
        self._client_name = client_name
        #: Attach trace contexts when the global tracer is enabled and
        #: the server advertised ``"trace"`` (off: never touch the
        #: envelope, whatever the tracer state).
        self.trace_propagation = trace_propagation
        #: This connection's Chrome-trace lane (rendered ``conn-n``).
        self.lane = next(_CONNECTION_LANES)
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._next_id = 0
        self.server_features: Tuple[str, ...] = ()
        self.metrics = CloudMetrics()
        #: Counter deltas the server shipped back on traced responses —
        #: the *server's* view of the work this connection caused, kept
        #: apart from the client-side ``metrics`` mirror so the two
        #: never double count.
        self.server_metrics = MetricRegistry()
        reg = self.metrics.registry
        self._rpc_requests = reg.counter("net.rpc.requests")
        self._rpc_errors = reg.counter("net.rpc.errors")
        self._rpc_reconnects = reg.counter("net.rpc.reconnects")
        self._rpc_bytes_sent = reg.counter("net.rpc.bytes_sent")
        self._rpc_bytes_received = reg.counter("net.rpc.bytes_received")
        self._rpc_remote_spans = reg.counter("net.rpc.remote_spans")
        self._rpc_latency = reg.histogram("net.rpc.latency_ms")

    # -- transport ---------------------------------------------------------

    def _connect(self) -> None:
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout)
        except OSError as exc:
            raise UnavailableError(
                f"cannot reach store at {self.url}: {exc}") from exc
        self._sock = sock
        self._rpc_reconnects.add()
        hello = wire.HelloRequest(protocol=wire.PROTOCOL_VERSION,
                                  client=self._client_name)
        try:
            reply = self._roundtrip_raw(hello.METHOD, hello.to_params())
        except (UnavailableError, WireError):
            self._drop()
            raise
        if not reply.ok:
            self._drop()
            assert reply.error is not None
            raise wire.wire_to_error(reply.error)
        greeting = wire.HelloResponse.from_params(reply.result or {})
        if greeting.protocol != wire.PROTOCOL_VERSION:
            self._drop()
            raise ProtocolVersionError(
                f"server speaks protocol {greeting.protocol}, "
                f"client requires {wire.PROTOCOL_VERSION}")
        self.server_features = tuple(greeting.features)

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop()

    def _recv_exactly(self, count: int) -> bytes:
        assert self._sock is not None
        chunks = []
        while count:
            chunk = self._sock.recv(count)
            if not chunk:
                raise ConnectionError("connection closed by server")
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def _roundtrip_raw(self, method: str, params: Dict[str, object],
                       trace: Optional[Dict[str, Any]] = None
                       ) -> wire.Response:
        """One frame out, one frame in, on the live socket.  Raises
        ``ConnectionError``/``OSError`` upward for `_call` to classify."""
        assert self._sock is not None
        self._next_id += 1
        request_id = self._next_id
        frame = wire.encode_frame(
            wire.Request(id=request_id, method=method,
                         params=params, trace=trace).to_wire())
        try:
            self._sock.sendall(frame)
            self._rpc_bytes_sent.add(len(frame))
            header = self._recv_exactly(4)
            body = self._recv_exactly(wire.decode_frame_length(header))
        except socket.timeout as exc:
            raise ConnectionError(f"rpc timed out: {exc}") from exc
        self._rpc_bytes_received.add(len(header) + len(body))
        response = wire.Response.from_wire(wire.decode_frame_body(body))
        if response.id != request_id:
            raise WireError(
                f"response id {response.id} does not match "
                f"request id {request_id}")
        return response

    def _call(self, message: wire._Message) -> Dict[str, object]:
        """Send one typed request; return the (ok) result params.

        Classifies transport failures per the module docstring and
        reconstructs server errors from their wire code."""
        method = message.METHOD
        mutating = method in MUTATING_WIRE_METHODS
        with self._lock:
            with span(f"net.rpc.{method}", "net", url=self.url) as rpc:
                started = time.perf_counter()
                sent = False
                try:
                    if self._sock is None:
                        self._connect()
                    trace_ctx = self._trace_context(rpc)
                    sent = True    # sendall may hand bytes to the kernel
                    response = self._roundtrip_raw(method,
                                                   message.to_params(),
                                                   trace=trace_ctx)
                except (ConnectionError, OSError) as exc:
                    self._drop()
                    self._rpc_errors.add()
                    if mutating and sent:
                        raise StorageError(
                            f"connection lost awaiting {method} response: "
                            f"outcome unknown ({exc})") from exc
                    raise UnavailableError(
                        f"store at {self.url} unavailable during "
                        f"{method}: {exc}") from exc
                self._rpc_requests.add()
                self._rpc_latency.observe(
                    (time.perf_counter() - started) * 1000.0)
                if response.telemetry is not None:
                    self._merge_telemetry(response.telemetry)
                if not response.ok:
                    self._rpc_errors.add()
                    assert response.error is not None
                    raise wire.wire_to_error(response.error)
                return response.result or {}

    def _trace_context(self, rpc_span) -> Optional[Dict[str, Any]]:
        """The ``trace`` context for the current RPC, or ``None``.

        Attached only when propagation is on, the global tracer is
        enabled *and* the connected server advertised ``"trace"`` — so
        against an older server (or with telemetry off) the request
        envelope stays byte-for-byte what it was before tracing
        existed.
        """
        t = tracer()
        if not (self.trace_propagation and t.enabled
                and wire.FEATURE_TRACE in self.server_features):
            return None
        ctx: Dict[str, Any] = {"id": t.trace_id}
        span_id = getattr(rpc_span, "span_id", None)
        if span_id is not None:
            ctx["parent"] = span_id
            rpc_span.set(trace_id=t.trace_id)
        return ctx

    def _merge_telemetry(self, telemetry: Dict[str, Any]) -> None:
        """Stitch a piggybacked server capture into the local trace.

        Span rows land on this connection's negative-``tid`` lane and
        attach under the currently open ``net.rpc.*`` span (that is
        exactly what :func:`repro.obs.merge_traces` does with the
        innermost active span); counter deltas accumulate in
        :attr:`server_metrics`.
        """
        rows = telemetry.get("spans") or []
        if rows:
            kept = merge_traces(tracer(), rows, tid=-self.lane)
            self._rpc_remote_spans.add(kept)
        deltas = telemetry.get("counters") or {}
        if deltas:
            self.server_metrics.add_counter_deltas(deltas)
        dropped = int(telemetry.get("dropped") or 0)
        if dropped:
            tracer().registry.counter("obs.spans.dropped").add(dropped)

    # -- contract methods --------------------------------------------------

    def put(self, path: str, data: bytes,
            expected_version: Optional[int] = None) -> int:
        result = self._call(wire.PutRequest(
            path=path, data=wire.b64e(data),
            expected_version=expected_version))
        self.metrics.requests += 1
        self.metrics.bytes_in += len(data)
        return wire.PutResponse.from_params(result).version

    def get(self, path: str) -> CloudObject:
        result = self._call(wire.GetRequest(path=path))
        obj = wire.decode_object(
            wire.GetResponse.from_params(result).object)
        self.metrics.requests += 1
        self.metrics.bytes_out += len(obj.data)
        return obj

    def get_many(self, paths: Iterable[str]) -> Dict[str, CloudObject]:
        result = self._call(wire.GetManyRequest(paths=list(paths)))
        objects = [wire.decode_object(o) for o in
                   wire.GetManyResponse.from_params(result).objects]
        self.metrics.requests += 1
        self.metrics.bytes_out += sum(len(o.data) for o in objects)
        return {o.path: o for o in objects}

    def exists(self, path: str) -> bool:
        result = self._call(wire.ExistsRequest(path=path))
        self.metrics.requests += 1
        return wire.ExistsResponse.from_params(result).exists

    def delete(self, path: str) -> None:
        self._call(wire.DeleteRequest(path=path))
        self.metrics.requests += 1

    def commit(self, batch: CloudBatch) -> Dict[str, int]:
        result = self._call(wire.CommitRequest(
            ops=wire.encode_batch(batch)))
        self.metrics.requests += 1
        self.metrics.batch_commits += 1
        self.metrics.bytes_in += batch.payload_bytes
        versions = wire.CommitResponse.from_params(result).versions
        return {path: int(version) for path, version in versions.items()}

    def list_dir(self, directory: str) -> List[str]:
        result = self._call(wire.ListDirRequest(directory=directory))
        self.metrics.requests += 1
        return list(wire.ListDirResponse.from_params(result).children)

    def poll_dir(self, directory: str, after_sequence: int = 0,
                 ) -> Tuple[List[DirectoryEvent], int]:
        result = self._call(wire.PollDirRequest(
            directory=directory, after_sequence=after_sequence,
            wait_ms=self.poll_wait_ms))
        reply = wire.PollDirResponse.from_params(result)
        self.metrics.requests += 1
        return ([wire.decode_event(e) for e in reply.events],
                int(reply.cursor))

    def compact(self) -> int:
        result = self._call(wire.CompactRequest())
        self.metrics.requests += 1
        return wire.CompactResponse.from_params(result).truncated

    def snapshot_horizon(self) -> int:
        result = self._call(wire.HorizonRequest())
        return wire.HorizonResponse.from_params(result).horizon

    def head_sequence(self) -> int:
        result = self._call(wire.HeadSequenceRequest())
        return wire.HeadSequenceResponse.from_params(result).sequence

    def adversary_view(self) -> Iterator[CloudObject]:
        result = self._call(wire.AdversaryViewRequest())
        objects = wire.AdversaryViewResponse.from_params(result).objects
        return iter([wire.decode_object(o) for o in objects])

    def total_stored_bytes(self, prefix: str = "/") -> int:
        result = self._call(wire.StoredBytesRequest(prefix=prefix))
        return wire.StoredBytesResponse.from_params(result).total

    # -- ops surface (not part of the CloudStoreProtocol contract) ---------

    def server_stats(self) -> Dict[str, Any]:
        """The server's ``ops.stats`` operational snapshot.

        Raises :class:`~repro.errors.WireError` against a pre-``ops``
        server (the method is unknown there)."""
        result = self._call(wire.StatsRequest())
        return wire.StatsResponse.from_params(result).stats

    def server_health(self) -> Dict[str, Any]:
        """The server's ``ops.health`` probe result:
        ``{"status": "ok"|"degraded"|"failing", "uptime_s": ...,
        "checks": {...}}``."""
        result = self._call(wire.HealthRequest())
        reply = wire.HealthResponse.from_params(result)
        return {"status": reply.status, "uptime_s": reply.uptime_s,
                "checks": reply.checks}

    def __repr__(self) -> str:
        return f"RemoteCloudStore({self.url!r})"


class RemoteAdmin:
    """Client handle for the server's admin-ecall forwarding endpoint.

    Exposes the whitelisted group-management operations (see
    :data:`repro.net.server.ADMIN_OPS`) as ordinary methods, each one
    ``admin.call`` RPC.  Requires a server started with an
    :class:`~repro.net.AdminBridge`."""

    def __init__(self, store: RemoteCloudStore) -> None:
        self._store = store

    def call(self, op: str, **kwargs) -> object:
        if (self._store.server_features
                and "admin" not in self._store.server_features):
            raise StorageError(
                f"server {self._store.url} does not forward admin "
                "operations")
        result = self._store._call(wire.AdminCallRequest(
            op=op, kwargs=kwargs))
        return wire.AdminCallResponse.from_params(result).result

    def create_group(self, group_id: str, members: List[str]) -> object:
        return self.call("create_group", group_id=group_id,
                         members=list(members))

    def add_user(self, group_id: str, user: str) -> object:
        return self.call("add_user", group_id=group_id, user=user)

    def add_users(self, group_id: str, users: List[str]) -> object:
        return self.call("add_users", group_id=group_id,
                         users=list(users))

    def remove_user(self, group_id: str, user: str) -> object:
        return self.call("remove_user", group_id=group_id, user=user)

    def rekey(self, group_id: str) -> object:
        return self.call("rekey", group_id=group_id)

    def delete_group(self, group_id: str) -> object:
        return self.call("delete_group", group_id=group_id)

    def members(self, group_id: str) -> List[str]:
        return list(self.call("members", group_id=group_id) or [])

    def sync_group(self, group_id: str) -> object:
        return self.call("sync_group", group_id=group_id)


def connect_store(url: str, timeout: float = 30.0,
                  poll_wait_ms: float = 0.0) -> RemoteCloudStore:
    """Connect to a :class:`~repro.net.StoreServer` and verify the
    handshake eagerly (so bad URLs fail at connect time, not first use)."""
    store = RemoteCloudStore(url, timeout=timeout,
                             poll_wait_ms=poll_wait_ms)
    # Cheap RPC to force connect + hello.
    store.head_sequence()
    return store
