"""Asyncio store/admin server for the :mod:`repro.net` protocol.

:class:`StoreServer` hosts any :class:`~repro.cloud.CloudStoreProtocol`
implementation — the in-memory :class:`~repro.cloud.CloudStore`, the
durable :class:`~repro.cloud.FileCloudStore`, or a fault-decorated
store — behind the length-prefixed JSON frame protocol of
:mod:`repro.net.wire`.  Store calls are synchronous and execute on the
event loop, which serializes them exactly like the single in-process
store they wrap; concurrency lives in the connection handling and in
``poll_dir`` long-polling, where a connection parks on an
:class:`asyncio.Condition` that every committed mutation notifies.

**Crash semantics.**  :class:`~repro.errors.CrashError` raised by a
store (an injected crash point from :mod:`repro.faults`) is *not*
converted into an error response: it models the death of the store
process, so the server records it, aborts every connection mid-flight
and shuts down.  Clients observe a dropped connection with the request
outcome unknown — precisely the failure a chaos driver must resolve by
state inspection after restart.

**Admin forwarding.**  With an :class:`AdminBridge` attached, the
``admin.call`` method forwards whitelisted, JSON-serializable
administrative operations (create/rekey/remove...) to a server-hosted
:class:`~repro.core.GroupAdministrator`, so a remote operator can drive
the enclave without shipping pairing elements over the wire.

:class:`ServerThread` runs the whole thing on a background thread for
tests, benchmarks and the chaos harness: ``start()`` returns the bound
URL, ``stop()`` shuts down gracefully, and ``crashed`` reports a
:class:`~repro.errors.CrashError` that killed the server.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cloud.protocol import CloudStoreProtocol
from repro.errors import (
    AccessControlError,
    CrashError,
    ProtocolVersionError,
    ReproError,
    WireError,
)
from repro.net import wire
from repro.obs import span

#: Administrative operations the bridge will forward, with the keyword
#: arguments each accepts.  Everything here is JSON-serializable in both
#: directions; anything else (key material, pairing elements) stays on
#: the server side by construction.
ADMIN_OPS: Dict[str, Tuple[str, ...]] = {
    "create_group": ("group_id", "members"),
    "add_user": ("group_id", "user"),
    "add_users": ("group_id", "users"),
    "remove_user": ("group_id", "user"),
    "rekey": ("group_id",),
    "delete_group": ("group_id",),
    "members": ("group_id",),
    "sync_group": ("group_id",),
}


def _json_safe(value: Any) -> Any:
    """Clamp an admin-op result to JSON-safe data (drop the rest)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return None


class AdminBridge:
    """Whitelisted ecall forwarding onto a server-hosted administrator.

    The bridge is deliberately *not* a general RPC: only the operations
    in :data:`ADMIN_OPS` are reachable, and only with their declared
    keyword arguments, so the network surface of the admin endpoint is
    exactly the group-management API of the paper.

    Bridge calls run in an executor thread so slow enclave work cannot
    starve long-pollers.  The hosted administrator normally uses the
    server's local store directly; if it is instead wired to a loop-back
    :class:`~repro.net.RemoteCloudStore`, that must be a *dedicated*
    connection — a ``RemoteCloudStore`` carries one in-flight request at
    a time, so reusing the operator's connection would deadlock behind
    the very ``admin.call`` it is serving.
    """

    def __init__(self, admin: Any) -> None:
        self.admin = admin

    def call(self, op: str, kwargs: Dict[str, Any]) -> Any:
        allowed = ADMIN_OPS.get(op)
        if allowed is None:
            raise AccessControlError(
                f"admin operation {op!r} is not forwardable")
        unknown = set(kwargs) - set(allowed)
        if unknown:
            raise AccessControlError(
                f"unexpected arguments for {op}: {sorted(unknown)}")
        return _json_safe(getattr(self.admin, op)(**kwargs))


class StoreServer:
    """Serve a :class:`~repro.cloud.CloudStoreProtocol` over TCP."""

    def __init__(self, store: CloudStoreProtocol,
                 host: str = "127.0.0.1", port: int = 0,
                 admin: Optional[AdminBridge] = None,
                 name: str = "repro-store") -> None:
        self.store = store
        self.admin = admin
        self.name = name
        self._host = host
        self._port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._mutated: Optional[asyncio.Condition] = None
        #: Connections currently parked in a ``poll_dir`` long-poll.
        #: Tests synchronise on this instead of sleeping a fixed time
        #: and hoping the poll RPC arrived (see ``poll_waiters``).
        self._poll_waiters = 0
        self._writers: List[asyncio.StreamWriter] = []
        #: Set when a CrashError from the store killed the server.
        self.crashed: Optional[CrashError] = None
        self.closed = asyncio.Event()
        self._handlers: Dict[str, Callable[[Dict[str, Any]], Any]] = {
            "store.put": self._h_put,
            "store.get": self._h_get,
            "store.get_many": self._h_get_many,
            "store.exists": self._h_exists,
            "store.delete": self._h_delete,
            "store.commit": self._h_commit,
            "store.list_dir": self._h_list_dir,
            "store.poll_dir": self._h_poll_dir,
            "store.compact": self._h_compact,
            "store.snapshot_horizon": self._h_horizon,
            "store.head_sequence": self._h_head_sequence,
            "store.adversary_view": self._h_adversary_view,
            "store.total_stored_bytes": self._h_stored_bytes,
            "admin.call": self._h_admin_call,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``
        (a requested port of 0 binds an ephemeral one)."""
        self._mutated = asyncio.Condition()
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port)
        sock = self._server.sockets[0]
        self._host, self._port = sock.getsockname()[:2]
        return self._host, self._port

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    @property
    def poll_waiters(self) -> int:
        """Connections currently parked in a ``poll_dir`` long-poll.

        The condition-wait alternative to wall-clock sleeps: a test (or
        monitor) that must act *while a long-poll is parked* spins on
        this going positive instead of sleeping a fixed interval and
        assuming the poll RPC has reached the server by then."""
        return self._poll_waiters

    @property
    def url(self) -> str:
        return f"tcp://{self._host}:{self._port}"

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drop live connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        self.closed.set()

    def _abort(self, crash: CrashError) -> None:
        """Simulated process death: everything stops, nothing is flushed."""
        self.crashed = crash
        if self._server is not None:
            self._server.close()
            self._server = None
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._writers.clear()
        self.closed.set()

    # -- connection handling ----------------------------------------------

    async def _read_frame(self, reader: asyncio.StreamReader
                          ) -> Optional[Dict[str, Any]]:
        try:
            header = await reader.readexactly(4)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        length = wire.decode_frame_length(header)
        body = await reader.readexactly(length)
        return wire.decode_frame_body(body)

    async def _send(self, writer: asyncio.StreamWriter,
                    response: wire.Response) -> None:
        writer.write(wire.encode_frame(response.to_wire()))
        await writer.drain()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._writers.append(writer)
        greeted = False
        try:
            while True:
                try:
                    payload = await self._read_frame(reader)
                except WireError:
                    break    # unframeable garbage: drop the connection
                if payload is None:
                    break
                try:
                    request = wire.Request.from_wire(payload)
                except WireError as exc:
                    await self._send(writer, wire.Response(
                        id=0, error=wire.error_to_wire(exc)))
                    continue
                if not greeted:
                    ok = await self._handle_hello(request, writer)
                    if not ok:
                        break
                    greeted = True
                    continue
                try:
                    result = await self._dispatch(request)
                except CrashError as crash:
                    # The store process "died" mid-request: no response,
                    # no cleanup, every connection torn down.
                    self._abort(crash)
                    return
                except ReproError as exc:
                    await self._send(writer, wire.Response(
                        id=request.id, error=wire.error_to_wire(exc)))
                    continue
                await self._send(writer, wire.Response(
                    id=request.id, result=result))
        except ConnectionError:
            pass
        finally:
            if writer in self._writers:
                self._writers.remove(writer)
                writer.close()

    async def _handle_hello(self, request: wire.Request,
                            writer: asyncio.StreamWriter) -> bool:
        if request.method != wire.HelloRequest.METHOD:
            await self._send(writer, wire.Response(
                id=request.id, error=wire.error_to_wire(WireError(
                    "expected hello as the first request"))))
            return False
        hello = wire.HelloRequest.from_params(request.params)
        if hello.protocol != wire.PROTOCOL_VERSION:
            await self._send(writer, wire.Response(
                id=request.id, error=wire.error_to_wire(
                    ProtocolVersionError(
                        f"server speaks protocol {wire.PROTOCOL_VERSION}, "
                        f"client sent {hello.protocol}"))))
            return False
        features = ["store"] + (["admin"] if self.admin is not None else [])
        await self._send(writer, wire.Response(
            id=request.id,
            result=wire.HelloResponse(
                protocol=wire.PROTOCOL_VERSION, server=self.name,
                features=features).to_params()))
        return True

    async def _dispatch(self, request: wire.Request) -> Dict[str, Any]:
        handler = self._handlers.get(request.method)
        if handler is None:
            raise WireError(f"unknown method {request.method!r}")
        with span(f"net.server.{request.method}", "net"):
            result = handler(request.params)
            if asyncio.iscoroutine(result):
                result = await result
        return result

    async def _notify_mutation(self) -> None:
        assert self._mutated is not None
        async with self._mutated:
            self._mutated.notify_all()

    # -- store method handlers --------------------------------------------

    async def _h_put(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.PutRequest.from_params(params)
        version = self.store.put(req.path, wire.b64d(req.data),
                                 req.expected_version)
        await self._notify_mutation()
        return wire.PutResponse(version=version).to_params()

    def _h_get(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.GetRequest.from_params(params)
        obj = self.store.get(req.path)
        return wire.GetResponse(object=wire.encode_object(obj)).to_params()

    def _h_get_many(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.GetManyRequest.from_params(params)
        found = self.store.get_many(req.paths)
        return wire.GetManyResponse(
            objects=[wire.encode_object(o) for o in found.values()]
        ).to_params()

    def _h_exists(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.ExistsRequest.from_params(params)
        return wire.ExistsResponse(
            exists=self.store.exists(req.path)).to_params()

    async def _h_delete(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.DeleteRequest.from_params(params)
        self.store.delete(req.path)
        await self._notify_mutation()
        return wire.DeleteResponse().to_params()

    async def _h_commit(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.CommitRequest.from_params(params)
        versions = self.store.commit(wire.decode_batch(req.ops))
        await self._notify_mutation()
        return wire.CommitResponse(versions=versions).to_params()

    def _h_list_dir(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.ListDirRequest.from_params(params)
        return wire.ListDirResponse(
            children=self.store.list_dir(req.directory)).to_params()

    async def _h_poll_dir(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.PollDirRequest.from_params(params)
        assert self._mutated is not None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, req.wait_ms) / 1000.0
        while True:
            events, cursor = self.store.poll_dir(req.directory,
                                                 req.after_sequence)
            remaining = deadline - loop.time()
            if events or remaining <= 0:
                return wire.PollDirResponse(
                    events=[wire.encode_event(e) for e in events],
                    cursor=cursor).to_params()
            async with self._mutated:
                self._poll_waiters += 1
                try:
                    await asyncio.wait_for(self._mutated.wait(),
                                           timeout=remaining)
                except asyncio.TimeoutError:
                    pass
                finally:
                    self._poll_waiters -= 1

    async def _h_compact(self, params: Dict[str, Any]) -> Dict[str, Any]:
        wire.CompactRequest.from_params(params)
        truncated = self.store.compact()
        await self._notify_mutation()
        return wire.CompactResponse(truncated=truncated).to_params()

    def _h_horizon(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return wire.HorizonResponse(
            horizon=self.store.snapshot_horizon()).to_params()

    def _h_head_sequence(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return wire.HeadSequenceResponse(
            sequence=self.store.head_sequence()).to_params()

    def _h_adversary_view(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return wire.AdversaryViewResponse(
            objects=[wire.encode_object(o)
                     for o in self.store.adversary_view()]).to_params()

    def _h_stored_bytes(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.StoredBytesRequest.from_params(params)
        return wire.StoredBytesResponse(
            total=self.store.total_stored_bytes(req.prefix)).to_params()

    async def _h_admin_call(self, params: Dict[str, Any]) -> Dict[str, Any]:
        if self.admin is None:
            raise AccessControlError(
                "this server does not forward admin operations")
        req = wire.AdminCallRequest.from_params(params)
        # Off the event loop: admin operations do enclave ecalls and
        # pairing math (slow — they must not starve long-pollers), and a
        # server-hosted admin wired to a loop-back RemoteCloudStore
        # issues store RPCs *back into this server* mid-operation.
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            None, self.admin.call, req.op, req.kwargs)
        # Admin mutations land in the store; wake long-pollers.
        await self._notify_mutation()
        return wire.AdminCallResponse(result=result).to_params()


class ServerThread:
    """A :class:`StoreServer` on a daemon thread (tests, chaos, bench).

    ``start()`` blocks until the socket is bound and returns the URL.
    ``stop()`` shuts the loop down and joins the thread; if the hosted
    store raised :class:`~repro.errors.CrashError`, the server has
    already aborted itself and :attr:`crashed` carries the exception.
    """

    def __init__(self, store: CloudStoreProtocol,
                 admin: Optional[AdminBridge] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 name: str = "repro-store") -> None:
        self._store = store
        self._admin = admin
        self._host = host
        self._port = port
        self._name = name
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[StoreServer] = None
        self.url: str = ""

    @property
    def crashed(self) -> Optional[CrashError]:
        return self.server.crashed if self.server is not None else None

    @property
    def poll_waiters(self) -> int:
        """Parked ``poll_dir`` long-polls (see
        :attr:`StoreServer.poll_waiters`); reading an int across the
        loop thread is atomic under the GIL."""
        return self.server.poll_waiters if self.server is not None else 0

    def wait_for_poll_waiters(self, count: int = 1,
                              timeout: float = 5.0) -> bool:
        """Block until at least ``count`` long-polls are parked on the
        server (or ``timeout`` elapses).  The deterministic handshake
        tests use instead of sleeping and hoping the poll RPC has
        arrived — fixed sleeps flake under loaded CI runners."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.poll_waiters >= count:
                return True
            time.sleep(0.002)
        return self.poll_waiters >= count

    def start(self) -> str:
        self._thread = threading.Thread(
            target=self._run, name="repro-store-server", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self.url

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - defensive
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _main(self) -> None:
        self.server = StoreServer(self._store, host=self._host,
                                  port=self._port, admin=self._admin,
                                  name=self._name)
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.url = self.server.url
        self._ready.set()
        stopper = asyncio.ensure_future(self._stop_event.wait())
        closer = asyncio.ensure_future(self.server.closed.wait())
        try:
            await asyncio.wait({stopper, closer},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            stopper.cancel()
            closer.cancel()
            await self.server.stop()

    def stop(self) -> None:
        """Graceful shutdown; safe to call twice."""
        if self._thread is None:
            return
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass    # loop already gone (crash shutdown)
        self._thread.join(timeout=10)
        self._thread = None

    def join_crashed(self, timeout: float = 10.0) -> CrashError:
        """Wait for a crash-triggered shutdown and return the crash.

        For tests that schedule an injected crash inside the server:
        the server aborts itself; this joins the thread and surfaces
        the :class:`~repro.errors.CrashError` that killed it."""
        assert self._thread is not None
        self._thread.join(timeout=timeout)
        self._thread = None
        crash = self.crashed
        if crash is None:
            raise AssertionError("server did not crash")
        return crash
