"""Asyncio store/admin server for the :mod:`repro.net` protocol.

:class:`StoreServer` hosts any :class:`~repro.cloud.CloudStoreProtocol`
implementation — the in-memory :class:`~repro.cloud.CloudStore`, the
durable :class:`~repro.cloud.FileCloudStore`, or a fault-decorated
store — behind the length-prefixed JSON frame protocol of
:mod:`repro.net.wire`.  Store calls are synchronous and execute on the
event loop, which serializes them exactly like the single in-process
store they wrap; concurrency lives in the connection handling and in
``poll_dir`` long-polling, where a connection parks on an
:class:`asyncio.Condition` that every committed mutation notifies.

**Crash semantics.**  :class:`~repro.errors.CrashError` raised by a
store (an injected crash point from :mod:`repro.faults`) is *not*
converted into an error response: it models the death of the store
process, so the server records it, aborts every connection mid-flight
and shuts down.  Clients observe a dropped connection with the request
outcome unknown — precisely the failure a chaos driver must resolve by
state inspection after restart.

**Admin forwarding.**  With an :class:`AdminBridge` attached, the
``admin.call`` method forwards whitelisted, JSON-serializable
administrative operations (create/rekey/remove...) to a server-hosted
:class:`~repro.core.GroupAdministrator`, so a remote operator can drive
the enclave without shipping pairing elements over the wire.

**Operational telemetry.**  The server keeps its own
:class:`~repro.obs.MetricRegistry` (request/error counters, per-method
error counters, connection and long-poll gauges, byte totals) plus a
rolling :class:`~repro.obs.SloWindow` per wire method, and serves both
— together with the hosted store's metrics, journal-recovery state and
the optional :class:`~repro.net.reqlog.RequestLog` tail — through the
read-only ``ops.stats`` / ``ops.health`` wire methods.  A request that
carries a ``trace`` context additionally runs under a per-request span
capture whose rows and counter deltas ship back piggybacked on the
response (see :meth:`StoreServer._dispatch_traced`).

:class:`ServerThread` runs the whole thing on a background thread for
tests, benchmarks and the chaos harness: ``start()`` returns the bound
URL, ``stop()`` shuts down gracefully, and ``crashed`` reports a
:class:`~repro.errors.CrashError` that killed the server.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cloud.protocol import CloudStoreProtocol
from repro.errors import (
    AccessControlError,
    CrashError,
    ProtocolVersionError,
    ReproError,
    ValidationError,
    WireError,
    error_code,
)
from repro.net import wire
from repro.net.reqlog import RequestLog
from repro.obs import MetricRegistry, SloWindow, Tracer, span, use_tracer

#: Administrative operations the bridge will forward, with the keyword
#: arguments each accepts.  Everything here is JSON-serializable in both
#: directions; anything else (key material, pairing elements) stays on
#: the server side by construction.
ADMIN_OPS: Dict[str, Tuple[str, ...]] = {
    "create_group": ("group_id", "members"),
    "add_user": ("group_id", "user"),
    "add_users": ("group_id", "users"),
    "remove_user": ("group_id", "user"),
    "rekey": ("group_id",),
    "delete_group": ("group_id",),
    "members": ("group_id",),
    "sync_group": ("group_id",),
}


def _json_safe(value: Any) -> Any:
    """Clamp an admin-op result to JSON-safe data (drop the rest)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return None


class AdminBridge:
    """Whitelisted ecall forwarding onto a server-hosted administrator.

    The bridge is deliberately *not* a general RPC: only the operations
    in :data:`ADMIN_OPS` are reachable, and only with their declared
    keyword arguments, so the network surface of the admin endpoint is
    exactly the group-management API of the paper.

    Bridge calls run in an executor thread so slow enclave work cannot
    starve long-pollers.  The hosted administrator normally uses the
    server's local store directly; if it is instead wired to a loop-back
    :class:`~repro.net.RemoteCloudStore`, that must be a *dedicated*
    connection — a ``RemoteCloudStore`` carries one in-flight request at
    a time, so reusing the operator's connection would deadlock behind
    the very ``admin.call`` it is serving.
    """

    def __init__(self, admin: Any) -> None:
        self.admin = admin

    def call(self, op: str, kwargs: Dict[str, Any]) -> Any:
        allowed = ADMIN_OPS.get(op)
        if allowed is None:
            raise AccessControlError(
                f"admin operation {op!r} is not forwardable")
        unknown = set(kwargs) - set(allowed)
        if unknown:
            raise AccessControlError(
                f"unexpected arguments for {op}: {sorted(unknown)}")
        return _json_safe(getattr(self.admin, op)(**kwargs))


class StoreServer:
    """Serve a :class:`~repro.cloud.CloudStoreProtocol` over TCP."""

    #: Methods whose successful dispatch mutates the store: the server
    #: wakes parked ``poll_dir`` long-polls after each one.  (The admin
    #: handler notifies internally, after its executor hop.)
    NOTIFY_AFTER = frozenset({
        "store.put", "store.delete", "store.commit", "store.compact",
    })

    def __init__(self, store: CloudStoreProtocol,
                 host: str = "127.0.0.1", port: int = 0,
                 admin: Optional[AdminBridge] = None,
                 name: str = "repro-store",
                 request_log: Optional[RequestLog] = None,
                 shard_info: Optional[Dict[str, Any]] = None) -> None:
        self.store = store
        self.admin = admin
        self.name = name
        self.request_log = request_log
        #: Placement metadata of a sharded deployment (``shard_id``,
        #: ``index``, ``nshards``, peer urls …), echoed verbatim in
        #: ``ops.stats`` and ``ops.health`` so clients and the ``repro
        #: health`` aggregator can see which shard answered.
        self.shard_info = dict(shard_info) if shard_info else None
        self._host = host
        self._port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._mutated: Optional[asyncio.Condition] = None
        #: Connections currently parked in a ``poll_dir`` long-poll.
        #: Tests synchronise on this instead of sleeping a fixed time
        #: and hoping the poll RPC arrived (see ``poll_waiters``).
        self._poll_waiters = 0
        self._writers: List[asyncio.StreamWriter] = []
        #: Set when a CrashError from the store killed the server.
        self.crashed: Optional[CrashError] = None
        self.closed = asyncio.Event()
        self._started = time.monotonic()
        #: Server-side operational metrics, merged into ``ops.stats``
        #: responses next to the hosted store's own registry.
        self.registry = MetricRegistry()
        self._requests_total = self.registry.counter("net.server.requests")
        self._errors_total = self.registry.counter("net.server.errors")
        self._bytes_in = self.registry.counter("net.server.bytes_in")
        self._bytes_out = self.registry.counter("net.server.bytes_out")
        self._connections_total = self.registry.counter(
            "net.server.connections.total")
        self.registry.gauge("net.server.connections.active",
                            lambda: len(self._writers))
        self.registry.gauge("net.server.poll_waiters",
                            lambda: self._poll_waiters)
        #: Rolling per-method SLO windows plus one for all traffic.
        self._slo: Dict[str, SloWindow] = {}
        self._slo_all = SloWindow("all")
        self._handlers: Dict[str, Callable[[Dict[str, Any]], Any]] = {
            "store.put": self._h_put,
            "store.get": self._h_get,
            "store.get_many": self._h_get_many,
            "store.exists": self._h_exists,
            "store.delete": self._h_delete,
            "store.commit": self._h_commit,
            "store.list_dir": self._h_list_dir,
            "store.poll_dir": self._h_poll_dir,
            "store.compact": self._h_compact,
            "store.snapshot_horizon": self._h_horizon,
            "store.head_sequence": self._h_head_sequence,
            "store.adversary_view": self._h_adversary_view,
            "store.total_stored_bytes": self._h_stored_bytes,
            "admin.call": self._h_admin_call,
            "ops.stats": self._h_stats,
            "ops.health": self._h_health,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``
        (a requested port of 0 binds an ephemeral one)."""
        self._mutated = asyncio.Condition()
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port)
        sock = self._server.sockets[0]
        self._host, self._port = sock.getsockname()[:2]
        return self._host, self._port

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    @property
    def poll_waiters(self) -> int:
        """Connections currently parked in a ``poll_dir`` long-poll.

        The condition-wait alternative to wall-clock sleeps: a test (or
        monitor) that must act *while a long-poll is parked* spins on
        this going positive instead of sleeping a fixed interval and
        assuming the poll RPC has reached the server by then."""
        return self._poll_waiters

    @property
    def url(self) -> str:
        return f"tcp://{self._host}:{self._port}"

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drop live connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        self.closed.set()

    def _abort(self, crash: CrashError) -> None:
        """Simulated process death: everything stops, nothing is flushed."""
        self.crashed = crash
        if self._server is not None:
            self._server.close()
            self._server = None
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._writers.clear()
        self.closed.set()

    # -- connection handling ----------------------------------------------

    async def _read_frame(self, reader: asyncio.StreamReader
                          ) -> Optional[Tuple[Dict[str, Any], int]]:
        """One decoded frame plus its total on-the-wire byte count."""
        try:
            header = await reader.readexactly(4)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        length = wire.decode_frame_length(header)
        body = await reader.readexactly(length)
        return wire.decode_frame_body(body), 4 + length

    async def _send(self, writer: asyncio.StreamWriter,
                    response: wire.Response) -> int:
        frame = wire.encode_frame(response.to_wire())
        writer.write(frame)
        await writer.drain()
        return len(frame)

    @staticmethod
    def _peer(writer: asyncio.StreamWriter) -> str:
        peername = writer.get_extra_info("peername")
        if isinstance(peername, (tuple, list)) and len(peername) >= 2:
            return f"{peername[0]}:{peername[1]}"
        return "?"

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._writers.append(writer)
        self._connections_total.add()
        peer = self._peer(writer)
        greeted = False
        try:
            while True:
                try:
                    frame = await self._read_frame(reader)
                except WireError:
                    break    # unframeable garbage: drop the connection
                if frame is None:
                    break
                payload, bytes_in = frame
                started = time.perf_counter()
                try:
                    request = wire.Request.from_wire(payload)
                except (ValidationError, WireError) as exc:
                    bytes_out = await self._send(writer, wire.Response(
                        id=0, error=wire.error_to_wire(exc)))
                    self._observe("<malformed>", 0, None, started,
                                  error_code(exc), bytes_in, bytes_out,
                                  peer)
                    continue
                if not greeted:
                    ok = await self._handle_hello(request, writer)
                    if not ok:
                        break
                    greeted = True
                    continue
                trace_id = (str(request.trace.get("id", ""))
                            if request.trace else None)
                try:
                    result, telemetry = await self._dispatch(request)
                except CrashError as crash:
                    # The store process "died" mid-request: no response,
                    # no cleanup, every connection torn down.
                    self._abort(crash)
                    return
                except ReproError as exc:
                    bytes_out = await self._send(writer, wire.Response(
                        id=request.id, error=wire.error_to_wire(exc),
                        telemetry=getattr(exc, "wire_telemetry", None)))
                    self._observe(request.method, request.id, trace_id,
                                  started, error_code(exc), bytes_in,
                                  bytes_out, peer)
                    continue
                bytes_out = await self._send(writer, wire.Response(
                    id=request.id, result=result, telemetry=telemetry))
                self._observe(request.method, request.id, trace_id,
                              started, "ok", bytes_in, bytes_out, peer)
        except ConnectionError:
            pass
        finally:
            if writer in self._writers:
                self._writers.remove(writer)
                writer.close()

    def _observe(self, method: str, request_id: int,
                 trace_id: Optional[str], started: float, outcome: str,
                 bytes_in: int, bytes_out: int, peer: str) -> None:
        """Account one handled request (counters, SLO window, log).

        Deliberately excluded: the ``hello`` handshake (not a store
        request) and requests that died with the server (a crash aborts
        the connection before any response exists to account)."""
        latency_ms = (time.perf_counter() - started) * 1000.0
        ok = outcome == "ok"
        self._requests_total.add()
        self._bytes_in.add(bytes_in)
        self._bytes_out.add(bytes_out)
        self.registry.counter(
            f"net.server.method.{method}.requests").add()
        if not ok:
            self._errors_total.add()
            self.registry.counter(
                f"net.server.method.{method}.errors").add()
        self._slo_all.observe(latency_ms, ok)
        window = self._slo.get(method)
        if window is None:
            window = self._slo[method] = SloWindow(method)
        window.observe(latency_ms, ok)
        if self.request_log is not None:
            self.request_log.record(
                request_id=request_id, method=method, trace_id=trace_id,
                bytes_in=bytes_in, bytes_out=bytes_out,
                latency_ms=latency_ms, outcome=outcome, peer=peer)

    async def _handle_hello(self, request: wire.Request,
                            writer: asyncio.StreamWriter) -> bool:
        if request.method != wire.HelloRequest.METHOD:
            await self._send(writer, wire.Response(
                id=request.id, error=wire.error_to_wire(WireError(
                    "expected hello as the first request"))))
            return False
        hello = wire.HelloRequest.from_params(request.params)
        if hello.protocol != wire.PROTOCOL_VERSION:
            await self._send(writer, wire.Response(
                id=request.id, error=wire.error_to_wire(
                    ProtocolVersionError(
                        f"server speaks protocol {wire.PROTOCOL_VERSION}, "
                        f"client sent {hello.protocol}"))))
            return False
        await self._send(writer, wire.Response(
            id=request.id,
            result=wire.HelloResponse(
                protocol=wire.PROTOCOL_VERSION, server=self.name,
                features=self.features()).to_params()))
        return True

    def features(self) -> List[str]:
        """Capabilities advertised in the hello response."""
        features = [wire.FEATURE_STORE, wire.FEATURE_TRACE,
                    wire.FEATURE_OPS]
        if self.admin is not None:
            features.append(wire.FEATURE_ADMIN)
        return features

    async def _dispatch(self, request: wire.Request
                        ) -> Tuple[Dict[str, Any],
                                   Optional[Dict[str, Any]]]:
        """Run the handler; returns ``(result, telemetry-or-None)``."""
        handler = self._handlers.get(request.method)
        if handler is None:
            raise WireError(f"unknown method {request.method!r}")
        telemetry: Optional[Dict[str, Any]] = None
        if request.trace is not None:
            result, telemetry = await self._dispatch_traced(
                request, handler)
        else:
            with span(f"net.server.{request.method}", "net"):
                result = handler(request.params)
                if asyncio.iscoroutine(result):
                    result = await result
        if request.method in self.NOTIFY_AFTER:
            await self._notify_mutation()
        return result, telemetry

    def _store_registry(self):
        """The hosted store's metric registry, when it exposes one."""
        metrics = getattr(self.store, "metrics", None)
        return getattr(metrics, "registry", None)

    async def _dispatch_traced(self, request: wire.Request,
                               handler: Callable[[Dict[str, Any]], Any]
                               ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Run the handler under a per-request span capture.

        A fresh enabled :class:`Tracer` records the handler span (tagged
        with the propagated trace id and the client's parent span id)
        plus — for synchronous store handlers, which the event loop
        cannot interleave — every nested ``cloud.*`` span, by swapping
        the capture in as the global tracer for exactly the duration of
        the call.  Asynchronous handlers (``poll_dir``, ``admin.call``)
        only record the handler span itself: swapping the global tracer
        across an ``await`` would misattribute spans from interleaved
        connections.  Store-registry counter deltas taken around the
        call ship back with the span rows.
        """
        capture = Tracer(enabled=True)
        ctx = request.trace or {}
        attrs: Dict[str, Any] = {"pid": os.getpid()}
        if ctx.get("id") is not None:
            attrs["trace_id"] = str(ctx["id"])
        if ctx.get("parent") is not None:
            attrs["parent_span"] = ctx["parent"]
        registry = self._store_registry()
        before = (registry.counters_snapshot()
                  if registry is not None else {})
        name = f"net.server.{request.method}"
        try:
            if asyncio.iscoroutinefunction(handler):
                with capture.span(name, "net", **attrs):
                    result = await handler(request.params)
            else:
                with use_tracer(capture):
                    with capture.span(name, "net", **attrs):
                        result = handler(request.params)
        except CrashError:
            raise    # the process "died": nothing ships
        except ReproError as exc:
            # Ship the capture with the error response too — the
            # handler span (closed with its error recorded) is most
            # interesting exactly when the request failed.
            exc.wire_telemetry = self._capture_payload(  # type: ignore[attr-defined]
                capture, registry, before)
            raise
        return result, self._capture_payload(capture, registry, before)

    def _capture_payload(self, capture: Tracer, registry,
                         before: Dict[str, float]) -> Dict[str, Any]:
        deltas: Dict[str, float] = {}
        if registry is not None:
            for key, value in registry.counters_snapshot().items():
                delta = value - before.get(key, 0)
                if delta:
                    deltas[key] = delta
        return {
            "spans": _json_safe([s.to_dict() for s in capture.spans()]),
            "counters": deltas,
            "dropped": capture.dropped,
            "pid": os.getpid(),
        }

    # -- operational snapshots (ops.stats / ops.health) --------------------

    def slo_snapshot(self) -> Dict[str, Any]:
        """Rolling latency/error windows: ``{"all": ..., "methods":
        {method: ...}}`` (see :class:`~repro.obs.SloWindow`)."""
        return {
            "all": self._slo_all.snapshot(),
            "methods": {method: window.snapshot()
                        for method, window in sorted(self._slo.items())},
        }

    def operational_snapshot(self) -> Dict[str, Any]:
        """The full ``ops.stats`` payload (see docs/API.md)."""
        metrics: Dict[str, Any] = {}
        store_registry = self._store_registry()
        if store_registry is not None:
            metrics.update(store_registry.snapshot())
        metrics.update(self.registry.snapshot())
        store_info: Dict[str, Any] = {"type": type(self.store).__name__}
        try:
            store_info["head_sequence"] = self.store.head_sequence()
            store_info["snapshot_horizon"] = self.store.snapshot_horizon()
        except CrashError:
            raise
        except ReproError as exc:
            store_info["error"] = f"{error_code(exc)}: {exc}"
        store_info["recoveries"] = int(metrics.get("cloud.recoveries", 0))
        snapshot: Dict[str, Any] = {
            "server": self.name,
            "pid": os.getpid(),
            "protocol": wire.PROTOCOL_VERSION,
            "features": self.features(),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "connections": {
                "active": len(self._writers),
                "total": int(self._connections_total.value),
                "poll_waiters": self._poll_waiters,
            },
            "requests": {
                "total": int(self._requests_total.value),
                "errors": int(self._errors_total.value),
                "bytes_in": int(self._bytes_in.value),
                "bytes_out": int(self._bytes_out.value),
            },
            "store": store_info,
            "slo": self.slo_snapshot(),
            "metrics": metrics,
            "request_log": (self.request_log.status()
                            if self.request_log is not None
                            else {"enabled": False}),
        }
        if self.shard_info is not None:
            snapshot["shard"] = dict(self.shard_info)
        return snapshot

    def health_snapshot(self) -> Dict[str, Any]:
        """The ``ops.health`` payload: cheap liveness + degradation.

        ``ok`` — the store answers and the rolling window is sane;
        ``degraded`` — the store answers but more than half of a
        meaningfully sized recent window errored (client-caused error
        codes count, hence the deliberately high bar); ``failing`` —
        the store itself cannot be read.
        """
        checks: Dict[str, Any] = {}
        status = "ok"
        try:
            checks["head_sequence"] = self.store.head_sequence()
            checks["store"] = "ok"
        except CrashError:
            raise
        except ReproError as exc:
            checks["store"] = f"{error_code(exc)}: {exc}"
            status = "failing"
        checks["window_requests"] = self._slo_all.window_size
        checks["window_error_rate"] = round(self._slo_all.error_rate, 6)
        if (status == "ok" and self._slo_all.window_size >= 20
                and self._slo_all.error_rate > 0.5):
            status = "degraded"
        if self.shard_info is not None:
            # Inside ``checks`` so it survives the typed HealthResponse
            # round trip unchanged.
            checks["shard"] = dict(self.shard_info)
        return {
            "status": status,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "checks": checks,
        }

    async def _notify_mutation(self) -> None:
        assert self._mutated is not None
        async with self._mutated:
            self._mutated.notify_all()

    # -- store method handlers --------------------------------------------

    def _h_put(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.PutRequest.from_params(params)
        version = self.store.put(req.path, wire.b64d(req.data),
                                 req.expected_version)
        return wire.PutResponse(version=version).to_params()

    def _h_get(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.GetRequest.from_params(params)
        obj = self.store.get(req.path)
        return wire.GetResponse(object=wire.encode_object(obj)).to_params()

    def _h_get_many(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.GetManyRequest.from_params(params)
        found = self.store.get_many(req.paths)
        return wire.GetManyResponse(
            objects=[wire.encode_object(o) for o in found.values()]
        ).to_params()

    def _h_exists(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.ExistsRequest.from_params(params)
        return wire.ExistsResponse(
            exists=self.store.exists(req.path)).to_params()

    def _h_delete(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.DeleteRequest.from_params(params)
        self.store.delete(req.path)
        return wire.DeleteResponse().to_params()

    def _h_commit(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.CommitRequest.from_params(params)
        versions = self.store.commit(wire.decode_batch(req.ops))
        return wire.CommitResponse(versions=versions).to_params()

    def _h_list_dir(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.ListDirRequest.from_params(params)
        return wire.ListDirResponse(
            children=self.store.list_dir(req.directory)).to_params()

    async def _h_poll_dir(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.PollDirRequest.from_params(params)
        assert self._mutated is not None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, req.wait_ms) / 1000.0
        while True:
            events, cursor = self.store.poll_dir(req.directory,
                                                 req.after_sequence)
            remaining = deadline - loop.time()
            if events or remaining <= 0:
                return wire.PollDirResponse(
                    events=[wire.encode_event(e) for e in events],
                    cursor=cursor).to_params()
            async with self._mutated:
                self._poll_waiters += 1
                try:
                    await asyncio.wait_for(self._mutated.wait(),
                                           timeout=remaining)
                except asyncio.TimeoutError:
                    pass
                finally:
                    self._poll_waiters -= 1

    def _h_compact(self, params: Dict[str, Any]) -> Dict[str, Any]:
        wire.CompactRequest.from_params(params)
        truncated = self.store.compact()
        return wire.CompactResponse(truncated=truncated).to_params()

    def _h_horizon(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return wire.HorizonResponse(
            horizon=self.store.snapshot_horizon()).to_params()

    def _h_head_sequence(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return wire.HeadSequenceResponse(
            sequence=self.store.head_sequence()).to_params()

    def _h_adversary_view(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return wire.AdversaryViewResponse(
            objects=[wire.encode_object(o)
                     for o in self.store.adversary_view()]).to_params()

    def _h_stored_bytes(self, params: Dict[str, Any]) -> Dict[str, Any]:
        req = wire.StoredBytesRequest.from_params(params)
        return wire.StoredBytesResponse(
            total=self.store.total_stored_bytes(req.prefix)).to_params()

    async def _h_admin_call(self, params: Dict[str, Any]) -> Dict[str, Any]:
        if self.admin is None:
            raise AccessControlError(
                "this server does not forward admin operations")
        req = wire.AdminCallRequest.from_params(params)
        # Off the event loop: admin operations do enclave ecalls and
        # pairing math (slow — they must not starve long-pollers), and a
        # server-hosted admin wired to a loop-back RemoteCloudStore
        # issues store RPCs *back into this server* mid-operation.
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            None, self.admin.call, req.op, req.kwargs)
        # Admin mutations land in the store; wake long-pollers.
        await self._notify_mutation()
        return wire.AdminCallResponse(result=result).to_params()

    def _h_stats(self, params: Dict[str, Any]) -> Dict[str, Any]:
        wire.StatsRequest.from_params(params)
        return wire.StatsResponse(
            stats=self.operational_snapshot()).to_params()

    def _h_health(self, params: Dict[str, Any]) -> Dict[str, Any]:
        wire.HealthRequest.from_params(params)
        snap = self.health_snapshot()
        return wire.HealthResponse(
            status=snap["status"], uptime_s=snap["uptime_s"],
            checks=snap["checks"]).to_params()


class ServerThread:
    """A :class:`StoreServer` on a daemon thread (tests, chaos, bench).

    ``start()`` blocks until the socket is bound and returns the URL.
    ``stop()`` shuts the loop down and joins the thread; if the hosted
    store raised :class:`~repro.errors.CrashError`, the server has
    already aborted itself and :attr:`crashed` carries the exception.
    """

    def __init__(self, store: CloudStoreProtocol,
                 admin: Optional[AdminBridge] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 name: str = "repro-store",
                 request_log: Optional[RequestLog] = None,
                 shard_info: Optional[Dict[str, Any]] = None) -> None:
        self._store = store
        self._admin = admin
        self._host = host
        self._port = port
        self._name = name
        self._request_log = request_log
        self._shard_info = shard_info
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[StoreServer] = None
        self.url: str = ""

    @property
    def crashed(self) -> Optional[CrashError]:
        return self.server.crashed if self.server is not None else None

    @property
    def poll_waiters(self) -> int:
        """Parked ``poll_dir`` long-polls (see
        :attr:`StoreServer.poll_waiters`); reading an int across the
        loop thread is atomic under the GIL."""
        return self.server.poll_waiters if self.server is not None else 0

    def wait_for_poll_waiters(self, count: int = 1,
                              timeout: float = 5.0) -> bool:
        """Block until at least ``count`` long-polls are parked on the
        server (or ``timeout`` elapses).  The deterministic handshake
        tests use instead of sleeping and hoping the poll RPC has
        arrived — fixed sleeps flake under loaded CI runners."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.poll_waiters >= count:
                return True
            time.sleep(0.002)
        return self.poll_waiters >= count

    def start(self) -> str:
        self._thread = threading.Thread(
            target=self._run, name="repro-store-server", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self.url

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - defensive
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _main(self) -> None:
        self.server = StoreServer(self._store, host=self._host,
                                  port=self._port, admin=self._admin,
                                  name=self._name,
                                  request_log=self._request_log,
                                  shard_info=self._shard_info)
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.url = self.server.url
        self._ready.set()
        stopper = asyncio.ensure_future(self._stop_event.wait())
        closer = asyncio.ensure_future(self.server.closed.wait())
        try:
            await asyncio.wait({stopper, closer},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            stopper.cancel()
            closer.cancel()
            await self.server.stop()

    def stop(self) -> None:
        """Graceful shutdown; safe to call twice."""
        if self._thread is None:
            return
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass    # loop already gone (crash shutdown)
        self._thread.join(timeout=10)
        self._thread = None

    def join_crashed(self, timeout: float = 10.0) -> CrashError:
        """Wait for a crash-triggered shutdown and return the crash.

        For tests that schedule an injected crash inside the server:
        the server aborts itself; this joins the thread and surfaces
        the :class:`~repro.errors.CrashError` that killed it."""
        assert self._thread is not None
        self._thread.join(timeout=timeout)
        self._thread = None
        crash = self.crashed
        if crash is None:
            raise AssertionError("server did not crash")
        return crash
