"""Symmetric (type-A) bilinear pairing substrate.

This package replaces the PBC library used by the paper.  It implements the
same construction PBC's type-A parameters provide: the supersingular curve
``y² = x³ + x`` over ``F_p`` with ``p ≡ 3 (mod 4)``, embedding degree 2, the
distortion map ``(x, y) → (-x, i·y)`` into ``E(F_p²)``, and the reduced Tate
pairing ``e: G1 × G1 → GT ⊆ F_p²`` computed with Miller's algorithm (BKLS
denominator elimination).
"""

from repro.pairing.params import (
    PairingParams,
    generate_params,
    preset,
    std160,
    toy64,
)
from repro.pairing.group import G1Element, GTElement, PairingGroup

__all__ = [
    "PairingParams",
    "generate_params",
    "preset",
    "toy64",
    "std160",
    "PairingGroup",
    "G1Element",
    "GTElement",
]
