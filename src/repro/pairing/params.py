"""Type-A pairing parameter generation and presets.

A parameter set consists of:

* ``q`` — a prime, the order of the bilinear groups (exponent field Z_q);
* ``p`` — the base-field prime, ``p ≡ 3 (mod 4)`` and ``q | p + 1``, so the
  supersingular curve ``y² = x³ + x`` (which has ``p + 1`` points) contains
  a subgroup of order ``q`` and has embedding degree 2;
* ``g`` — a generator of that order-``q`` subgroup.

Presets:

* :func:`toy64` — 64-bit group order over a ~96-bit field.  Fast; used by
  the test suite and the large sweeps in benchmarks.  NOT secure.
* :func:`std160` — 160-bit group order over a 512-bit field, the security
  level of PBC's stock ``a.param`` used by the paper's implementation.

Both presets are generated deterministically (fixed seeds) so that every
checkout produces identical parameters, and cached per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crypto.rng import DeterministicRng, Rng
from repro.errors import ParameterError
from repro.mathutils.primes import gen_prime, is_probable_prime


@dataclass(frozen=True)
class PairingParams:
    """Immutable type-A pairing parameters."""

    q: int                 # group order (prime)
    p: int                 # base field prime, p ≡ 3 (mod 4), q | p+1
    generator: Tuple[int, int]  # affine generator of the order-q subgroup
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.p % 4 != 3:
            raise ParameterError("type-A pairing requires p ≡ 3 (mod 4)")
        if (self.p + 1) % self.q != 0:
            raise ParameterError("group order q must divide p + 1")
        if not is_probable_prime(self.q):
            raise ParameterError("group order q must be prime")
        if not is_probable_prime(self.p):
            raise ParameterError("field order p must be prime")
        gx, gy = self.generator
        if (gy * gy - (gx * gx * gx + gx)) % self.p != 0:
            raise ParameterError("generator is not on y² = x³ + x")

    @property
    def cofactor(self) -> int:
        return (self.p + 1) // self.q

    def describe(self) -> str:
        return (
            f"{self.name}: |q|={self.q.bit_length()} bits, "
            f"|p|={self.p.bit_length()} bits"
        )


def generate_params(q_bits: int, p_bits: int, rng: Rng,
                    name: str = "custom") -> PairingParams:
    """Generate fresh type-A parameters.

    Searches for a prime ``q`` of ``q_bits`` bits and a cofactor ``h``
    (a multiple of 4, so that ``p = q·h - 1 ≡ 3 (mod 4)``) making
    ``p = q·h - 1`` a ``p_bits``-bit prime, then derives a generator by
    cofactor multiplication of a random curve point.
    """
    if p_bits < q_bits + 3:
        raise ParameterError("p_bits must exceed q_bits by at least 3")
    q = gen_prime(q_bits, rng.randint_below)
    h_bits = p_bits - q_bits
    while True:
        h = rng.randint_below(1 << h_bits)
        h = (h | (1 << (h_bits - 1))) & ~0b11  # top bit set, multiple of 4
        if h == 0:
            continue
        p = q * h - 1
        if p.bit_length() != p_bits or p % 4 != 3:
            continue
        if is_probable_prime(p):
            break
    generator = _find_generator(p, q, rng)
    return PairingParams(q=q, p=p, generator=generator, name=name)


def _find_generator(p: int, q: int, rng: Rng) -> Tuple[int, int]:
    """Find a point of order exactly q on y² = x³ + x over F_p."""
    # Import here to avoid a circular import at module load.
    from repro.ec.curve import Curve
    from repro.mathutils.modular import jacobi_symbol, modsqrt

    curve = Curve(p=p, a=1, b=0, order=q, cofactor=(p + 1) // q,
                  name="type-a")
    while True:
        x = rng.randint_below(p)
        rhs = (pow(x, 3, p) + x) % p
        if rhs == 0 or jacobi_symbol(rhs, p) != 1:
            continue
        y = modsqrt(rhs, p)
        candidate = curve.point(x, y) * curve.cofactor
        if candidate.is_infinity():
            continue
        if not (candidate * q).is_infinity():
            raise ParameterError("curve order is not p + 1; bad parameters")
        return (candidate.x, candidate.y)  # type: ignore[return-value]


_PRESET_SPECS = {
    # name: (q_bits, p_bits, seed)
    "toy64": (64, 96, b"repro-type-a-toy64-v1"),
    "std160": (160, 512, b"repro-type-a-std160-v1"),
}

_PRESET_CACHE: Dict[str, PairingParams] = {}


def preset(name: str) -> PairingParams:
    """Return a named deterministic preset (cached per process)."""
    if name not in _PRESET_SPECS:
        raise ParameterError(
            f"unknown preset {name!r}; available: {sorted(_PRESET_SPECS)}"
        )
    if name not in _PRESET_CACHE:
        q_bits, p_bits, seed = _PRESET_SPECS[name]
        _PRESET_CACHE[name] = generate_params(
            q_bits, p_bits, DeterministicRng(seed), name=name
        )
    return _PRESET_CACHE[name]


def toy64() -> PairingParams:
    """Fast, insecure parameters for tests (64-bit order, ~96-bit field)."""
    return preset("toy64")


def std160() -> PairingParams:
    """PBC ``a.param``-equivalent security (160-bit order, 512-bit field)."""
    return preset("std160")
