"""Miller's algorithm for the reduced Tate pairing (type-A, k = 2).

The second pairing argument is first pushed through the distortion map
``φ(x, y) = (-x, i·y)`` into ``E(F_p²)``.  Because the distorted point has
its x-coordinate in F_p and its y-coordinate purely imaginary, all vertical
lines evaluate inside F_p and are annihilated by the final exponentiation
``(p² - 1)/q = (p - 1)·(p + 1)/q`` — the classic BKLS denominator
elimination, so the Miller loop only accumulates the tangent/chord lines.

Two implementations are provided:

* :func:`tate_pairing` — the production path: the running point is kept in
  Jacobian coordinates and line evaluations are *scaled* by the slope
  denominators (2YZ for tangents, λ'Z for chords).  Those factors live in
  F_p*, so the final exponentiation kills them — no modular inversion
  anywhere in the loop.
* :func:`tate_pairing_affine` — the textbook affine version (one inversion
  per step), kept as the reference the property tests cross-check against.

Final exponentiation uses the Frobenius shortcut
``f^(p-1) = conj(f) · f^{-1}`` followed by a short ``(p+1)/q`` exponent.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import PairingError
from repro.fields.fp2 import RawFp2, fp2_inv, fp2_mul, fp2_pow, fp2_sqr

Affine = Optional[Tuple[int, int]]  # None is the point at infinity


def _final_exponentiation(f: RawFp2, p: int, q: int) -> RawFp2:
    if f == (0, 0):
        raise PairingError("degenerate Miller value")
    # f^((p-1)(p+1)/q): Frobenius (conjugation) then a short exponent.
    f_p_minus_1 = fp2_mul((f[0], (-f[1]) % p), fp2_inv(f, p), p)
    return fp2_pow(f_p_minus_1, (p + 1) // q, p)


# ---------------------------------------------------------------------------
# Production path: Jacobian, inversion-free
# ---------------------------------------------------------------------------

def tate_pairing(px: int, py: int, qx: int, qy: int,
                 p: int, q: int) -> RawFp2:
    """Reduced Tate pairing ``e(P, φ(Q))`` for P, Q in the order-``q``
    subgroup of ``y² = x³ + x`` over F_p.

    Inputs are affine coordinates of non-infinity points; the caller
    handles infinity (pairing value 1).  Returns a raw F_p² element of
    order dividing ``q``.
    """
    # Distorted coordinates of Q: x' = -qx (in F_p), y' = qy·i.
    xq = (-qx) % p
    yq = qy % p
    x2, y2 = px % p, py % p     # the affine base point, re-added when bits set

    f: RawFp2 = (1, 0)
    # Running point in Jacobian coordinates (X, Y, Z); starts at P (Z = 1).
    X, Y, Z = x2, y2, 1

    for bit in bin(q)[3:]:       # skip the leading 1
        f = fp2_sqr(f, p)
        # -- doubling with line (a = 1 for the type-A curve) --------------
        if Z == 0:
            pass                 # point at infinity: line is 1
        elif Y == 0:
            X, Y, Z = 1, 1, 0    # vertical tangent: 2V = ∞, line eliminated
        else:
            ZZ = Z * Z % p
            YY = Y * Y % p
            # Tangent numerator n = 3X² + a·Z⁴ and the line scaled by 2YZ³:
            #   l̃ = (n(X - xq·Z²) - 2Y²)  +  (2YZ³·yq)·i
            n = (3 * X * X + ZZ * ZZ) % p
            line_re = (n * (X - xq * ZZ) - 2 * YY) % p
            line_im = 2 * Y * ZZ % p * Z % p * yq % p
            f = fp2_mul(f, (line_re, line_im), p)
            # Jacobian doubling (a = 1): standard dbl-2007-bl-like forms.
            S = 4 * X * YY % p
            X3 = (n * n - 2 * S) % p
            Y3 = (n * (S - X3) - 8 * YY * YY) % p
            Z3 = 2 * Y * Z % p
            X, Y, Z = X3, Y3, Z3
        if bit == "1":
            # -- mixed addition V + P with line ----------------------------
            if Z == 0:
                X, Y, Z = x2, y2, 1   # ∞ + P = P; vertical line eliminated
            else:
                ZZ = Z * Z % p
                # θ = Y - y2·Z³,  λ' = X - x2·Z² (Jacobian mixed-add forms).
                theta = (Y - y2 * Z % p * ZZ) % p
                lam = (X - x2 * ZZ) % p
                if lam == 0 and theta == 0:
                    raise PairingError(
                        "unexpected doubling inside the addition step"
                    )
                if lam == 0:
                    # V == -P: chord is vertical, sum is ∞, line eliminated.
                    X, Y, Z = 1, 1, 0
                else:
                    # Line scaled by λ'Z:
                    #   l̃ = (-θ(xq - x2) - λ'Z·y2)  +  (λ'Z·yq)·i
                    lam_z = lam * Z % p
                    line_re = (-theta * (xq - x2) - lam_z * y2) % p
                    line_im = lam_z * yq % p
                    f = fp2_mul(f, (line_re, line_im), p)
                    # Mixed addition with θ = Y - y2Z³, λ' = X - x2Z² and
                    # Z3 = Z·λ': X3 = θ² + λ'³ - 2Xλ'²,
                    # Y3 = θ(Xλ'² - X3) - Yλ'³.
                    ll = lam * lam % p
                    lll = ll * lam % p
                    v = X * ll % p
                    X3 = (theta * theta + lll - 2 * v) % p
                    Y3 = (theta * (v - X3) - Y * lll) % p
                    Z3 = Z * lam % p
                    X, Y, Z = X3, Y3, Z3

    if Z != 0:
        raise PairingError("Miller loop did not terminate at infinity; "
                           "point is not in the order-q subgroup")
    return _final_exponentiation(f, p, q)


# ---------------------------------------------------------------------------
# Reference path: affine, one inversion per step
# ---------------------------------------------------------------------------

def tate_pairing_affine(px: int, py: int, qx: int, qy: int,
                        p: int, q: int) -> RawFp2:
    """Textbook affine Miller loop (reference implementation)."""
    xq = (-qx) % p
    yq = qy % p

    f: RawFp2 = (1, 0)
    v: Affine = (px % p, py % p)
    base = (px % p, py % p)

    for bit in bin(q)[3:]:
        f = fp2_sqr(f, p)
        v, line = _double_step(v, xq, yq, p)
        if line is not None:
            f = fp2_mul(f, line, p)
        if bit == "1":
            v, line = _add_step(v, base, xq, yq, p)
            if line is not None:
                f = fp2_mul(f, line, p)
    if v is not None:
        raise PairingError("Miller loop did not terminate at infinity; "
                           "point is not in the order-q subgroup")
    return _final_exponentiation(f, p, q)


def _double_step(v: Affine, xq: int, yq: int,
                 p: int) -> Tuple[Affine, Optional[RawFp2]]:
    """Double ``v`` and return the tangent line evaluated at the distorted Q.

    Returns ``(2·v, line)`` where ``line`` is None when it is a vertical
    (eliminated) or the point is infinity.
    """
    if v is None:
        return None, None
    x, y = v
    if y == 0:
        # Tangent is vertical; 2v = infinity; line eliminated.
        return None, None
    lam = (3 * x * x + 1) * pow(2 * y, -1, p) % p
    x3 = (lam * lam - 2 * x) % p
    y3 = (lam * (x - x3) - y) % p
    # l(Q') = y' - y - λ(x' - x) with x' = xq (already negated), y' = yq·i.
    c = (lam * (xq - x) * -1 - y) % p
    # Expanded: real part = -y - λ(xq - x); imaginary part = yq.
    return (x3, y3), (c, yq)


def _add_step(v: Affine, base: Tuple[int, int], xq: int, yq: int,
              p: int) -> Tuple[Affine, Optional[RawFp2]]:
    """Add ``base`` to ``v`` and return the chord line evaluated at Q'."""
    if v is None:
        # Line through infinity and base is vertical — eliminated.
        return base, None
    x1, y1 = v
    x2, y2 = base
    if x1 == x2:
        if (y1 + y2) % p == 0:
            # v == -base: vertical chord, sum is infinity, line eliminated.
            return None, None
        return _double_step(v, xq, yq, p)
    lam = (y2 - y1) * pow(x2 - x1, -1, p) % p
    x3 = (lam * lam - x1 - x2) % p
    y3 = (lam * (x1 - x3) - y1) % p
    c = (lam * (xq - x1) * -1 - y1) % p
    return (x3, y3), (c, yq)
