"""High-level bilinear group interface: G1, GT and the pairing map.

The type-A pairing is symmetric: both pairing arguments live in the same
order-``q`` subgroup G1 of ``E(F_p)``; the target group GT is the order-``q``
subgroup of ``F_p²*``.  Scheme code (IBE, IBBE) is written against this
interface, matching the paper's use of PBC.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Tuple

from repro.ec.curve import Curve, Point
from repro.ec.wnaf import HITS as _precomp_hits
from repro.ec.wnaf import MISSES as _precomp_misses
from repro.ec.wnaf import TABLES as _precomp_tables
from repro.ec.wnaf import DEFAULT_WIDTH, FixedBaseWnaf, wnaf_digits
from repro.errors import PairingError
from repro.obs.spans import span as _span
from repro.fields.fp2 import (
    RawFp2,
    fp2_conj,
    fp2_inv,
    fp2_mul,
    fp2_pow,
)
from repro.pairing.miller import tate_pairing
from repro.pairing.params import PairingParams


class PairingGroup:
    """A configured bilinear group ``e: G1 × G1 → GT``."""

    def __init__(self, params: PairingParams) -> None:
        self.params = params
        self.q = params.q
        self.p = params.p
        self.curve = Curve(
            p=params.p, a=1, b=0, order=params.q,
            generator=params.generator, cofactor=params.cofactor,
            name=f"type-a/{params.name}",
        )
        self._g = G1Element(self, self.curve.generator)
        self._gt_gen: GTElement | None = None

    # -- group elements -----------------------------------------------------

    @property
    def g1(self) -> "G1Element":
        """The configured generator of G1."""
        return self._g

    def g1_identity(self) -> "G1Element":
        return G1Element(self, self.curve.infinity())

    def gt_identity(self) -> "GTElement":
        return GTElement(self, (1, 0))

    def gt_generator(self) -> "GTElement":
        """``e(g, g)`` (cached)."""
        if self._gt_gen is None:
            self._gt_gen = self.pair(self._g, self._g)
        return self._gt_gen

    def random_scalar(self, rng) -> int:
        """Uniform non-zero exponent in Z_q*."""
        return 1 + rng.randint_below(self.q - 1)

    def hash_to_scalar(self, data: bytes | str,
                       domain: bytes = b"repro:h2s") -> int:
        """Hash arbitrary data (e.g. a user identity) into Z_q*.

        This is the hash ``H`` of the paper's Appendix A mapping identity
        strings to values in Z_p* (our notation: Z_q*).
        """
        if isinstance(data, str):
            data = data.encode("utf-8")
        counter = 0
        while True:
            digest = hashlib.sha256(
                domain + counter.to_bytes(4, "big") + data
            ).digest()
            # Widen past q's size to make the modular bias negligible.
            extra = hashlib.sha256(b"w" + digest).digest()
            value = int.from_bytes(digest + extra, "big") % self.q
            if value != 0:
                return value
            counter += 1

    # -- pairing -------------------------------------------------------------

    def pair(self, a: "G1Element", b: "G1Element") -> "GTElement":
        """The symmetric pairing ``ê(a, b) = e(a, φ(b))``."""
        if a.group is not self and a.group.params != self.params:
            raise PairingError("first argument from a different group")
        if b.group is not self and b.group.params != self.params:
            raise PairingError("second argument from a different group")
        pa, pb = a.point, b.point
        if pa.is_infinity() or pb.is_infinity():
            return self.gt_identity()
        with _span("crypto.pair", curve=self.params.name):
            raw = tate_pairing(pa.x, pa.y, pb.x, pb.y, self.p, self.q)  # type: ignore[arg-type]
        return GTElement(self, raw)

    def multi_mul_g1(self, pairs: Iterable[Tuple[int, "G1Element"]]) -> "G1Element":
        """``Σ k_i·P_i`` in G1 — the IBBE decrypt multi-exponentiation."""
        point = self.curve.multi_mul(
            (k % self.q, el.point) for k, el in pairs
        )
        return G1Element(self, point)

    def __repr__(self) -> str:
        return f"PairingGroup({self.params.describe()})"


class G1Element:
    """Element of G1 (written multiplicatively to match the paper)."""

    __slots__ = ("group", "point", "_wnaf_table")

    def __init__(self, group: PairingGroup, point: Point) -> None:
        self.group = group
        self.point = point
        self._wnaf_table = None

    def __mul__(self, other: "G1Element") -> "G1Element":
        if not isinstance(other, G1Element):
            return NotImplemented
        return G1Element(self.group, self.point + other.point)

    def __truediv__(self, other: "G1Element") -> "G1Element":
        if not isinstance(other, G1Element):
            return NotImplemented
        return G1Element(self.group, self.point - other.point)

    def enable_precomputation(self) -> "G1Element":
        """Build a fixed-base wNAF table so subsequent exponentiations of
        THIS element cost ~q_bits/(w+1) mixed additions instead of a full
        double-and-add ladder (about 6× on the std160 preset).

        Used for the long-lived public-key elements (w, v, h) that every
        membership operation exponentiates (paper Algorithms 1-3), and by
        the parallel engine's worker processes, which build the tables
        once per process at pool start-up."""
        if self._wnaf_table is None and not self.point.is_infinity():
            self._wnaf_table = FixedBaseWnaf(
                self.group.curve, self.point._jac(),
                bits=self.group.q.bit_length(),
            )
        return self

    def __pow__(self, exponent: int) -> "G1Element":
        exponent %= self.group.q
        if self._wnaf_table is not None:
            curve = self.group.curve
            return G1Element(
                self.group, curve._to_affine(self._wnaf_table.mul(exponent))
            )
        _precomp_misses.add()
        return G1Element(self.group, self.point * exponent)

    def inverse(self) -> "G1Element":
        return G1Element(self.group, -self.point)

    def is_identity(self) -> bool:
        return self.point.is_infinity()

    def encode(self) -> bytes:
        """Compressed encoding used for wire format and footprint metrics."""
        return self.point.encode()

    @classmethod
    def decode(cls, group: PairingGroup, data: bytes) -> "G1Element":
        return cls(group, Point.decode(group.curve, data))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, G1Element) and other.point == self.point

    def __hash__(self) -> int:
        return hash(("G1", self.point))

    def __repr__(self) -> str:
        return f"G1Element({self.point!r})"


class GTElement:
    """Element of GT, the order-q subgroup of F_p²*."""

    __slots__ = ("group", "raw", "_wnaf_table")

    def __init__(self, group: PairingGroup, raw: RawFp2) -> None:
        self.group = group
        self.raw = raw
        self._wnaf_table = None

    def enable_precomputation(self) -> "GTElement":
        """Fixed-base wNAF table for a long-lived GT base (see G1Element).

        Negative wNAF digits need cheap inversion, which GT provides:
        elements of the order-q subgroup satisfy ``z^(p+1) = 1``, so the
        inverse is the conjugate.  The table is therefore only valid for
        subgroup members — which the long-lived bases it serves (``v``,
        pairing outputs) always are.
        """
        if self._wnaf_table is None and self.raw != (1, 0):
            p = self.group.p
            entries = 1 << (DEFAULT_WIDTH - 2)
            rows = []
            base = self.raw
            for _ in range(self.group.q.bit_length() + 2):
                twice = fp2_mul(base, base, p)
                row = [base]
                for _ in range(entries - 1):
                    row.append(fp2_mul(row[-1], twice, p))
                rows.append(row)
                base = twice
            self._wnaf_table = rows
            _precomp_tables.add()
        return self

    def __mul__(self, other: "GTElement") -> "GTElement":
        if not isinstance(other, GTElement):
            return NotImplemented
        return GTElement(self.group, fp2_mul(self.raw, other.raw, self.group.p))

    def __truediv__(self, other: "GTElement") -> "GTElement":
        if not isinstance(other, GTElement):
            return NotImplemented
        return self * other.inverse()

    def __pow__(self, exponent: int) -> "GTElement":
        exponent %= self.group.q
        if self._wnaf_table is not None:
            _precomp_hits.add()
            p = self.group.p
            acc: RawFp2 = (1, 0)
            for i, digit in enumerate(wnaf_digits(exponent)):
                if digit:
                    entry = self._wnaf_table[i][(abs(digit) - 1) >> 1]
                    if digit < 0:
                        entry = fp2_conj(entry, p)
                    acc = fp2_mul(acc, entry, p)
            return GTElement(self.group, acc)
        _precomp_misses.add()
        return GTElement(
            self.group, fp2_pow(self.raw, exponent, self.group.p)
        )

    def inverse(self) -> "GTElement":
        # Elements of GT have order dividing q | p+1, hence z^p = z^{-1}:
        # inversion is conjugation (cheap).  Fall back to true inversion for
        # raw values outside the subgroup (defensive).
        conj = fp2_conj(self.raw, self.group.p)
        if fp2_mul(conj, self.raw, self.group.p) == (1, 0):
            return GTElement(self.group, conj)
        return GTElement(self.group, fp2_inv(self.raw, self.group.p))

    def is_identity(self) -> bool:
        return self.raw == (1, 0)

    def encode(self) -> bytes:
        size = (self.group.p.bit_length() + 7) // 8
        return self.raw[0].to_bytes(size, "big") + self.raw[1].to_bytes(size, "big")

    @classmethod
    def decode(cls, group: PairingGroup, data: bytes) -> "GTElement":
        size = (group.p.bit_length() + 7) // 8
        if len(data) != 2 * size:
            raise PairingError("malformed GT encoding")
        return cls(group, (int.from_bytes(data[:size], "big"),
                           int.from_bytes(data[size:], "big")))

    def digest(self) -> bytes:
        """SHA-256 of the canonical encoding — the ``sgx_sha(bk)`` of
        Algorithms 1-3, used to key AES when enveloping the group key."""
        return hashlib.sha256(b"repro:gt" + self.encode()).digest()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GTElement) and other.raw == self.raw

    def __hash__(self) -> int:
        return hash(("GT", self.raw))

    def __repr__(self) -> str:
        return f"GTElement({self.raw[0]:#x}, {self.raw[1]:#x})"
