"""A process-pool executor with a serial in-process mode.

Python threads cannot parallelize the pairing arithmetic (the GIL), so
the engine uses processes.  The ``fork`` start method is preferred where
available: workers inherit the already-generated pairing presets and
loaded modules, making pool start-up tens of milliseconds instead of
seconds.  Each worker optionally runs an initializer once (decode the
public key, build precomputation tables); ``workers=1`` runs tasks
inline in the calling process — after the same initialization — so the
serial path exercises the exact kernel code the parallel path does.

Results are returned in task order regardless of scheduling
(:meth:`concurrent.futures.Executor.map` semantics) and chunking is a
deterministic function of the task count and worker count alone.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ParallelError
from repro.obs.metrics import MetricRegistry

#: Environment default for the worker count (CLI/System fall back to it).
ENV_WORKERS = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve an explicit worker count, falling back to ``REPRO_WORKERS``
    and then to 1 (serial)."""
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ParallelError(
                f"{ENV_WORKERS} must be an integer, got {raw!r}"
            )
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ParallelError(f"worker count must be an int, got {workers!r}")
    if workers < 1:
        raise ParallelError(f"worker count must be >= 1, got {workers}")
    return workers


def _warm_task(delay: float) -> int:
    """Occupy a worker long enough that warm-up tasks spread across the
    pool (spawning every process and running its initializer)."""
    time.sleep(delay)
    return os.getpid()


class WorkerPool:
    """Deterministic map over a process pool (or inline when serial).

    Metrics (``par.*`` namespace on ``registry``): ``par.workers`` (the
    configured count), ``par.dispatches`` (``run`` calls), ``par.tasks``
    (tasks executed), ``par.failures`` (dispatches that raised).

    The underlying executor is created lazily on first parallel ``run``
    and torn down by :meth:`close` (also on any task failure, so a
    poisoned pool is never reused; the next ``run`` starts a fresh one).
    """

    def __init__(self, workers: Optional[int] = None,
                 initializer: Optional[Callable[..., None]] = None,
                 initargs: Sequence[Any] = (),
                 inline_initializer: Optional[Callable[[], None]] = None,
                 registry: Optional[MetricRegistry] = None) -> None:
        self.workers = resolve_workers(workers)
        self.registry = registry if registry is not None else MetricRegistry()
        self._tasks = self.registry.counter("par.tasks")
        self._dispatches = self.registry.counter("par.dispatches")
        self._failures = self.registry.counter("par.failures")
        self.registry.gauge("par.workers", lambda: self.workers)
        self._initializer = initializer
        self._initargs: Tuple[Any, ...] = tuple(initargs)
        self._inline_initializer = inline_initializer
        self._inline_ready = False
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- execution -----------------------------------------------------------

    def run(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every task, returning results in task order.

        ``fn`` must be a module-level (picklable) function of one task
        argument — see :mod:`repro.par.kernels`.  Any task exception
        propagates to the caller after the pool is shut down.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        self._dispatches.add()
        self._tasks.add(len(tasks))
        if self.workers == 1:
            self._ensure_inline()
            try:
                return [fn(task) for task in tasks]
            except Exception:
                self._failures.add()
                raise
        executor = self._ensure_executor()
        try:
            return list(executor.map(fn, tasks,
                                     chunksize=self._chunksize(len(tasks))))
        except Exception:
            self._failures.add()
            self.close()
            raise

    def warm(self) -> int:
        """Start every worker (and run its initializer) ahead of real
        work, so pool start-up never lands inside a measured operation.
        Returns the worker count."""
        if self.workers == 1:
            self._ensure_inline()
        else:
            executor = self._ensure_executor()
            list(executor.map(_warm_task, [0.02] * self.workers,
                              chunksize=1))
        return self.workers

    def _chunksize(self, ntasks: int) -> int:
        # Deterministic function of (ntasks, workers) only: ~4 chunks per
        # worker bounds straggler imbalance without per-task IPC overhead.
        return max(1, ntasks // (self.workers * 4))

    # -- lifecycle -----------------------------------------------------------

    def _ensure_inline(self) -> None:
        # The kernel context is per-process module state, so in serial
        # mode a *cheap* inline initializer (install already-built
        # objects) runs before every dispatch — several serial pools in
        # one process would otherwise clobber each other's context.  The
        # expensive wire-format initializer fallback runs once per pool.
        if self._inline_initializer is not None:
            self._inline_initializer()
            return
        if not self._inline_ready:
            if self._initializer is not None:
                self._initializer(*self._initargs)
            self._inline_ready = True

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else methods[0]
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._executor

    @property
    def started(self) -> bool:
        """Whether a process pool is currently live."""
        return self._executor is not None

    def close(self) -> None:
        """Shut the process pool down (idempotent; the pool restarts
        lazily on the next parallel ``run``)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
