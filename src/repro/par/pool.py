"""A process-pool executor with a serial in-process mode.

Python threads cannot parallelize the pairing arithmetic (the GIL), so
the engine uses processes.  The ``fork`` start method is preferred where
available: workers inherit the already-generated pairing presets and
loaded modules, making pool start-up tens of milliseconds instead of
seconds.  Each worker optionally runs an initializer once (decode the
public key, build precomputation tables); ``workers=1`` runs tasks
inline in the calling process — after the same initialization — so the
serial path exercises the exact kernel code the parallel path does.

Results are returned in task order regardless of scheduling
(:meth:`concurrent.futures.Executor.map` semantics) and chunking is a
deterministic function of the task count and worker count alone.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ParallelError
from repro.faults import plan as _faults
from repro.obs import collect as obs_collect
from repro.obs.metrics import MetricRegistry
from repro.obs.spans import span as _span, tracer as _tracer

#: Environment default for the worker count (CLI/System fall back to it).
ENV_WORKERS = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve an explicit worker count, falling back to ``REPRO_WORKERS``
    and then to 1 (serial)."""
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ParallelError(
                f"{ENV_WORKERS} must be an integer, got {raw!r}"
            )
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ParallelError(f"worker count must be an int, got {workers!r}")
    if workers < 1:
        raise ParallelError(f"worker count must be >= 1, got {workers}")
    return workers


def _warm_task(delay: float) -> int:
    """Occupy a worker long enough that warm-up tasks spread across the
    pool (spawning every process and running its initializer)."""
    time.sleep(delay)
    return os.getpid()


def _run_instrumented(shipment: Tuple[Callable[[Any], Any], Any, bool, bool]
                      ) -> Tuple[Any, float, Optional[dict]]:
    """Worker-side task shell: run one kernel, time it, capture telemetry.

    ``shipment = (fn, task, collect, kill)``.  The shell is what the
    executor actually maps: it measures the task's wall time in the
    *worker* (so ``par.task.seconds`` reflects kernel cost, not IPC), and
    when the parent dispatched with tracing enabled it records the task
    under a fresh child tracer whose spans and counter deltas ride back
    in the third tuple slot (see :mod:`repro.obs.collect`).  Results are
    passed through untouched — the byte-equivalence contract is
    unaffected.  A ``kill`` shipment (scheduled by the fault injector)
    dies with ``os._exit`` before running the kernel, exactly like an
    OOM-killed or segfaulted worker process.
    """
    fn, task, collect, kill = shipment
    if kill:
        os._exit(113)
    if not collect:
        start = time.perf_counter()
        result = fn(task)
        return result, time.perf_counter() - start, None
    capture = obs_collect.capture_task(getattr(fn, "__name__", "task"))
    with capture:
        result = fn(task)
    return result, capture.duration, capture.payload()


class WorkerPool:
    """Deterministic map over a process pool (or inline when serial).

    Metrics (``par.*`` namespace on ``registry``): ``par.workers`` (the
    configured count), ``par.dispatches`` (``run`` calls), ``par.tasks``
    (tasks executed), ``par.failures`` (dispatches that raised),
    ``par.respawns`` (pools rebuilt after a worker death — the dispatch
    is re-run once on the fresh pool before a failure poisons it), the
    ``par.task.seconds`` per-task latency histogram (measured inside the
    worker, so IPC and queueing are excluded), and the live-dispatch
    gauges ``par.queue.depth`` (tasks submitted but not yet holding a
    worker slot) and ``par.slots.occupied`` (slots presumed busy).

    Telemetry crosses the process boundary: when the global tracer is
    enabled at dispatch time, every task runs under a worker-side
    capture whose spans and counter deltas are merged back into this
    process (see :mod:`repro.obs.collect`), so a traced parallel run
    reports the same work a serial run does.

    The underlying executor is created lazily on first parallel ``run``
    and torn down by :meth:`close` (also on any task failure, so a
    poisoned pool is never reused; the next ``run`` starts a fresh one).
    """

    def __init__(self, workers: Optional[int] = None,
                 initializer: Optional[Callable[..., None]] = None,
                 initargs: Sequence[Any] = (),
                 inline_initializer: Optional[Callable[[], None]] = None,
                 registry: Optional[MetricRegistry] = None) -> None:
        self.workers = resolve_workers(workers)
        self.registry = registry if registry is not None else MetricRegistry()
        self._tasks = self.registry.counter("par.tasks")
        self._dispatches = self.registry.counter("par.dispatches")
        self._failures = self.registry.counter("par.failures")
        self._respawns = self.registry.counter("par.respawns")
        self._task_seconds = self.registry.histogram("par.task.seconds")
        self._pending = 0
        self.registry.gauge("par.workers", lambda: self.workers)
        self.registry.gauge("par.queue.depth",
                            lambda: max(0, self._pending - self.workers))
        self.registry.gauge("par.slots.occupied",
                            lambda: min(self._pending, self.workers))
        self._initializer = initializer
        self._initargs: Tuple[Any, ...] = tuple(initargs)
        self._inline_initializer = inline_initializer
        self._inline_ready = False
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- execution -----------------------------------------------------------

    def run(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every task, returning results in task order.

        ``fn`` must be a module-level (picklable) function of one task
        argument — see :mod:`repro.par.kernels`.  Any task exception
        propagates to the caller after the pool is shut down.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        self._dispatches.add()
        self._tasks.add(len(tasks))
        kernel = getattr(fn, "__name__", "task")
        if self.workers == 1:
            self._ensure_inline()
            self._pending = len(tasks)
            results: List[Any] = []
            try:
                for task in tasks:
                    start = time.perf_counter()
                    with _span("par.task", kernel=kernel):
                        results.append(fn(task))
                    self._task_seconds.observe(time.perf_counter() - start)
                    self._pending -= 1
                return results
            except Exception:
                self._failures.add()
                raise
            finally:
                self._pending = 0
        collect = _tracer().enabled
        injector = _faults.active()
        kill_index = (injector.take_worker_kill(len(tasks))
                      if injector is not None else None)
        try:
            try:
                gathered = self._gather(fn, tasks, collect, kill_index)
            except BrokenProcessPool:
                # A worker died mid-dispatch.  Kernels are deterministic,
                # side-effect-free functions of their task (the byte-
                # identity contract), so the whole dispatch is re-run
                # once on a fresh pool; telemetry from the partial run is
                # discarded to keep counters single-counted.
                self.close()
                self._respawns.add()
                try:
                    gathered = self._gather(fn, tasks, collect, None)
                except BrokenProcessPool as exc:
                    raise ParallelError(
                        "worker pool kept dying after one respawn"
                    ) from exc
            results = []
            for result, seconds, payload in gathered:
                self._task_seconds.observe(seconds)
                if payload is not None:
                    obs_collect.merge_task_telemetry(payload)
                results.append(result)
            return results
        except Exception:
            self._failures.add()
            self.close()
            raise
        finally:
            self._pending = 0

    def _gather(self, fn: Callable[[Any], Any], tasks: List[Any],
                collect: bool, kill_index: Optional[int]
                ) -> List[Tuple[Any, float, Optional[dict]]]:
        """One parallel dispatch, buffered: per-task accounting happens
        only after every result is back, so a dispatch that dies halfway
        (and is retried) never double-counts telemetry."""
        executor = self._ensure_executor()
        self._pending = len(tasks)
        gathered = []
        for triple in executor.map(
                _run_instrumented,
                [(fn, task, collect, index == kill_index)
                 for index, task in enumerate(tasks)],
                chunksize=self._chunksize(len(tasks))):
            self._pending -= 1
            gathered.append(triple)
        return gathered

    def warm(self) -> int:
        """Start every worker (and run its initializer) ahead of real
        work, so pool start-up never lands inside a measured operation.
        Returns the worker count."""
        if self.workers == 1:
            self._ensure_inline()
        else:
            executor = self._ensure_executor()
            list(executor.map(_warm_task, [0.02] * self.workers,
                              chunksize=1))
        return self.workers

    def _chunksize(self, ntasks: int) -> int:
        # Deterministic function of (ntasks, workers) only: ~4 chunks per
        # worker bounds straggler imbalance without per-task IPC overhead.
        return max(1, ntasks // (self.workers * 4))

    # -- lifecycle -----------------------------------------------------------

    def _ensure_inline(self) -> None:
        # The kernel context is per-process module state, so in serial
        # mode a *cheap* inline initializer (install already-built
        # objects) runs before every dispatch — several serial pools in
        # one process would otherwise clobber each other's context.  The
        # expensive wire-format initializer fallback runs once per pool.
        if self._inline_initializer is not None:
            self._inline_initializer()
            return
        if not self._inline_ready:
            if self._initializer is not None:
                self._initializer(*self._initargs)
            self._inline_ready = True

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else methods[0]
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._executor

    @property
    def started(self) -> bool:
        """Whether a process pool is currently live."""
        return self._executor is not None

    def close(self) -> None:
        """Shut the process pool down (idempotent; the pool restarts
        lazily on the next parallel ``run``)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
