"""Per-task deterministic randomness streams.

A parallel operation draws ONE parent seed from its caller's RNG, then
derives an independent stream per task *by index*.  Because the
derivation depends only on ``(parent_seed, label, index)`` — not on
which worker runs the task or in what order — the randomness consumed by
task ``i`` is identical under any worker count, which is what makes
parallel and serial runs byte-identical.
"""

from __future__ import annotations

import hashlib

from repro.crypto.rng import DeterministicRng
from repro.errors import ValidationError

_DOMAIN = b"repro:par:stream:"


def derive_seed(parent_seed: bytes, index: int, label: str = "task") -> bytes:
    """The 32-byte seed of substream ``index`` under ``parent_seed``.

    Domain-separated SHA-256; distinct labels (e.g. ``"partition"`` vs
    ``"rekey"``) yield unrelated stream families even for equal indices.
    """
    if index < 0:
        raise ValidationError("stream index must be non-negative")
    return hashlib.sha256(
        _DOMAIN + label.encode("utf-8") + b":"
        + index.to_bytes(8, "big") + b":" + parent_seed
    ).digest()


def task_rng(parent_seed: bytes, index: int,
             label: str = "task") -> DeterministicRng:
    """An independent :class:`DeterministicRng` for task ``index``."""
    return DeterministicRng(derive_seed(parent_seed, index, label))
