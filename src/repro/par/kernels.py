"""Worker-process kernels and their per-process context.

Every kernel is a module-level function of one picklable task tuple, so
:class:`~repro.par.pool.WorkerPool` can ship it to worker processes.
The expensive shared inputs — the pairing group, the decoded public key
and its precomputation tables — are *not* re-shipped per task: they are
installed once per process by :func:`init_worker` (run as the pool
initializer) and read from module state.

Only public material ever enters this module.  Partition products are
γ-aggregates the enclave computes and hands to its in-boundary workers
(the paper's enclave threads); the genuinely public kernels
(:func:`hash_members_task`, :func:`prepare_hint_task`) need nothing but
the public key.  See DESIGN.md ("Parallel engine and the trust split").
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.crypto.rng import DeterministicRng
from repro.errors import ParallelError
from repro.ibbe.scheme import (
    IbbeCiphertext,
    IbbePublicKey,
    prepare_decryption_public,
)
from repro.pairing.group import G1Element, GTElement, PairingGroup

#: Per-process context: (pairing group, public key).  Populated by
#: :func:`init_worker` (subprocesses) or :func:`set_context` (inline).
_CONTEXT: Optional[Tuple[PairingGroup, IbbePublicKey]] = None


def set_context(group: PairingGroup, pk: IbbePublicKey) -> None:
    """Install an already-built context (the serial in-process path)."""
    global _CONTEXT
    _CONTEXT = (group, pk)


def init_worker(preset_name: str, pk_bytes: bytes,
                full_pk: bool = True, precompute: bool = True) -> None:
    """Pool initializer: rebuild the context from wire-format inputs.

    ``full_pk=False`` decodes only the ``(w, v, h)`` bases the
    partition-build kernels touch, skipping the ``m`` point
    decompressions of the ``h``-power ladder (one modular square root
    each — seconds for large ``m``).  Hint kernels need the full key.
    """
    from repro.pairing.params import preset

    group = PairingGroup(preset(preset_name))
    if full_pk:
        pk = IbbePublicKey.decode(pk_bytes, group)
    else:
        pk = _decode_pk_bases(pk_bytes, group)
    if precompute:
        pk.enable_precomputation()
    set_context(group, pk)


def _require_context() -> Tuple[PairingGroup, IbbePublicKey]:
    if _CONTEXT is None:
        raise ParallelError(
            "worker context not initialized — the pool must be created "
            "with kernels.init_worker (or set_context for inline use)"
        )
    return _CONTEXT


def _decode_pk_bases(data: bytes, group: PairingGroup) -> IbbePublicKey:
    """Decode an :class:`IbbePublicKey` keeping only ``w``, ``v`` and
    ``h`` (= ``h_powers[0]``); the remaining ``h``-powers are skipped
    without decompression."""
    from repro.core.serialize import Reader
    from repro.errors import SchemeError

    reader = Reader(data)
    if reader.bytes_field() != b"IBBEPK1":
        raise SchemeError("not an IBBE public key encoding")
    preset_name = reader.str_field()
    if group.params.name != preset_name:
        raise SchemeError(
            f"public key was generated for preset {preset_name!r}, "
            f"got group {group.params.name!r}"
        )
    m = reader.u32()
    w = G1Element.decode(group, reader.bytes_field())
    v = GTElement.decode(group, reader.bytes_field())
    count = reader.u32()
    if count < 1:
        raise SchemeError("inconsistent public key (no h-powers)")
    h = G1Element.decode(group, reader.bytes_field())
    return IbbePublicKey(group=group, m=m, w=w, v=v, h_powers=(h,))


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------

def hash_members_task(members: Tuple[str, ...]) -> List[int]:
    """Identity hashing for one partition: ``[H(u) for u in members]``.

    Genuinely public work (H is a public hash into Z_q*).
    """
    _, pk = _require_context()
    return [pk.hash_identity(identity) for identity in members]


def build_partition_task(task: Tuple[int, bytes]) -> Tuple[bytes, bytes]:
    """Assemble one partition's broadcast ciphertext and key digest.

    ``task = (product, k_seed)`` where ``product = ∏(γ + H(u)) mod q``
    is the enclave-computed aggregate and ``k_seed`` the per-partition
    randomness stream.  Computes (paper eq. 3, using only PK bases)::

        C3 = h^product      C2 = h^(product·k) = C3^k
        C1 = w^(-k)         bk = v^k

    Returns ``(ciphertext encoding, SHA-256(bk))`` — the digest is what
    keys the AES envelope, so the broadcast key itself never leaves the
    process that derived it.
    """
    group, pk = _require_context()
    product, k_seed = task
    q = group.q
    k = group.random_scalar(DeterministicRng(k_seed))
    c3 = pk.h ** product
    c2 = pk.h ** ((product * k) % q)
    c1 = pk.w ** (q - k)
    bk = pk.v ** k
    ciphertext = IbbeCiphertext(c1=c1, c2=c2, c3=c3)
    return ciphertext.encode(), bk.digest()


def rekey_partition_task(task: Tuple[bytes, bytes]) -> Tuple[bytes, bytes]:
    """Re-key one partition from its (public) aggregate ``C3``.

    ``task = (c3 encoding, k_seed)``.  The A-G re-key needs only C3 and
    the public key: ``C2 = C3^k``, ``C1 = w^(-k)``, ``bk = v^k``.
    """
    group, pk = _require_context()
    c3_bytes, k_seed = task
    c3 = G1Element.decode(group, c3_bytes)
    k = group.random_scalar(DeterministicRng(k_seed))
    ciphertext = IbbeCiphertext(
        c1=pk.w ** (group.q - k), c2=c3 ** k, c3=c3
    )
    return ciphertext.encode(), (pk.v ** k).digest()


def prepare_hint_task(task: Tuple[str, Tuple[str, ...]]) -> Tuple[bytes, int]:
    """The O(|S|²) decryption-hint expansion for one member set.

    ``task = (identity, members)``.  Public-key-only (the hint never
    involves the user's secret key), so clients can fan multi-partition
    hint preparation out to untrusted workers.  Returns
    ``(h_pi encoding, delta_inverse)``.
    """
    _, pk = _require_context()
    identity, members = task
    hint = prepare_decryption_public(pk, identity, list(members))
    return hint.h_pi.encode(), hint.delta_inverse
