"""Parallel execution engine for partition-independent work.

The paper parallelizes IBBE-SGX group creation across enclave worker
threads (Fig. 5: bootstrap latency drops near-linearly with the thread
count).  This package is that engine for the Python substrate, where
threads cannot help (the GIL serializes the big-integer arithmetic):

* :mod:`repro.par.pool` — :class:`WorkerPool`, a process-pool executor
  with deterministic chunking and a serial in-process mode
  (``workers=1`` runs the *same* kernels inline, so worker count never
  changes results);
* :mod:`repro.par.streams` — per-task RNG streams derived by index from
  one parent seed, making parallel and serial runs byte-identical;
* :mod:`repro.par.kernels` — the picklable task functions workers
  execute, plus the per-process context (pairing group, public key,
  precomputation tables) built once at pool start-up.

Determinism contract: a kernel's output is a pure function of its task
tuple and the per-process public context.  Scheduling, chunking and the
worker count affect only *where* a task runs, never its result — the
property the CI determinism gate (serial-vs-parallel byte equivalence)
enforces.

Trust boundary: see DESIGN.md ("Parallel engine and the trust split").
Worker processes only ever receive public-key material; γ, user keys,
group keys and sealing material never serialize into task payloads.
"""

from repro.par.pool import ENV_WORKERS, WorkerPool, resolve_workers
from repro.par.streams import derive_seed, task_rng

__all__ = [
    "ENV_WORKERS",
    "WorkerPool",
    "resolve_workers",
    "derive_seed",
    "task_rng",
]
