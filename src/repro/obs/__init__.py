"""``repro.obs`` — the unified observability layer.

One API for the two questions the paper's evaluation asks of every
component: *how many* (counters and histograms in a
:class:`MetricRegistry`, consumed through the :class:`MetricSource`
protocol) and *how long* (hierarchical :class:`Span` traces collected by
the process-wide :class:`Tracer`).  Around those two primitives:

* cross-process collection (:mod:`repro.obs.collect`) — worker-side
  capture and parent-side merge, so the parallel engine's traces and
  counters survive the process boundary;
* a sampling profiler (:mod:`repro.obs.profile`) — flame-style
  attribution to the innermost active span without per-function probes;
* exporters (:mod:`repro.obs.export`) — JSONL dumps, Chrome
  ``trace_event`` JSON for ``chrome://tracing``/Perfetto, Prometheus
  text exposition, aggregated ``System.telemetry()`` snapshots, and the
  per-phase breakdown tables printed by ``repro replay --telemetry``
  and the Fig. 7/8 benchmark reports.

The package imports nothing from the rest of ``repro`` so any module —
including the lowest-level crypto kernels — can instrument itself
without creating an import cycle.
"""

from repro.obs.collect import (
    capture_task,
    merge_task_telemetry,
    merge_traces,
    register_worker_source,
)
from repro.obs.export import (
    aggregate_spans,
    breakdown_table,
    format_metrics,
    metrics_to_prometheus,
    spans_to_chrome_trace,
    spans_to_jsonl,
    telemetry_snapshot,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    Counter,
    CounterField,
    Histogram,
    MetricRegistry,
    MetricSource,
    SloWindow,
    merge_snapshots,
    quantile_from_samples,
)
from repro.obs.profile import SamplingProfiler, profile
from repro.obs.spans import (
    NULL_SPAN,
    Span,
    Tracer,
    current_span,
    disable,
    enable,
    enabled,
    new_trace_id,
    span,
    tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "CounterField",
    "Histogram",
    "MetricRegistry",
    "MetricSource",
    "NULL_SPAN",
    "SamplingProfiler",
    "SloWindow",
    "Span",
    "Tracer",
    "aggregate_spans",
    "breakdown_table",
    "capture_task",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "format_metrics",
    "merge_snapshots",
    "merge_task_telemetry",
    "merge_traces",
    "metrics_to_prometheus",
    "new_trace_id",
    "profile",
    "quantile_from_samples",
    "register_worker_source",
    "span",
    "spans_to_chrome_trace",
    "spans_to_jsonl",
    "telemetry_snapshot",
    "tracer",
    "use_tracer",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
