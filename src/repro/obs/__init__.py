"""``repro.obs`` — the unified observability layer.

One API for the two questions the paper's evaluation asks of every
component: *how many* (counters and histograms in a
:class:`MetricRegistry`, consumed through the :class:`MetricSource`
protocol) and *how long* (hierarchical :class:`Span` traces collected by
the process-wide :class:`Tracer`).  Exporters turn both into JSONL
dumps, aggregated ``System.telemetry()`` snapshots, and the per-phase
breakdown tables printed by ``repro replay --telemetry`` and the
Fig. 7/8 benchmark reports.

The package imports nothing from the rest of ``repro`` so any module —
including the lowest-level crypto kernels — can instrument itself
without creating an import cycle.
"""

from repro.obs.export import (
    aggregate_spans,
    breakdown_table,
    format_metrics,
    spans_to_jsonl,
    telemetry_snapshot,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    CounterField,
    Histogram,
    MetricRegistry,
    MetricSource,
    merge_snapshots,
)
from repro.obs.spans import (
    NULL_SPAN,
    Span,
    Tracer,
    disable,
    enable,
    enabled,
    span,
    tracer,
)

__all__ = [
    "Counter",
    "CounterField",
    "Histogram",
    "MetricRegistry",
    "MetricSource",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "aggregate_spans",
    "breakdown_table",
    "disable",
    "enable",
    "enabled",
    "format_metrics",
    "merge_snapshots",
    "span",
    "spans_to_jsonl",
    "telemetry_snapshot",
    "tracer",
    "write_jsonl",
]
