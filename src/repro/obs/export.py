"""Trace and metric exporters: JSONL and Chrome-trace dumps, Prometheus
text exposition, aggregates, breakdown tables.

Consumers and their formats:

* machine post-processing — :func:`spans_to_jsonl` / :func:`write_jsonl`
  emit one JSON object per span (``id``, ``parent``, ``name``,
  ``category``, ``depth``, ``start``, ``duration``, ``self``, ``error``,
  ``tid``, ``attrs``);
* trace viewers — :func:`spans_to_chrome_trace` /
  :func:`write_chrome_trace` emit the Chrome ``trace_event`` JSON object
  format (complete ``"X"`` events), loadable in ``chrome://tracing`` and
  Perfetto; worker-side spans merged by ``obs.collect`` carry their pid
  as the ``tid``, so each worker renders as its own lane;
* scrapers — :func:`metrics_to_prometheus` renders any dotted-name
  metric snapshot in the Prometheus text exposition format;
* programmatic snapshots — :func:`aggregate_spans` rolls spans up into
  per-category and per-name totals (count / total seconds / self
  seconds / p50 / p95), and :func:`telemetry_snapshot` combines that
  with the merged metric sources into the dict ``System.telemetry()``
  returns;
* humans — :func:`breakdown_table` renders the crossing-vs-cloud-vs-
  crypto split the Fig. 7/8 reports and ``repro replay --telemetry``
  print.

Self time is the aggregation currency: a crypto kernel runs *inside* an
enclave crossing which runs *inside* a replayed operation, so summing
durations per category would triple-count.  Self seconds (duration minus
child-span time) partition the wall clock exactly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.obs.metrics import MetricSource, merge_snapshots, \
    quantile_from_samples
from repro.obs.spans import Span, Tracer
from repro.errors import ValidationError


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, in span-completion order."""
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True)
                     for span in spans)


def write_jsonl(spans: Iterable[Span], path) -> int:
    """Write the JSONL trace dump; returns the number of spans written."""
    rows = [json.dumps(span.to_dict(), sort_keys=True) for span in spans]
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(row + "\n")
    return len(rows)


def aggregate_spans(spans: Iterable[Span]) -> Dict[str, Any]:
    """Roll spans up into per-category and per-name summaries.

    Returns ``{"categories": {cat: {count, total_s, self_s, p50_s,
    p95_s}}, "names": {name: {count, total_s, self_s, max_s, p50_s,
    p95_s}}, "errors": n}``.  ``self_s`` sums to total traced wall time
    across categories; the quantiles are over span *durations*.
    """
    categories: Dict[str, Dict[str, float]] = {}
    names: Dict[str, Dict[str, float]] = {}
    cat_durations: Dict[str, List[float]] = {}
    name_durations: Dict[str, List[float]] = {}
    errors = 0
    for span in spans:
        if span.error is not None:
            errors += 1
        cat = categories.setdefault(
            span.category, {"count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        cat["count"] += 1
        cat["total_s"] += span.duration
        cat["self_s"] += span.self_seconds
        cat_durations.setdefault(span.category, []).append(span.duration)
        name = names.setdefault(
            span.name,
            {"count": 0, "total_s": 0.0, "self_s": 0.0, "max_s": 0.0},
        )
        name["count"] += 1
        name["total_s"] += span.duration
        name["self_s"] += span.self_seconds
        name["max_s"] = max(name["max_s"], span.duration)
        name_durations.setdefault(span.name, []).append(span.duration)
    for key, row in categories.items():
        row["p50_s"] = quantile_from_samples(cat_durations[key], 0.50)
        row["p95_s"] = quantile_from_samples(cat_durations[key], 0.95)
    for key, row in names.items():
        row["p50_s"] = quantile_from_samples(name_durations[key], 0.50)
        row["p95_s"] = quantile_from_samples(name_durations[key], 0.95)
    return {"categories": categories, "names": names, "errors": errors}


def telemetry_snapshot(sources: Iterable[MetricSource] = (),
                       tracer: Optional[Tracer] = None) -> Dict[str, Any]:
    """The aggregated observability snapshot behind ``System.telemetry()``.

    ``{"metrics": {dotted name: value}, "trace": {"enabled", "spans",
    "dropped", "categories", "names", "errors"}}``.  The trace section
    summarizes whatever the tracer has collected so far (possibly from a
    now-disabled tracer — spans survive ``disable()``).  The tracer's
    own registry (``obs.spans.dropped``, ``obs.spans.buffered``) is
    merged into the metrics section, so buffer overflow is visible in
    the flat metric view too, not only to readers of the trace summary.
    """
    snapshot: Dict[str, Any] = {"metrics": merge_snapshots(sources)}
    if tracer is None:
        from repro.obs.spans import tracer as _global_tracer
        tracer = _global_tracer()
    snapshot["metrics"].update(tracer.registry.snapshot())
    spans = tracer.spans()
    trace: Dict[str, Any] = {
        "enabled": tracer.enabled,
        "spans": len(spans),
        "dropped": tracer.dropped,
    }
    if spans:
        trace.update(aggregate_spans(spans))
    snapshot["trace"] = trace
    return snapshot


# ---------------------------------------------------------------------------
# Chrome trace_event JSON (chrome://tracing, Perfetto)
# ---------------------------------------------------------------------------

def spans_to_chrome_trace(spans: Iterable[Span],
                          process_name: str = "repro") -> Dict[str, Any]:
    """Render spans in the Chrome ``trace_event`` JSON *object format*.

    Every span becomes one complete (``"ph": "X"``) event: ``ts``/``dur``
    in integer microseconds on the span's ``tid`` lane (0 = the tracing
    process, worker pid for spans merged from the parallel engine,
    negative lanes for server-side spans shipped back per network
    connection).  Metadata events name the process and each lane.  The
    returned dict serializes directly with ``json.dump`` and loads
    unmodified in ``chrome://tracing`` and https://ui.perfetto.dev.
    """
    events: List[Dict[str, Any]] = []
    tids = set()
    for span in spans:
        tid = span.tid
        tids.add(tid)
        args: Dict[str, Any] = {key: value
                                for key, value in span.attrs.items()}
        args["self_us"] = int(span.self_seconds * 1e6)
        if span.error is not None:
            args["error"] = span.error
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": int(span.start * 1e6),
            "dur": max(1, int(span.duration * 1e6)),
            "pid": 1,
            "tid": tid,
            "args": args,
        })
    metadata: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": process_name},
    }]
    for tid in sorted(tids):
        if tid == 0:
            label = "main"
        elif tid < 0:
            label = f"conn-{-tid}"
        else:
            label = f"worker-{tid}"
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": label},
        })
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Span], path,
                       process_name: str = "repro") -> int:
    """Write the Chrome trace JSON; returns the number of span events."""
    trace = spans_to_chrome_trace(spans, process_name=process_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True, default=str)
    return sum(1 for event in trace["traceEvents"]
               if event["ph"] == "X")


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _prometheus_name(dotted: str, prefix: str) -> str:
    sanitized = "".join(
        char if char.isalnum() or char == "_" else "_"
        for char in dotted.replace(".", "_")
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized

#: Histogram-snapshot suffixes folded into one Prometheus family:
#: quantile keys become ``{quantile="..."}``-labelled summary samples,
#: count/total map to the summary's ``_count``/``_sum`` series.
_QUANTILE_SUFFIXES = {"p50": "0.5", "p95": "0.95", "p99": "0.99"}


def metrics_to_prometheus(metrics: Mapping[str, float],
                          prefix: str = "repro_") -> str:
    """Render a dotted-name snapshot in Prometheus text exposition.

    Histogram snapshot keys (``name.count/.total/.p50/...``) are folded
    into one summary family per histogram; everything else becomes an
    untyped gauge.  Names are sanitized (`.` → `_`) and prefixed.
    """
    summaries: Dict[str, Dict[str, float]] = {}
    scalars: Dict[str, float] = {}
    for name, value in metrics.items():
        base, _, suffix = name.rpartition(".")
        if base and suffix in ("count", "total", "min", "max", "mean",
                               "p50", "p95", "p99"):
            summaries.setdefault(base, {})[suffix] = value
        else:
            scalars[name] = value
    # A histogram snapshot always carries count+total+mean; a lone
    # ``foo.count`` counter is a scalar, not a summary.
    for base in list(summaries):
        if not {"count", "total", "mean"} <= set(summaries[base]):
            for suffix, value in summaries.pop(base).items():
                scalars[f"{base}.{suffix}"] = value
    lines: List[str] = []
    for name in sorted(scalars):
        metric = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prometheus_value(scalars[name])}")
    for base in sorted(summaries):
        family = _prometheus_name(base, prefix)
        values = summaries[base]
        lines.append(f"# TYPE {family} summary")
        for suffix, quantile in _QUANTILE_SUFFIXES.items():
            if suffix in values:
                lines.append(
                    f'{family}{{quantile="{quantile}"}} '
                    f"{_prometheus_value(values[suffix])}"
                )
        lines.append(f"{family}_sum {_prometheus_value(values['total'])}")
        lines.append(
            f"{family}_count {_prometheus_value(values['count'])}"
        )
        for extreme in ("min", "max"):
            if extreme in values:
                metric = f"{family}_{extreme}"
                lines.append(f"# TYPE {metric} gauge")
                lines.append(
                    f"{metric} {_prometheus_value(values[extreme])}"
                )
    return "\n".join(lines) + "\n"


def _prometheus_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def write_prometheus(metrics: Mapping[str, float], path,
                     prefix: str = "repro_") -> int:
    """Write the text exposition dump; returns the line count."""
    text = metrics_to_prometheus(metrics, prefix=prefix)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text.count("\n")


def _format_seconds(seconds: float) -> str:
    if seconds >= 1:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} µs"


def breakdown_table(spans: Iterable[Span],
                    by: str = "category") -> List[str]:
    """Render the per-phase time breakdown as aligned text lines.

    ``by="category"`` gives the crossing-vs-cloud-vs-crypto split;
    ``by="name"`` the finer per-instrumentation-point table.  Rows are
    sorted by self time, descending; the share column is each row's self
    time over the summed self time (i.e. of the traced wall clock).
    """
    summary = aggregate_spans(spans)
    if by == "category":
        rows_data = summary["categories"]
        headers = ["category", "count", "total", "self", "p50", "p95",
                   "share"]
    elif by == "name":
        rows_data = summary["names"]
        headers = ["span", "count", "total", "self", "p50", "p95",
                   "share"]
    else:
        raise ValidationError(f"unknown breakdown axis {by!r}")
    grand_self = sum(row["self_s"] for row in rows_data.values()) or 1.0
    rows = [
        [key, str(int(row["count"])), _format_seconds(row["total_s"]),
         _format_seconds(row["self_s"]),
         _format_seconds(row["p50_s"]), _format_seconds(row["p95_s"]),
         f"{100.0 * row['self_s'] / grand_self:.1f}%"]
        for key, row in sorted(rows_data.items(),
                               key=lambda item: -item[1]["self_s"])
    ]
    if not rows:
        return ["(no spans recorded — is telemetry enabled?)"]
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i])
                               for i, c in enumerate(row)))
    if summary["errors"]:
        lines.append(f"({summary['errors']} span(s) closed on an exception)")
    return lines


def format_metrics(metrics: Mapping[str, float]) -> List[str]:
    """Aligned ``name  value`` lines for a dotted-name metric snapshot."""
    if not metrics:
        return ["(no metrics)"]
    width = max(len(name) for name in metrics)
    lines = []
    for name in sorted(metrics):
        value = metrics[name]
        if isinstance(value, float) and not value.is_integer():
            rendered = f"{value:.6f}"
        else:
            rendered = str(int(value))
        lines.append(f"{name.ljust(width)}  {rendered}")
    return lines
