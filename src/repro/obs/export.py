"""Trace and metric exporters: JSONL dumps, aggregates, breakdown tables.

Three consumers, three formats:

* machine post-processing — :func:`spans_to_jsonl` / :func:`write_jsonl`
  emit one JSON object per span (``id``, ``parent``, ``name``,
  ``category``, ``depth``, ``start``, ``duration``, ``self``, ``error``,
  ``attrs``);
* programmatic snapshots — :func:`aggregate_spans` rolls spans up into
  per-category and per-name totals (count / total seconds / self
  seconds), and :func:`telemetry_snapshot` combines that with the merged
  metric sources into the dict ``System.telemetry()`` returns;
* humans — :func:`breakdown_table` renders the crossing-vs-cloud-vs-
  crypto split the Fig. 7/8 reports and ``repro replay --telemetry``
  print.

Self time is the aggregation currency: a crypto kernel runs *inside* an
enclave crossing which runs *inside* a replayed operation, so summing
durations per category would triple-count.  Self seconds (duration minus
child-span time) partition the wall clock exactly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.obs.metrics import MetricSource, merge_snapshots
from repro.obs.spans import Span, Tracer


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, in span-completion order."""
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True)
                     for span in spans)


def write_jsonl(spans: Iterable[Span], path) -> int:
    """Write the JSONL trace dump; returns the number of spans written."""
    rows = [json.dumps(span.to_dict(), sort_keys=True) for span in spans]
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(row + "\n")
    return len(rows)


def aggregate_spans(spans: Iterable[Span]) -> Dict[str, Any]:
    """Roll spans up into per-category and per-name summaries.

    Returns ``{"categories": {cat: {count, total_s, self_s}},
    "names": {name: {count, total_s, self_s, max_s}}, "errors": n}``.
    ``self_s`` sums to total traced wall time across categories.
    """
    categories: Dict[str, Dict[str, float]] = {}
    names: Dict[str, Dict[str, float]] = {}
    errors = 0
    for span in spans:
        if span.error is not None:
            errors += 1
        cat = categories.setdefault(
            span.category, {"count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        cat["count"] += 1
        cat["total_s"] += span.duration
        cat["self_s"] += span.self_seconds
        name = names.setdefault(
            span.name,
            {"count": 0, "total_s": 0.0, "self_s": 0.0, "max_s": 0.0},
        )
        name["count"] += 1
        name["total_s"] += span.duration
        name["self_s"] += span.self_seconds
        name["max_s"] = max(name["max_s"], span.duration)
    return {"categories": categories, "names": names, "errors": errors}


def telemetry_snapshot(sources: Iterable[MetricSource] = (),
                       tracer: Optional[Tracer] = None) -> Dict[str, Any]:
    """The aggregated observability snapshot behind ``System.telemetry()``.

    ``{"metrics": {dotted name: value}, "trace": {"enabled", "spans",
    "dropped", "categories", "names", "errors"}}``.  The trace section
    summarizes whatever the tracer has collected so far (possibly from a
    now-disabled tracer — spans survive ``disable()``).
    """
    snapshot: Dict[str, Any] = {"metrics": merge_snapshots(sources)}
    if tracer is None:
        from repro.obs.spans import tracer as _global_tracer
        tracer = _global_tracer()
    spans = tracer.spans()
    trace: Dict[str, Any] = {
        "enabled": tracer.enabled,
        "spans": len(spans),
        "dropped": tracer.dropped,
    }
    if spans:
        trace.update(aggregate_spans(spans))
    snapshot["trace"] = trace
    return snapshot


def _format_seconds(seconds: float) -> str:
    if seconds >= 1:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} µs"


def breakdown_table(spans: Iterable[Span],
                    by: str = "category") -> List[str]:
    """Render the per-phase time breakdown as aligned text lines.

    ``by="category"`` gives the crossing-vs-cloud-vs-crypto split;
    ``by="name"`` the finer per-instrumentation-point table.  Rows are
    sorted by self time, descending; the share column is each row's self
    time over the summed self time (i.e. of the traced wall clock).
    """
    summary = aggregate_spans(spans)
    if by == "category":
        rows_data = summary["categories"]
        headers = ["category", "count", "total", "self", "share"]
    elif by == "name":
        rows_data = summary["names"]
        headers = ["span", "count", "total", "self", "share"]
    else:
        raise ValueError(f"unknown breakdown axis {by!r}")
    grand_self = sum(row["self_s"] for row in rows_data.values()) or 1.0
    rows = [
        [key, str(int(row["count"])), _format_seconds(row["total_s"]),
         _format_seconds(row["self_s"]),
         f"{100.0 * row['self_s'] / grand_self:.1f}%"]
        for key, row in sorted(rows_data.items(),
                               key=lambda item: -item[1]["self_s"])
    ]
    if not rows:
        return ["(no spans recorded — is telemetry enabled?)"]
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i])
                               for i, c in enumerate(row)))
    if summary["errors"]:
        lines.append(f"({summary['errors']} span(s) closed on an exception)")
    return lines


def format_metrics(metrics: Mapping[str, float]) -> List[str]:
    """Aligned ``name  value`` lines for a dotted-name metric snapshot."""
    if not metrics:
        return ["(no metrics)"]
    width = max(len(name) for name in metrics)
    lines = []
    for name in sorted(metrics):
        value = metrics[name]
        if isinstance(value, float) and not value.is_integer():
            rendered = f"{value:.6f}"
        else:
            rendered = str(int(value))
        lines.append(f"{name.ljust(width)}  {rendered}")
    return lines
