"""Namespaced counters and histograms behind one ``MetricSource`` protocol.

Every component that accounts for *where time and bytes go* — the enclave
boundary, the cloud store, the administrator, clients, replay engines —
keeps its numbers in a :class:`MetricRegistry` of dotted-name metrics
(``sgx.crossings``, ``cloud.bytes_out``, ``admin.plans_committed``, …).
The registry is the single authoritative store; the historical per-
component metric objects (``CrossingMeter``, ``CloudMetrics``,
``AdminMetrics``) survive as thin shims whose attributes read and write
registry counters through :class:`CounterField`, so every pre-existing
call site keeps working unchanged.

The consumer-facing contract is :class:`MetricSource`: anything with
``snapshot() -> {dotted name: value}`` and ``reset()``.  Registries
implement it natively; ``repro.obs.merge_snapshots`` combines many
sources into the one flat mapping that ``System.telemetry()`` and the
benchmark harness read.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Mapping, \
    Optional, Protocol, Sequence, Tuple, runtime_checkable


@runtime_checkable
class MetricSource(Protocol):
    """The common face of every metric surface in the package."""

    def snapshot(self) -> Mapping[str, float]:
        """Current values keyed by dotted metric name."""
        ...

    def reset(self) -> None:
        """Zero all values (gauges, being derived, are unaffected)."""
        ...


class Counter:
    """A monotonically adjustable scalar (ints or floats)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def add(self, amount: float = 1) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


def quantile_from_samples(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of a sample list (0 <= q <= 1)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class Histogram:
    """Streaming summary of an observed distribution.

    Exact aggregates (``count/total/min/max/mean``) are maintained for
    every observation; quantiles (``p50/p95/p99``) come from a *bounded
    reservoir* (Vitter's algorithm R, deterministic per histogram name)
    so memory stays O(:attr:`RESERVOIR_SIZE`) however many values are
    observed.  Below the reservoir bound the quantiles are exact.
    """

    RESERVOIR_SIZE = 256

    __slots__ = ("name", "count", "total", "min", "max",
                 "_reservoir", "_reservoir_size", "_rand")

    def __init__(self, name: str,
                 reservoir_size: int = RESERVOIR_SIZE) -> None:
        self.name = name
        self._reservoir_size = reservoir_size
        self.reset()

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rand.randrange(self.count)
            if slot < self._reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Reservoir estimate of the ``q``-quantile (exact while the
        observation count is within the reservoir bound)."""
        return quantile_from_samples(self._reservoir, q)

    def samples(self) -> List[float]:
        """The current reservoir contents (a uniform sample of all
        observations), unordered."""
        return list(self._reservoir)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        The exact aggregates (count/total/min/max) merge exactly; the
        reservoir absorbs the other's samples through :meth:`observe`-
        style replacement weighted by the combined count, so quantiles
        stay an unbiased estimate of the union.  Used to combine the
        same metric across many registries — e.g. every client's
        ``client.sync.seconds`` into one fleet-wide distribution for
        the scale suite's report.
        """
        if other.count == 0:
            return
        self.total += other.total
        if self.min is None or (other.min is not None
                                and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None
                                and other.max > self.max):
            self.max = other.max
        for value in other.samples():
            self.count += 1
            if len(self._reservoir) < self._reservoir_size:
                self._reservoir.append(value)
            else:
                slot = self._rand.randrange(self.count)
                if slot < self._reservoir_size:
                    self._reservoir[slot] = value
        # Observations the other histogram saw but no longer holds in
        # its reservoir still count toward the aggregate total.
        self.count += max(0, other.count - len(other.samples()))

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir: List[float] = []
        # Deterministic per-name stream: snapshots are reproducible for
        # a fixed observation sequence (the bench gate relies on this).
        self._rand = random.Random(f"histogram:{self.name}")

    def snapshot(self) -> Dict[str, float]:
        return {
            f"{self.name}.count": self.count,
            f"{self.name}.total": self.total,
            f"{self.name}.min": self.min or 0.0,
            f"{self.name}.max": self.max or 0.0,
            f"{self.name}.mean": self.mean,
            f"{self.name}.p50": self.quantile(0.50),
            f"{self.name}.p95": self.quantile(0.95),
            f"{self.name}.p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return (f"Histogram({self.name}: n={self.count}, "
                f"total={self.total:.6f})")


class SloWindow:
    """Rolling last-``size`` observations of (latency, outcome).

    The operator-facing complement to :class:`Histogram`: where the
    histogram summarises *everything since reset* with a reservoir, the
    SLO window answers "how is the server doing *right now*" — exact
    p50/p95/p99 latency and error rate over the most recent ``size``
    requests, plus lifetime totals.  The server keeps one per wire
    method and one for all traffic combined; ``stats``/``health``
    responses and the chaos/scale reports embed :meth:`snapshot`.
    """

    DEFAULT_SIZE = 256

    __slots__ = ("name", "count", "errors", "_window")

    def __init__(self, name: str, size: int = DEFAULT_SIZE) -> None:
        self.name = name
        self.count = 0       # lifetime observations
        self.errors = 0      # lifetime error outcomes
        self._window: Deque[Tuple[float, bool]] = deque(maxlen=size)

    def observe(self, latency_ms: float, ok: bool = True) -> None:
        self.count += 1
        if not ok:
            self.errors += 1
        self._window.append((latency_ms, ok))

    @property
    def window_size(self) -> int:
        return len(self._window)

    @property
    def error_rate(self) -> float:
        """Fraction of errored requests within the current window."""
        if not self._window:
            return 0.0
        bad = sum(1 for _, ok in self._window if not ok)
        return bad / len(self._window)

    def snapshot(self) -> Dict[str, float]:
        latencies = [latency for latency, _ in self._window]
        return {
            "count": self.count,
            "errors": self.errors,
            "window": len(self._window),
            "error_rate": round(self.error_rate, 6),
            "p50_ms": round(quantile_from_samples(latencies, 0.50), 3),
            "p95_ms": round(quantile_from_samples(latencies, 0.95), 3),
            "p99_ms": round(quantile_from_samples(latencies, 0.99), 3),
            "max_ms": round(max(latencies), 3) if latencies else 0.0,
        }

    def reset(self) -> None:
        self.count = 0
        self.errors = 0
        self._window.clear()

    def __repr__(self) -> str:
        return (f"SloWindow({self.name}: n={self.count}, "
                f"errors={self.errors}, window={len(self._window)})")


class MetricRegistry:
    """A namespace of counters, histograms and derived gauges.

    Metric names are dotted (``sgx.crossings``); an optional ``prefix``
    is prepended to every name created through this registry, letting a
    component own a sub-namespace without repeating itself.
    """

    def __init__(self, prefix: str = "") -> None:
        self._prefix = f"{prefix}." if prefix and not prefix.endswith(".") \
            else prefix
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}

    def _qualify(self, name: str) -> str:
        return self._prefix + name

    def counter(self, name: str) -> Counter:
        """Get-or-create the counter at ``name`` (idempotent)."""
        name = self._qualify(name)
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        """Get-or-create the histogram at ``name`` (idempotent)."""
        name = self._qualify(name)
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a derived metric evaluated at snapshot time."""
        self._gauges[self._qualify(name)] = fn

    # -- MetricSource ---------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            name: counter.value for name, counter in self._counters.items()
        }
        for histogram in self._histograms.values():
            out.update(histogram.snapshot())
        for name, fn in self._gauges.items():
            out[name] = fn()
        return out

    def counters_snapshot(self) -> Dict[str, float]:
        """Counter values only (no histograms, no gauges).

        This is the *mergeable* subset: a worker process can snapshot it
        before and after a task and ship the difference back for
        :func:`repro.obs.collect.merge_task_telemetry` to add into the
        parent's registries (gauges are derived and histograms are not
        delta-composable, so neither crosses the process boundary).
        """
        return {name: counter.value
                for name, counter in self._counters.items()}

    def add_counter_deltas(self, deltas: Mapping[str, float]) -> None:
        """Add per-counter increments (a worker's task-local activity)
        into this registry.  Unknown names create their counter."""
        for name, delta in deltas.items():
            if delta:
                self._counters.setdefault(name, Counter(name)).add(delta)

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    def names(self) -> Iterable[str]:
        return sorted({*self._counters, *self._histograms, *self._gauges})

    def __contains__(self, name: str) -> bool:
        return (name in self._counters or name in self._histograms
                or name in self._gauges)

    def __repr__(self) -> str:
        return (f"MetricRegistry({len(self._counters)} counters, "
                f"{len(self._histograms)} histograms, "
                f"{len(self._gauges)} gauges)")


class CounterField:
    """Descriptor exposing a registry counter as a plain numeric attribute.

    The deprecation-shim mechanism: legacy metric classes declare

    ``requests = CounterField("cloud.requests")``

    and existing call sites (``metrics.requests += 1``, benchmark reads)
    keep working while the value itself lives in ``obj.registry`` — the
    consolidated :class:`MetricRegistry` that telemetry snapshots read.
    The owning object must expose that registry as ``registry``.
    """

    __slots__ = ("metric_name",)

    def __init__(self, metric_name: str) -> None:
        self.metric_name = metric_name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj.registry.counter(self.metric_name).value

    def __set__(self, obj, value) -> None:
        obj.registry.counter(self.metric_name).set(value)


def merge_snapshots(sources: Iterable[MetricSource]) -> Dict[str, float]:
    """Flatten several sources into one dotted-name mapping.

    Later sources win on (unexpected) name collisions, matching plain
    ``dict.update`` semantics.
    """
    merged: Dict[str, float] = {}
    for source in sources:
        merged.update(source.snapshot())
    return merged
