"""Hierarchical spans: where the time goes, boundary by boundary.

A :class:`Span` is a context manager timing one region of interest —
an enclave crossing, a cloud round trip, a crypto kernel, one replayed
operation.  Spans nest: the tracer keeps a stack, so each span knows its
parent and its *self time* (duration minus time spent in child spans),
which is what makes per-category breakdowns sum without double counting
even though crypto kernels run inside enclave crossings.

Tracing is off by default and the disabled path is near-free:
``Tracer.span(...)`` returns a shared no-op singleton without allocating
anything, so instrumented hot paths (``pairing.pair``, the cloud store,
ecall dispatch) cost one method call and one dict build when telemetry
is off.  ``force=True`` spans always *time* (callers that need the
duration, e.g. the replay engine) but are only *recorded* while the
tracer is enabled.

One module-level tracer (:func:`tracer`) is shared by all instrumented
components, so a single ``enable()`` — or the ``REPRO_TELEMETRY=1``
environment variable, or ``repro replay --telemetry`` — turns the whole
system's trace on.  The buffer is bounded; overflow increments
``dropped`` rather than growing without limit.
"""

from __future__ import annotations

import itertools
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricRegistry


class _NullSpan:
    """Shared no-op span: the disabled-mode fast path."""

    __slots__ = ()

    duration = 0.0
    self_seconds = 0.0
    name = ""
    category = None
    error = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __repr__(self) -> str:
        return "<null span>"


NULL_SPAN = _NullSpan()


def new_trace_id() -> str:
    """A fresh 64-bit hex trace id.

    Trace ids exist purely for cross-process correlation (they ride the
    wire envelope's ``trace`` field and span attributes, never stored
    bytes), so OS randomness is fine here — it cannot perturb any
    deterministic digest.
    """
    return os.urandom(8).hex()


class Span:
    """One timed region; use as a context manager.

    Exception-safe: leaving the ``with`` block on a raise still closes
    the span (recording the exception type in :attr:`error`) and
    restores the tracer's stack.
    """

    __slots__ = ("tracer", "name", "category", "attrs", "span_id",
                 "parent_id", "depth", "start", "end", "children_seconds",
                 "error", "tid", "_record")

    def __init__(self, tracer: "Tracer", name: str,
                 category: Optional[str], attrs: Dict[str, Any],
                 record: bool) -> None:
        self.tracer = tracer
        self.name = name
        self.category = category or name.split(".", 1)[0]
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.start = 0.0
        self.end = 0.0
        self.children_seconds = 0.0
        self.error: Optional[str] = None
        #: Logical thread/process lane (0 = the tracing process itself;
        #: worker-side spans merged by ``obs.collect`` carry the worker
        #: pid so trace viewers render them on their own track).
        self.tid = 0
        self._record = record

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "Span":
        if self._record:
            self.tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.error = exc_type.__name__
        if self._record:
            self.tracer._pop(self)
        return None

    # -- data -----------------------------------------------------------------

    @property
    def duration(self) -> float:
        """Wall-clock seconds spent inside the span."""
        return self.end - self.start

    @property
    def self_seconds(self) -> float:
        """Duration minus time attributed to child spans."""
        return max(0.0, self.duration - self.children_seconds)

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (bytes moved, latency sampled, …)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (the JSONL exporter's row format)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "category": self.category,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
            "self": self.self_seconds,
            "error": self.error,
            "tid": self.tid,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, category={self.category!r}, "
                f"duration={self.duration:.6f})")


class Tracer:
    """Collects finished spans and maintains the active-span stack.

    Single-threaded by design, matching the simulation: the stack is a
    plain list, not a context variable.
    """

    DEFAULT_MAX_SPANS = 100_000

    def __init__(self, enabled: bool = False,
                 max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self._enabled = enabled
        self.max_spans = max_spans
        self._spans: List[Span] = []
        self._stack: List[Span] = []
        self._ids = itertools.count(1)
        #: Tracer-owned metric surface.  ``obs.spans.dropped`` makes
        #: buffer overflow visible in every metric snapshot (and hence
        #: ``telemetry_snapshot()``) instead of silently truncating the
        #: trace; ``obs.spans.buffered`` reports the live buffer size.
        self.registry = MetricRegistry()
        self._dropped = self.registry.counter("obs.spans.dropped")
        self.registry.gauge("obs.spans.buffered", lambda: len(self._spans))
        self._trace_id: Optional[str] = None

    @property
    def trace_id(self) -> str:
        """This tracer's distributed trace id (lazily generated).

        ``RemoteCloudStore`` stamps it into every propagated ``trace``
        context so server-side handler spans can be correlated back to
        the client trace that caused them.  Assign to pin a specific id
        (tests, replaying a known trace); :meth:`reset` clears it so a
        fresh capture gets a fresh identity.
        """
        if self._trace_id is None:
            self._trace_id = new_trace_id()
        return self._trace_id

    @trace_id.setter
    def trace_id(self, value: str) -> None:
        self._trace_id = value

    @property
    def dropped(self) -> int:
        """Spans discarded because the bounded buffer was full."""
        return int(self._dropped.value)

    # -- switches -------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- span creation --------------------------------------------------------

    def span(self, name: str, category: Optional[str] = None,
             force: bool = False, **attrs: Any):
        """Open a span; returns a context manager.

        Disabled and not ``force``: returns the shared no-op singleton
        (no allocation, no timing).  ``force=True`` always returns a real
        timed :class:`Span`, but it is recorded into the trace only while
        the tracer is enabled.
        """
        if not self._enabled:
            if not force:
                return NULL_SPAN
            return Span(self, name, category, attrs, record=False)
        return Span(self, name, category, attrs, record=True)

    # -- stack maintenance (called by Span) -----------------------------------

    def _push(self, span: Span) -> None:
        span.span_id = next(self._ids)
        if self._stack:
            parent = self._stack[-1]
            span.parent_id = parent.span_id
            span.depth = parent.depth + 1
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate a corrupted stack (a span closed out of order) rather
        # than poisoning unrelated instrumentation.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            self._stack.remove(span)
        if self._stack:
            self._stack[-1].children_seconds += span.duration
        if len(self._spans) < self.max_spans:
            self._spans.append(span)
        else:
            self._dropped.add()

    # -- adoption (cross-process merge) ---------------------------------------

    def next_id(self) -> int:
        """Allocate a span id (used when adopting foreign spans)."""
        return next(self._ids)

    def adopt(self, span: Span) -> bool:
        """Append an already-finished span (e.g. one reconstructed from a
        worker process) to the buffer, honouring the bound.  The caller
        is responsible for id assignment via :meth:`next_id`.  Returns
        whether the span was kept."""
        if len(self._spans) < self.max_spans:
            self._spans.append(span)
            return True
        self._dropped.add()
        return False

    def current_span(self) -> Optional[Span]:
        """The innermost active (open) span, if any.

        Safe to call from another thread (the sampling profiler reads
        this): list indexing is atomic under the GIL and a concurrent
        pop degrades to returning ``None``.
        """
        try:
            return self._stack[-1]
        except IndexError:
            return None

    # -- access ---------------------------------------------------------------

    def spans(self) -> List[Span]:
        """Finished spans in completion order."""
        return list(self._spans)

    def reset(self) -> None:
        """Drop collected spans (the enabled flag is untouched)."""
        self._spans.clear()
        self._stack.clear()
        self._dropped.reset()
        self._ids = itertools.count(1)
        self._trace_id = None

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:
        state = "enabled" if self._enabled else "disabled"
        return f"Tracer({state}, {len(self._spans)} spans)"


#: The process-wide tracer every instrumented component reports to.
#: ``REPRO_TELEMETRY=1`` in the environment switches it on at import time
#: (the hook the CI telemetry smoke step uses).
_GLOBAL_TRACER = Tracer(
    enabled=os.environ.get("REPRO_TELEMETRY", "") not in ("", "0")
)


def tracer() -> Tracer:
    """The global tracer instance."""
    return _GLOBAL_TRACER


def span(name: str, category: Optional[str] = None, force: bool = False,
         **attrs: Any):
    """Open a span on the global tracer (the instrumentation entry point)."""
    t = _GLOBAL_TRACER
    if not t._enabled and not force:
        return NULL_SPAN
    return t.span(name, category, force=force, **attrs)


def enable() -> None:
    _GLOBAL_TRACER.enable()


def disable() -> None:
    _GLOBAL_TRACER.disable()


def current_span() -> Optional[Span]:
    """The global tracer's innermost active span (``None`` when idle or
    disabled) — what the sampling profiler attributes samples to."""
    return _GLOBAL_TRACER.current_span()


@contextmanager
def use_tracer(replacement: Tracer):
    """Temporarily install ``replacement`` as the global tracer.

    The cross-process collection shell runs each worker-side task under
    a fresh enabled tracer: a forked worker inherits the parent's global
    tracer — including its already-collected spans — so recording into
    the inherited object would duplicate parent spans in every task
    payload.  Swapping keeps task capture exact and self-contained.
    """
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = replacement
    try:
        yield replacement
    finally:
        _GLOBAL_TRACER = previous


@contextmanager
def enabled():
    """Enable global tracing for a ``with`` block, restoring the previous
    state (and keeping collected spans) on exit."""
    was = _GLOBAL_TRACER.enabled
    _GLOBAL_TRACER.enable()
    try:
        yield _GLOBAL_TRACER
    finally:
        if not was:
            _GLOBAL_TRACER.disable()
