"""Stdlib sampling profiler attributed to the active span tree.

Instrumenting every function in a long enclave ecall is neither feasible
nor honest (the probes would dominate toy-parameter arithmetic).  A
*sampling* profiler gets the same flame-style attribution for free: a
background thread wakes ``hz`` times a second, grabs the profiled
thread's current Python frame via :func:`sys._current_frames`, and files
the sample under

* the **innermost active span** of the tracer (``tracer.current_span()``
  — reading one list tail under the GIL, no lock), and
* the frame's innermost application function(s),

so a report reads "inside ``enclave.build_partitions``, 72 % of samples
sit in ``fp2_mul``" without a single probe in the arithmetic.  Output
comes in three shapes: dotted ``profile.*`` metrics (a
:class:`~repro.obs.metrics.MetricSource` like every other surface),
ranked report lines, and ``collapsed()`` folded stacks in the format
flamegraph tools ingest.

The sampler is cooperative and approximate by design — it never touches
the profiled thread, so the overhead is one dict update per sample.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricRegistry
from repro.obs.spans import Tracer, tracer as _global_tracer
from repro.errors import ValidationError

#: Frames from these modules are scaffolding, not workload; they are
#: skipped when picking the representative function of a sample.
_SKIP_MODULES = ("repro/obs/", "threading.py")

DEFAULT_HZ = 97  # prime, so sampling cannot alias a periodic workload


def _frame_functions(frame, limit: int) -> List[str]:
    """Innermost-first ``module.function`` labels of a stack."""
    labels: List[str] = []
    while frame is not None and len(labels) < limit:
        code = frame.f_code
        filename = code.co_filename.replace("\\", "/")
        if not any(part in filename for part in _SKIP_MODULES):
            module = filename.rsplit("/", 1)[-1].removesuffix(".py")
            labels.append(f"{module}.{code.co_name}")
        frame = frame.f_back
    return labels


class SamplingProfiler:
    """Thread-based statistical profiler with span attribution.

    >>> profiler = SamplingProfiler(hz=200)
    >>> with profiler:
    ...     workload()
    >>> profiler.top()          # [(span, function, samples), ...]

    ``registry`` (default: a private one) carries ``profile.samples``,
    ``profile.hz`` and per-span ``profile.span.<name>`` counters; read
    :meth:`counts` / :meth:`collapsed` for the full distribution.
    """

    def __init__(self, hz: int = DEFAULT_HZ,
                 tracer: Optional[Tracer] = None,
                 registry: Optional[MetricRegistry] = None,
                 stack_depth: int = 12) -> None:
        if hz < 1:
            raise ValidationError(f"sampling rate must be >= 1 Hz, got {hz}")
        self.hz = hz
        self.stack_depth = stack_depth
        self._tracer = tracer
        self.registry = registry if registry is not None else MetricRegistry()
        self._samples = self.registry.counter("profile.samples")
        self.registry.gauge("profile.hz", lambda: self.hz)
        #: (span name, innermost function) -> sample count.
        self._counts: Dict[Tuple[str, str], int] = {}
        #: folded "span;outer;...;inner" stack -> sample count.
        self._stacks: Dict[str, int] = {}
        self._target_ident: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Begin sampling the *calling* thread."""
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling (idempotent); collected samples are kept."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the sampler thread --------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        tracer = self._tracer if self._tracer is not None \
            else _global_tracer()
        while not self._stop.wait(interval):
            frame = sys._current_frames().get(self._target_ident)
            if frame is None:
                continue
            span = tracer.current_span()
            span_name = span.name if span is not None else "(no span)"
            functions = _frame_functions(frame, self.stack_depth)
            inner = functions[0] if functions else "(unknown)"
            key = (span_name, inner)
            self._counts[key] = self._counts.get(key, 0) + 1
            folded = ";".join([span_name, *reversed(functions)])
            self._stacks[folded] = self._stacks.get(folded, 0) + 1
            self._samples.add()
            self.registry.counter(
                f"profile.span.{span_name}"
            ).add()

    # -- results -------------------------------------------------------------

    @property
    def sample_count(self) -> int:
        return int(self._samples.value)

    def counts(self) -> Dict[Tuple[str, str], int]:
        """``{(span name, innermost function): samples}``."""
        return dict(self._counts)

    def top(self, n: int = 10) -> List[Tuple[str, str, int]]:
        """The ``n`` hottest (span, function) pairs, descending."""
        ranked = sorted(self._counts.items(), key=lambda item: -item[1])
        return [(span, fn, count) for (span, fn), count in ranked[:n]]

    def collapsed(self) -> List[str]:
        """Folded-stack lines (``span;outer;...;inner count``) in the
        format consumed by flamegraph.pl / speedscope / inferno."""
        return [f"{stack} {count}"
                for stack, count in sorted(self._stacks.items())]

    def report_lines(self, n: int = 10) -> List[str]:
        """Human-readable ranked attribution table."""
        total = self.sample_count
        if not total:
            return ["(no samples collected — was the profiled section "
                    "long enough for the sampling rate?)"]
        lines = [f"{total} samples at {self.hz} Hz "
                 f"(~{total / self.hz:.2f}s profiled)"]
        for span, fn, count in self.top(n):
            share = 100.0 * count / total
            lines.append(f"  {share:5.1f}%  {span}  ·  {fn}")
        return lines

    def reset(self) -> None:
        self._counts.clear()
        self._stacks.clear()
        self.registry.reset()

    def __repr__(self) -> str:
        state = "running" if self._thread is not None else "stopped"
        return (f"SamplingProfiler({self.hz} Hz, {state}, "
                f"{self.sample_count} samples)")


class _ProfileContext:
    """Re-entrant helper behind :func:`profile`."""

    def __init__(self, hz: int) -> None:
        self.profiler = SamplingProfiler(hz=hz)

    def __enter__(self) -> SamplingProfiler:
        return self.profiler.start()

    def __exit__(self, *exc_info) -> None:
        self.profiler.stop()


def profile(hz: int = DEFAULT_HZ) -> _ProfileContext:
    """``with profile(hz) as profiler: ...`` — sample the block."""
    return _ProfileContext(hz)
