"""Cross-process telemetry collection: capture in workers, merge in the
parent.

The parallel engine (:mod:`repro.par`) ships task kernels to worker
processes.  Spans those kernels open — and counters they bump — land in
the *worker's* interpreter, which the parent's tracer never sees; before
this module existed, a traced run at ``workers=4`` silently under-
reported exactly the parallel work it was meant to explain.  The fix is
a capture/merge pair:

* worker side — :func:`capture_task` runs one task under a fresh,
  enabled :class:`~repro.obs.spans.Tracer` (installed as the process
  global for the duration, so every instrumented call inside the kernel
  records into it) wrapped in a ``par.task`` root span, and snapshots
  the counter deltas of every registry registered via
  :func:`register_worker_source`.  The result is a compact, picklable
  payload riding back with the task result;
* parent side — :func:`merge_task_telemetry` splices the payload's
  spans into the parent tracer (:func:`merge_traces`, with fresh ids
  and the worker pid as the span ``tid`` so trace viewers draw worker
  lanes) and adds the counter deltas into the matching parent
  registries.

A serial run (``workers=1``) opens the same ``par.task`` span inline,
so the span *name multiset* of a traced operation is identical at any
worker count — the invariant the cross-process merge tests pin down.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricRegistry
from repro.obs.spans import Span, Tracer, tracer as _global_tracer, \
    use_tracer

#: Registries whose counters worker processes may touch (process-wide
#: module state such as ``repro.ec.precomp_registry``).  Owning modules
#: register here at import time; both the parent and the forked worker
#: therefore hold the same list, which is what lets the merge route a
#: delta back to the registry it came from.
_WORKER_SOURCES: List[MetricRegistry] = []


def register_worker_source(registry: MetricRegistry) -> MetricRegistry:
    """Mark a process-wide registry's counters as capture/merge eligible.

    Idempotent; returns the registry for decorator-style use.
    """
    if registry not in _WORKER_SOURCES:
        _WORKER_SOURCES.append(registry)
    return registry


def worker_sources() -> List[MetricRegistry]:
    return list(_WORKER_SOURCES)


class TaskCapture:
    """Context manager recording one worker-side task's telemetry.

    After the ``with`` block, :attr:`duration` holds the task's wall
    time and :meth:`payload` the picklable span/counter bundle (``None``
    when there is nothing to ship).
    """

    def __init__(self, kernel: str) -> None:
        self.kernel = kernel
        self.duration = 0.0
        self._tracer = Tracer(enabled=True)
        self._root: Optional[Span] = None
        self._before: Dict[str, float] = {}
        self._swap = None
        self._start = 0.0

    def __enter__(self) -> "TaskCapture":
        for source in _WORKER_SOURCES:
            self._before.update(source.counters_snapshot())
        self._swap = use_tracer(self._tracer)
        self._swap.__enter__()
        self._root = self._tracer.span("par.task", kernel=self.kernel)
        self._root.__enter__()
        self._start = self._root.start
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._root.__exit__(exc_type, exc, tb)
        self.duration = self._root.duration
        self._swap.__exit__(exc_type, exc, tb)
        return None

    def payload(self) -> Optional[Dict[str, Any]]:
        """The picklable capture: span rows + counter deltas + pid."""
        deltas: Dict[str, float] = {}
        for source in _WORKER_SOURCES:
            for name, value in source.counters_snapshot().items():
                delta = value - self._before.get(name, 0)
                if delta:
                    deltas[name] = delta
        spans = [span.to_dict() for span in self._tracer.spans()]
        if not spans and not deltas:
            return None
        return {"pid": os.getpid(), "spans": spans, "counters": deltas,
                "dropped": self._tracer.dropped}


def capture_task(kernel: str) -> TaskCapture:
    """Open a :class:`TaskCapture` for one kernel invocation."""
    return TaskCapture(kernel)


def merge_traces(target: Tracer, span_rows: List[Dict[str, Any]],
                 tid: int = 0) -> int:
    """Reconstruct serialized span rows into ``target``.

    Ids are re-allocated from the target's counter (worker ids restart
    at 1 per task and would collide); parent links *within* the payload
    are preserved, and payload roots are attached under the target's
    currently-open span — whose ``children_seconds`` absorbs their
    duration, so per-category self-time totals match a serial run
    instead of double-counting worker wall-clock.  Returns the number
    of spans kept (buffer overflow counts into ``obs.spans.dropped``).
    """
    # Ids first: rows arrive in completion order, so a child's row
    # precedes its parent's — parent links must resolve against the
    # full payload, not the prefix seen so far.
    id_map: Dict[int, int] = {
        row["id"]: target.next_id() for row in span_rows
        if row.get("id") is not None
    }
    active = target.current_span()
    kept = 0
    for row in span_rows:
        span = Span(target, row["name"], row["category"],
                    dict(row.get("attrs") or {}), record=False)
        span.span_id = id_map.get(row.get("id"), 0) or target.next_id()
        span.start = row["start"]
        span.end = row["start"] + row["duration"]
        span.children_seconds = max(0.0, row["duration"] - row["self"])
        span.error = row.get("error")
        span.tid = tid if tid else row.get("tid", 0)
        parent = row.get("parent")
        if parent is not None and parent in id_map:
            span.parent_id = id_map[parent]
            span.depth = row.get("depth", 0)
        elif active is not None:
            # A payload root: hang it off the span that dispatched the
            # task so the tree stays connected across the process gap.
            span.parent_id = active.span_id
            span.depth = active.depth + 1
            active.children_seconds += span.duration
        if target.adopt(span):
            kept += 1
    return kept


def merge_task_telemetry(payload: Optional[Dict[str, Any]],
                         target: Optional[Tracer] = None) -> int:
    """Fold one task's capture payload into this process.

    Spans go to ``target`` (default: the global tracer); counter deltas
    go to whichever registered worker-source registry owns the metric
    name (unknown names are dropped — a worker cannot invent parent
    state).  Worker-side buffer overflow is carried over into the
    parent's ``obs.spans.dropped`` so truncation stays visible after
    the merge.  Returns the number of spans merged.
    """
    if not payload:
        return 0
    if target is None:
        target = _global_tracer()
    for _ in range(int(payload.get("dropped", 0))):
        target.registry.counter("obs.spans.dropped").add()
    deltas = payload.get("counters") or {}
    if deltas:
        remaining = dict(deltas)
        for source in _WORKER_SOURCES:
            owned = {name: value for name, value in remaining.items()
                     if name in source}
            if owned:
                source.add_counter_deltas(owned)
                for name in owned:
                    remaining.pop(name)
    return merge_traces(target, payload.get("spans") or [],
                        tid=int(payload.get("pid", 0)))
