"""Software SGX substrate.

The paper relies on four SGX capabilities; each has a faithful software
equivalent here, preserving the *protocol-level* behaviour the scheme needs:

=====================  =======================================================
SGX capability          Substrate module
=====================  =======================================================
Isolated execution      :mod:`repro.sgx.enclave` — data crosses the trust
                        boundary only through registered ecalls/ocalls; secret
                        attributes live behind the boundary object.
EPC memory accounting   :mod:`repro.sgx.epc` — 128 MiB limit, page-granular
                        residency, paging penalties (the §III-B argument for
                        minimizing in-enclave metadata).
Sealing                 :mod:`repro.sgx.sealing` — AES-256-GCM under a key
                        derived from (device fuse key, measurement).
Attestation             :mod:`repro.sgx.quote`, :mod:`repro.sgx.ias`,
                        :mod:`repro.sgx.auditor`, :mod:`repro.sgx.attestation`
                        — quotes, a simulated Intel Attestation Service, the
                        Auditor/CA, and the Fig. 3 provisioning flow.
=====================  =======================================================
"""

from repro.sgx.attestation import (
    mutual_attest,
    provision_master_secret,
    provision_user_key,
    setup_trust,
)
from repro.sgx.auditor import Auditor, EnclaveCertificate
from repro.sgx.device import SgxDevice
from repro.sgx.enclave import (
    CrossingMeter,
    Enclave,
    EnclaveHandle,
    EcallRegistry,
    ResultRef,
    ecall,
    trusted_view,
)
from repro.sgx.epc import EpcModel, EpcStats
from repro.sgx.ias import IntelAttestationService
from repro.sgx.quote import Quote

__all__ = [
    "SgxDevice",
    "Enclave",
    "EnclaveHandle",
    "EcallRegistry",
    "CrossingMeter",
    "ResultRef",
    "trusted_view",
    "ecall",
    "EpcModel",
    "EpcStats",
    "Quote",
    "IntelAttestationService",
    "Auditor",
    "EnclaveCertificate",
    "setup_trust",
    "provision_user_key",
    "mutual_attest",
    "provision_master_secret",
]
