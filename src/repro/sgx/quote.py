"""SGX quotes.

A quote binds an enclave's measurement and 64 bytes of enclave-chosen
report data (here: the hash of the enclave's freshly generated public key)
to a signature by the device's attestation key, whose provenance the
(simulated) Intel Attestation Service vouches for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AttestationError

REPORT_DATA_SIZE = 64


@dataclass(frozen=True)
class Quote:
    measurement: bytes      # 32 bytes (MRENCLAVE)
    report_data: bytes      # 64 bytes of enclave-chosen data
    device_id: str          # platform identifier (EPID group surrogate)
    signature: bytes        # by the device attestation key

    def signed_payload(self) -> bytes:
        return quote_payload(self.measurement, self.report_data,
                             self.device_id)


def quote_payload(measurement: bytes, report_data: bytes,
                  device_id: str) -> bytes:
    if len(measurement) != 32:
        raise AttestationError("measurement must be 32 bytes")
    if len(report_data) != REPORT_DATA_SIZE:
        raise AttestationError(f"report data must be {REPORT_DATA_SIZE} bytes")
    return (
        b"repro:quote:v1\x00" + measurement + report_data
        + device_id.encode("utf-8")
    )
