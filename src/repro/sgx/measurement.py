"""Enclave measurement (MRENCLAVE equivalent).

On real SGX, MRENCLAVE is a SHA-256 over the enclave's initial pages and
layout.  In this substrate an enclave's identity is the Python class
implementing it plus a declared code version and configuration, hashed into
a 32-byte measurement.  Changing any of these (i.e. running different code)
changes the measurement, which is what the Auditor checks before certifying
an enclave (Fig. 3, step 2-3).
"""

from __future__ import annotations

import hashlib
import inspect
from typing import Mapping


def measure_enclave(enclave_class: type, version: str,
                    config: Mapping[str, object] | None = None) -> bytes:
    """Compute the 32-byte measurement of an enclave class.

    Includes the class's source code when available so that code edits are
    reflected in the measurement, like page contents are in MRENCLAVE.
    """
    hasher = hashlib.sha256()
    hasher.update(b"repro:mrenclave:v1\x00")
    hasher.update(enclave_class.__module__.encode("utf-8") + b"\x00")
    hasher.update(enclave_class.__qualname__.encode("utf-8") + b"\x00")
    hasher.update(version.encode("utf-8") + b"\x00")
    try:
        source = inspect.getsource(enclave_class)
    except (OSError, TypeError):
        source = ""
    hasher.update(source.encode("utf-8"))
    for key in sorted(config or {}):
        hasher.update(f"{key}={config[key]!r}\x00".encode("utf-8"))
    return hasher.digest()
