"""Data sealing.

SGX enclaves persist secrets by *sealing*: AES-GCM encryption under a key
derived from a device-fused secret and the enclave identity, so a sealed
blob can only be opened by the same enclave code on the same CPU
(MRENCLAVE policy) or by enclaves of the same vendor (MRSIGNER policy).

The IBBE-SGX enclave seals the master secret key and the group keys
(Algorithms 1 and 3: ``sealed_gk ← sgx_seal(gk)``) so they can live on
untrusted storage between invocations.
"""

from __future__ import annotations

from repro.crypto.kdf import hkdf
from repro.crypto.modes import gcm_decrypt, gcm_encrypt
from repro.crypto.rng import Rng
from repro.errors import AuthenticationError, SealingError
from repro.obs.spans import span as _span

POLICY_MRENCLAVE = "MRENCLAVE"
POLICY_MRSIGNER = "MRSIGNER"

_MAGIC = b"SGXSEAL1"


def derive_seal_key(device_key: bytes, identity: bytes, policy: str) -> bytes:
    """Sealing key = KDF(device fuse key, enclave identity, policy)."""
    if policy not in (POLICY_MRENCLAVE, POLICY_MRSIGNER):
        raise SealingError(f"unknown sealing policy {policy!r}")
    return hkdf(
        device_key, 32,
        salt=b"repro:seal:" + policy.encode("ascii"),
        info=identity,
    )


def seal(device_key: bytes, identity: bytes, plaintext: bytes, rng: Rng,
         policy: str = POLICY_MRENCLAVE, aad: bytes = b"") -> bytes:
    """Seal ``plaintext`` to the enclave identity.  Returns an opaque blob."""
    with _span("crypto.seal", bytes=len(plaintext)):
        key = derive_seal_key(device_key, identity, policy)
        nonce = rng.random_bytes(12)
        body = gcm_encrypt(key, nonce, plaintext, aad=_MAGIC + aad)
        return _MAGIC + policy.encode("ascii").ljust(10, b"\x00") + nonce + body


def unseal(device_key: bytes, identity: bytes, blob: bytes,
           aad: bytes = b"") -> bytes:
    """Unseal a blob; raises :class:`SealingError` for foreign or tampered
    blobs (wrong enclave identity, wrong device, or corrupted data)."""
    if len(blob) < len(_MAGIC) + 10 + 12 + 16 or not blob.startswith(_MAGIC):
        raise SealingError("not a sealed blob")
    with _span("crypto.unseal", bytes=len(blob)):
        policy = blob[len(_MAGIC):len(_MAGIC) + 10].rstrip(b"\x00").decode("ascii")
        offset = len(_MAGIC) + 10
        nonce = blob[offset:offset + 12]
        body = blob[offset + 12:]
        key = derive_seal_key(device_key, identity, policy)
        try:
            return gcm_decrypt(key, nonce, body, aad=_MAGIC + aad)
        except AuthenticationError as exc:
            raise SealingError(
                "unsealing failed: blob was sealed by a different enclave "
                "identity or device, or has been tampered with"
            ) from exc
