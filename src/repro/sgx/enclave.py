"""The enclave abstraction and its trust boundary.

An :class:`Enclave` subclass is the unit of shielded code.  Methods marked
with the :func:`ecall` decorator are the *only* entry points callable from
untrusted code; everything else (attributes holding the master secret,
helper methods) is behind the boundary.

Dispatch is *typed*: every enclave class owns an :class:`EcallRegistry`
holding one :class:`EcallDescriptor` (name, handler, batchable flag) per
entry point.  Untrusted code reaches the enclave through two doors:

* :meth:`Enclave.call` — one ecall, one boundary crossing;
* :meth:`Enclave.call_batch` — N ecalls in **one** accounted crossing,
  the HotCalls-style amortization the paper's §III-B boundary-cost
  argument calls for.  Only descriptors marked ``batchable`` may ride in
  a batch, and the leak scanner still runs on every individual result.
  Within a batch, an argument may be a :class:`ResultRef` referencing an
  earlier call's result, so dependent calls (extend the ciphertext that
  call #0 just produced) need not bounce back across the boundary.

Each real-world ecall/ocall transition costs ~8k cycles (HotCalls); the
:class:`CrossingMeter` on every enclave counts crossings, logical
ecalls/ocalls and estimated cycles in one place for the benchmarks.

:meth:`Enclave.load` (ECREATE/EINIT) hands untrusted code an
:class:`EnclaveHandle` — a proxy exposing only the call doors, ocall
registration, lifecycle and the public identity/counters.  Direct
attribute access to anything else raises :class:`EnclaveError`,
approximating the hardware's memory isolation within the limits of a
single-process simulation.  Trusted-side tests may unwrap a handle with
:func:`trusted_view` (a simulation escape hatch, not part of the model).
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crypto.rng import Rng
from repro.errors import EnclaveError
from repro.obs.metrics import CounterField, MetricRegistry
from repro.obs.spans import span as _span
from repro.sgx.device import SgxDevice
from repro.sgx.measurement import measure_enclave
from repro.sgx.quote import REPORT_DATA_SIZE, Quote
from repro.sgx.sealing import POLICY_MRENCLAVE, seal, unseal

ECALL_CROSSING_CYCLES = 8_000  # HotCalls: ~8k cycles per enclave transition

_enclave_counter = itertools.count(1)


def ecall(func: Optional[Callable] = None, *,
          batchable: bool = False) -> Callable:
    """Mark a method as an enclave entry point.

    Supports both ``@ecall`` and ``@ecall(batchable=True)``.  Batchable
    entry points may be executed through :meth:`Enclave.call_batch`,
    amortizing the boundary crossing over many calls.
    """
    def mark(target: Callable) -> Callable:
        target.__is_ecall__ = True
        target.__ecall_batchable__ = batchable

        @functools.wraps(target)
        def wrapper(self, *args, **kwargs):
            return target(self, *args, **kwargs)

        wrapper.__is_ecall__ = True
        wrapper.__ecall_batchable__ = batchable
        return wrapper

    if func is None:
        return mark
    return mark(func)


@dataclass(frozen=True)
class EcallDescriptor:
    """Typed dispatch entry for one enclave entry point."""

    name: str
    handler: Callable[..., Any]
    batchable: bool = False


class EcallRegistry:
    """Per-enclave-class table of :class:`EcallDescriptor` entries.

    Built once per class (cached on the class object) by scanning for
    :func:`ecall`-decorated methods; replaces the historical string
    ``getattr`` dispatch so the set of entry points is an explicit,
    inspectable artifact of the trusted code.
    """

    def __init__(self, entries: Dict[str, EcallDescriptor]) -> None:
        self._entries = dict(entries)

    @classmethod
    def for_class(cls, enclave_cls: type) -> "EcallRegistry":
        cached = enclave_cls.__dict__.get("__ecall_registry__")
        if cached is not None:
            return cached
        entries: Dict[str, EcallDescriptor] = {}
        for name in dir(enclave_cls):
            member = getattr(enclave_cls, name, None)
            if callable(member) and getattr(member, "__is_ecall__", False):
                entries[name] = EcallDescriptor(
                    name=name,
                    handler=member,
                    batchable=getattr(member, "__ecall_batchable__", False),
                )
        registry = cls(entries)
        type.__setattr__(enclave_cls, "__ecall_registry__", registry)
        return registry

    def resolve(self, name: str) -> EcallDescriptor:
        descriptor = self._entries.get(name)
        if descriptor is None:
            raise EnclaveError(f"{name!r} is not a registered ecall")
        return descriptor

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class CrossingMeter:
    """Boundary-crossing accounting (ecalls, ocalls, estimated cycles).

    One crossing is one accounted enclave transition: a single
    :meth:`Enclave.call`, one whole :meth:`Enclave.call_batch`, or one
    ocall.  Benchmarks read crossings and cycle estimates from here
    instead of re-deriving them from per-call counters.

    The authoritative values live in a ``repro.obs``
    :class:`~repro.obs.MetricRegistry` under the ``sgx.*`` namespace; the
    meter's attributes and flat :meth:`snapshot` are the compatibility
    shim over it, so existing call sites and the consolidated telemetry
    view stay in lockstep by construction.
    """

    crossings = CounterField("sgx.crossings")
    ecalls = CounterField("sgx.ecalls")
    ocalls = CounterField("sgx.ocalls")
    batches = CounterField("sgx.batches")

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        for name in ("sgx.crossings", "sgx.ecalls", "sgx.ocalls",
                     "sgx.batches"):
            self.registry.counter(name)
        self.registry.gauge(
            "sgx.estimated_cycles",
            lambda: self.crossings * ECALL_CROSSING_CYCLES,
        )

    def record_call(self) -> None:
        self.crossings += 1
        self.ecalls += 1

    def record_batch(self, n_calls: int) -> None:
        self.crossings += 1
        self.batches += 1
        self.ecalls += n_calls

    def record_ocall(self) -> None:
        self.crossings += 1
        self.ocalls += 1

    @property
    def estimated_cycles(self) -> int:
        return self.crossings * ECALL_CROSSING_CYCLES

    def snapshot(self) -> Dict[str, int]:
        """Flat legacy view; prefer ``meter.registry.snapshot()`` (dotted)."""
        return {
            "crossings": self.crossings,
            "ecalls": self.ecalls,
            "ocalls": self.ocalls,
            "batches": self.batches,
            "estimated_cycles": self.estimated_cycles,
        }

    def reset(self) -> None:
        self.registry.reset()

    def __repr__(self) -> str:
        return (f"CrossingMeter(crossings={self.crossings}, "
                f"ecalls={self.ecalls}, ocalls={self.ocalls}, "
                f"batches={self.batches})")


@dataclass(frozen=True)
class ResultRef:
    """Placeholder argument inside a batch: 'the result of call #i'.

    ``attr`` optionally selects an attribute of that result (e.g. the
    ``ciphertext`` field of a partition blob), so a dependent call can be
    expressed without leaving the enclave between the two.
    """

    index: int
    attr: Optional[str] = None

    def resolve(self, results: Sequence[Any]) -> Any:
        if not 0 <= self.index < len(results):
            raise EnclaveError(
                f"batch argument references call #{self.index}, which has "
                "not executed yet"
            )
        value = results[self.index]
        if self.attr is not None:
            value = getattr(value, self.attr)
        return value


def resolve_batch_args(args: Iterable[Any],
                       results: Sequence[Any]) -> Tuple[Any, ...]:
    """Materialize :class:`ResultRef` placeholders against prior results."""
    return tuple(
        arg.resolve(results) if isinstance(arg, ResultRef) else arg
        for arg in args
    )


#: A batch entry: ``(name, args)`` or ``(name, args, kwargs)``.
BatchRequest = Tuple[Any, ...]


class Enclave:
    """Base class for shielded code units.

    Subclasses declare ``VERSION`` (part of the measurement) and implement
    ecalls.  Instantiate via :meth:`load`, which mimics ECREATE/EINIT and
    returns the untrusted-side :class:`EnclaveHandle`.
    """

    VERSION = "1.0"

    #: Config keys excluded from the measurement: runtime tuning knobs
    #: (worker counts, precomputation toggles) that change performance but
    #: never results.  Real MRENCLAVE likewise covers code and data pages,
    #: not launch-time thread configuration — and sealing policy demands
    #: it: data sealed by a deployment must remain unsealable after a
    #: restart with a different knob setting.
    UNMEASURED_CONFIG: frozenset = frozenset()

    def __init__(self, device: SgxDevice,
                 config: Optional[Dict[str, object]] = None) -> None:
        self.device = device
        self.config = dict(config or {})
        self.measurement = measure_enclave(
            type(self), self.VERSION,
            {k: v for k, v in self.config.items()
             if k not in self.UNMEASURED_CONFIG},
        )
        self.enclave_id = next(_enclave_counter)
        self.meter = CrossingMeter()
        self._secret_values: List[bytes] = []
        self._epc_regions: List[int] = []
        self._ocall_handlers: Dict[str, Callable[..., Any]] = {}
        self._initialized = False

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def load(cls, device: SgxDevice,
             config: Optional[Dict[str, object]] = None) -> "EnclaveHandle":
        """ECREATE + EINIT: construct, initialize, return the handle.

        The returned :class:`EnclaveHandle` is the untrusted-side view;
        only the boundary API is reachable through it.
        """
        enclave = cls(device, config)
        enclave._initialized = True
        enclave.on_load()
        return EnclaveHandle(enclave)

    def on_load(self) -> None:
        """Hook run after initialization (inside the boundary)."""

    def destroy(self) -> None:
        """EREMOVE: free EPC regions and wipe secrets."""
        for handle in self._epc_regions:
            self.device.epc.free(handle)
        self._epc_regions.clear()
        self._secret_values.clear()
        self._initialized = False

    # -- trusted-side services --------------------------------------------------

    @property
    def rng(self) -> Rng:
        """In-enclave randomness (RDRAND equivalent)."""
        return self.device.rng

    @property
    def registry(self) -> EcallRegistry:
        """This enclave class's typed ecall dispatch table."""
        return EcallRegistry.for_class(type(self))

    #: Legacy counter aliases, kept for the benchmarks and tests that read
    #: them; the authoritative accounting lives on :attr:`meter`.
    @property
    def ecall_count(self) -> int:
        return self.meter.ecalls

    @property
    def ocall_count(self) -> int:
        return self.meter.ocalls

    #: Leak-scanner window: only the most recent secrets are checked, so the
    #: per-ecall scan stays O(1) across long benchmark runs.
    MAX_TRACKED_SECRETS = 32

    def track_secret(self, value: bytes) -> bytes:
        """Register a byte string as secret for the leak scanner."""
        if value:
            self._secret_values.append(bytes(value))
            if len(self._secret_values) > self.MAX_TRACKED_SECRETS:
                del self._secret_values[0]
        return value

    def seal_data(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Seal to this enclave's identity (MRENCLAVE policy)."""
        return seal(
            self.device.sealing_root_key(), self.measurement, plaintext,
            self.rng, policy=POLICY_MRENCLAVE, aad=aad,
        )

    def unseal_data(self, blob: bytes, aad: bytes = b"") -> bytes:
        return unseal(
            self.device.sealing_root_key(), self.measurement, blob, aad=aad
        )

    def get_quote(self, report_data: bytes) -> Quote:
        """Ask the platform to sign a quote over this enclave's state."""
        padded = report_data.ljust(REPORT_DATA_SIZE, b"\x00")
        if len(padded) != REPORT_DATA_SIZE:
            raise EnclaveError("report data exceeds 64 bytes")
        return self.device.sign_quote(self.measurement, padded)

    def epc_allocate(self, nbytes: int) -> int:
        handle = self.device.epc.allocate(nbytes)
        self._epc_regions.append(handle)
        return handle

    def epc_touch(self, handle: int, nbytes: int, write: bool = False) -> None:
        self.device.epc.touch(handle, nbytes, write=write)

    def register_ocall(self, name: str, handler: Callable[..., Any]) -> None:
        """Untrusted side registers an ocall handler (e.g. persistence)."""
        self._ocall_handlers[name] = handler

    def ocall(self, name: str, *args: Any) -> Any:
        """Leave the enclave to run an untrusted service routine."""
        handler = self._ocall_handlers.get(name)
        if handler is None:
            raise EnclaveError(f"no ocall handler registered for {name!r}")
        self.meter.record_ocall()
        with _span("sgx.ocall", ocall=name):
            return handler(*args)

    # -- the boundary ------------------------------------------------------------

    def call(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke one ecall from untrusted code (one boundary crossing).

        Resolves the target through the typed registry, counts the
        crossing, and scans the return value for registered secrets.
        """
        self._require_initialized()
        descriptor = self.registry.resolve(name)
        self.meter.record_call()
        with _span("sgx.ecall", ecall=name):
            result = descriptor.handler(self, *args, **kwargs)
        self._scan_for_leaks(result, name)
        return result

    def call_batch(self, requests: Sequence[BatchRequest]) -> List[Any]:
        """Execute N batchable ecalls in ONE accounted boundary crossing.

        ``requests`` is a sequence of ``(name, args)`` or
        ``(name, args, kwargs)`` entries.  All targets are validated (and
        must be declared ``batchable``) before anything executes; the
        calls then run in order inside the boundary, each result passing
        through the leak scanner individually.  Positional arguments may
        be :class:`ResultRef` placeholders referencing earlier results.

        Returns the per-call results in request order.
        """
        self._require_initialized()
        ops: List[Tuple[EcallDescriptor, Tuple[Any, ...], Dict[str, Any]]] = []
        for request in requests:
            name, args, kwargs = _unpack_request(request)
            descriptor = self.registry.resolve(name)
            if not descriptor.batchable:
                raise EnclaveError(
                    f"ecall {name!r} is not batchable; invoke it through "
                    "call() instead"
                )
            ops.append((descriptor, args, kwargs))
        if not ops:
            return []
        self.meter.record_batch(len(ops))
        results: List[Any] = []
        with _span("sgx.batch", ops=len(ops)):
            for descriptor, args, kwargs in ops:
                resolved = resolve_batch_args(args, results)
                result = descriptor.handler(self, *resolved, **kwargs)
                self._scan_for_leaks(result, descriptor.name)
                results.append(result)
        return results

    def _require_initialized(self) -> None:
        if not self._initialized:
            raise EnclaveError("enclave is not initialized (or was destroyed)")

    def _scan_for_leaks(self, value: Any, ecall_name: str) -> None:
        """Assert no registered secret appears verbatim in an ecall result.

        A simulation-level guard, not a security mechanism: it catches
        programming mistakes where plaintext key material would leave the
        boundary, which is the property the zero-knowledge tests assert.
        """
        for blob in _iter_bytes(value):
            for secret in self._secret_values:
                if secret and secret in blob:
                    raise EnclaveError(
                        f"ecall {ecall_name!r} attempted to leak secret "
                        "material across the enclave boundary"
                    )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(id={self.enclave_id}, "
            f"measurement={self.measurement.hex()[:16]}…)"
        )


#: Attributes of the loaded enclave that untrusted code may reach.  The
#: boundary API (call doors, ocall registration, lifecycle) plus public,
#: non-secret identity and accounting data: the measurement is the
#: MRENCLAVE value attested in every quote, ``device``/``config`` are
#: untrusted-side inputs that the untrusted runtime supplied at load, and
#: the counters/meter exist precisely for untrusted benchmarks.
HANDLE_ATTRS = frozenset({
    "call", "call_batch", "register_ocall", "destroy",
    "measurement", "enclave_id", "device", "config",
    "meter", "registry", "ecall_count", "ocall_count",
})


class EnclaveHandle:
    """Untrusted-side proxy enforcing the documented enclave isolation.

    :meth:`Enclave.load` returns this instead of the enclave object, so
    untrusted code can only reach :data:`HANDLE_ATTRS` — notably the two
    call doors and the public counters.  Any other attribute access
    raises :class:`EnclaveError`, approximating EPC memory isolation.
    """

    __slots__ = ("_enclave",)

    def __init__(self, enclave: Enclave) -> None:
        object.__setattr__(self, "_enclave", enclave)

    def __getattr__(self, name: str) -> Any:
        if name in HANDLE_ATTRS:
            return getattr(object.__getattribute__(self, "_enclave"), name)
        raise EnclaveError(
            f"attribute {name!r} is behind the enclave boundary; untrusted "
            "code may only use call()/call_batch(), register_ocall(), "
            "destroy() and the public counters"
        )

    def __setattr__(self, name: str, value: Any) -> None:
        raise EnclaveError(
            "untrusted code cannot write enclave memory through the handle"
        )

    def __repr__(self) -> str:
        return f"EnclaveHandle({object.__getattribute__(self, '_enclave')!r})"


def trusted_view(enclave: Any) -> Enclave:
    """Unwrap an :class:`EnclaveHandle` to the in-boundary object.

    A simulation escape hatch for code standing *inside* the trust
    boundary (the enclave's own unit tests, white-box security assertions
    that inspect tracked secrets).  System code must never call this —
    doing so would model a physical memory-read attack SGX excludes.
    """
    if isinstance(enclave, EnclaveHandle):
        return object.__getattribute__(enclave, "_enclave")
    if isinstance(enclave, Enclave):
        return enclave
    raise EnclaveError(f"not an enclave or enclave handle: {enclave!r}")


def _unpack_request(request: BatchRequest) -> Tuple[str, Tuple[Any, ...],
                                                    Dict[str, Any]]:
    if not isinstance(request, (tuple, list)) or not request:
        raise EnclaveError(f"malformed batch request: {request!r}")
    name = request[0]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = {}
    if len(request) >= 2:
        args = tuple(request[1])
    if len(request) == 3:
        kwargs = dict(request[2])
    if len(request) > 3 or not isinstance(name, str):
        raise EnclaveError(f"malformed batch request: {request!r}")
    return name, args, kwargs


def _iter_bytes(value: Any):
    """Yield every bytes-like leaf in a nested result structure."""
    if isinstance(value, (bytes, bytearray)):
        yield bytes(value)
    elif isinstance(value, (list, tuple, set)):
        for item in value:
            yield from _iter_bytes(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _iter_bytes(item)
