"""The enclave abstraction and its trust boundary.

An :class:`Enclave` subclass is the unit of shielded code.  Methods marked
with the :func:`ecall` decorator are the *only* entry points callable from
untrusted code; everything else (attributes holding the master secret,
helper methods) is behind the boundary.  Calls go through
:meth:`Enclave.call`, which

* validates that the target is a registered ecall,
* counts boundary crossings (each real-world ecall/ocall costs ~8k cycles —
  HotCalls; exposed for the benchmarks),
* and scans returned values for accidental leakage of registered secrets
  (a guard-rail used by the zero-knowledge tests).

Direct attribute access from outside raises, approximating the hardware's
memory isolation within the limits of a single-process simulation.
"""

from __future__ import annotations

import functools
import itertools
from typing import Any, Callable, Dict, List, Optional

from repro.crypto.rng import Rng
from repro.errors import EnclaveError
from repro.sgx.device import SgxDevice
from repro.sgx.measurement import measure_enclave
from repro.sgx.quote import REPORT_DATA_SIZE, Quote
from repro.sgx.sealing import POLICY_MRENCLAVE, seal, unseal

ECALL_CROSSING_CYCLES = 8_000  # HotCalls: ~8k cycles per enclave transition

_enclave_counter = itertools.count(1)


def ecall(func: Callable) -> Callable:
    """Mark a method as an enclave entry point."""
    func.__is_ecall__ = True

    @functools.wraps(func)
    def wrapper(self, *args, **kwargs):
        return func(self, *args, **kwargs)

    wrapper.__is_ecall__ = True
    return wrapper


class Enclave:
    """Base class for shielded code units.

    Subclasses declare ``VERSION`` (part of the measurement) and implement
    ecalls.  Instantiate via :meth:`load`, which mimics ECREATE/EINIT.
    """

    VERSION = "1.0"

    def __init__(self, device: SgxDevice,
                 config: Optional[Dict[str, object]] = None) -> None:
        self.device = device
        self.config = dict(config or {})
        self.measurement = measure_enclave(
            type(self), self.VERSION, self.config
        )
        self.enclave_id = next(_enclave_counter)
        self.ecall_count = 0
        self.ocall_count = 0
        self._secret_values: List[bytes] = []
        self._epc_regions: List[int] = []
        self._ocall_handlers: Dict[str, Callable[..., Any]] = {}
        self._initialized = False

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def load(cls, device: SgxDevice,
             config: Optional[Dict[str, object]] = None) -> "Enclave":
        """ECREATE + EINIT: construct and initialize the enclave."""
        enclave = cls(device, config)
        enclave._initialized = True
        enclave.on_load()
        return enclave

    def on_load(self) -> None:
        """Hook run after initialization (inside the boundary)."""

    def destroy(self) -> None:
        """EREMOVE: free EPC regions and wipe secrets."""
        for handle in self._epc_regions:
            self.device.epc.free(handle)
        self._epc_regions.clear()
        self._secret_values.clear()
        self._initialized = False

    # -- trusted-side services --------------------------------------------------

    @property
    def rng(self) -> Rng:
        """In-enclave randomness (RDRAND equivalent)."""
        return self.device.rng

    #: Leak-scanner window: only the most recent secrets are checked, so the
    #: per-ecall scan stays O(1) across long benchmark runs.
    MAX_TRACKED_SECRETS = 32

    def track_secret(self, value: bytes) -> bytes:
        """Register a byte string as secret for the leak scanner."""
        if value:
            self._secret_values.append(bytes(value))
            if len(self._secret_values) > self.MAX_TRACKED_SECRETS:
                del self._secret_values[0]
        return value

    def seal_data(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Seal to this enclave's identity (MRENCLAVE policy)."""
        return seal(
            self.device.sealing_root_key(), self.measurement, plaintext,
            self.rng, policy=POLICY_MRENCLAVE, aad=aad,
        )

    def unseal_data(self, blob: bytes, aad: bytes = b"") -> bytes:
        return unseal(
            self.device.sealing_root_key(), self.measurement, blob, aad=aad
        )

    def get_quote(self, report_data: bytes) -> Quote:
        """Ask the platform to sign a quote over this enclave's state."""
        padded = report_data.ljust(REPORT_DATA_SIZE, b"\x00")
        if len(padded) != REPORT_DATA_SIZE:
            raise EnclaveError("report data exceeds 64 bytes")
        return self.device.sign_quote(self.measurement, padded)

    def epc_allocate(self, nbytes: int) -> int:
        handle = self.device.epc.allocate(nbytes)
        self._epc_regions.append(handle)
        return handle

    def epc_touch(self, handle: int, nbytes: int, write: bool = False) -> None:
        self.device.epc.touch(handle, nbytes, write=write)

    def register_ocall(self, name: str, handler: Callable[..., Any]) -> None:
        """Untrusted side registers an ocall handler (e.g. persistence)."""
        self._ocall_handlers[name] = handler

    def ocall(self, name: str, *args: Any) -> Any:
        """Leave the enclave to run an untrusted service routine."""
        handler = self._ocall_handlers.get(name)
        if handler is None:
            raise EnclaveError(f"no ocall handler registered for {name!r}")
        self.ocall_count += 1
        return handler(*args)

    # -- the boundary ------------------------------------------------------------

    def call(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke an ecall from untrusted code.

        The only supported way into the enclave.  Verifies the target is a
        registered ecall, counts the crossing, and scans the return value
        for registered secrets.
        """
        if not self._initialized:
            raise EnclaveError("enclave is not initialized (or was destroyed)")
        method = getattr(type(self), name, None)
        if method is None or not getattr(method, "__is_ecall__", False):
            raise EnclaveError(f"{name!r} is not a registered ecall")
        self.ecall_count += 1
        result = method(self, *args, **kwargs)
        self._scan_for_leaks(result, name)
        return result

    def _scan_for_leaks(self, value: Any, ecall_name: str) -> None:
        """Assert no registered secret appears verbatim in an ecall result.

        A simulation-level guard, not a security mechanism: it catches
        programming mistakes where plaintext key material would leave the
        boundary, which is the property the zero-knowledge tests assert.
        """
        for blob in _iter_bytes(value):
            for secret in self._secret_values:
                if secret and secret in blob:
                    raise EnclaveError(
                        f"ecall {ecall_name!r} attempted to leak secret "
                        "material across the enclave boundary"
                    )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(id={self.enclave_id}, "
            f"measurement={self.measurement.hex()[:16]}…)"
        )


def _iter_bytes(value: Any):
    """Yield every bytes-like leaf in a nested result structure."""
    if isinstance(value, (bytes, bytearray)):
        yield bytes(value)
    elif isinstance(value, (list, tuple, set)):
        for item in value:
            yield from _iter_bytes(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _iter_bytes(item)
