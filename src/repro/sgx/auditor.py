"""The Auditor / Certificate Authority of the trust-establishment protocol.

Fig. 3 of the paper: the enclave sends its fresh public key and quote to
the Auditor (1); the Auditor checks genuineness with IAS (2), compares the
measurement against the expected (audited) one, and issues a certificate
binding the enclave's public key to its audited identity (3); users verify
this certificate before trusting key material from the enclave (4).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Set

from repro.crypto import ecdsa
from repro.crypto.kdf import sha256
from repro.crypto.rng import Rng, SystemRng
from repro.errors import AttestationError
from repro.sgx.ias import IntelAttestationService
from repro.sgx.quote import Quote


@dataclass(frozen=True)
class EnclaveCertificate:
    """CA-signed binding of an enclave public key to an audited measurement."""

    enclave_public_key: bytes   # encoded ECDSA/ECDH public key
    measurement: bytes
    device_id: str
    issued_at: float
    ca_signature: bytes

    def signed_payload(self) -> bytes:
        body = {
            "public_key": self.enclave_public_key.hex(),
            "measurement": self.measurement.hex(),
            "device_id": self.device_id,
            "issued_at": self.issued_at,
        }
        return b"repro:enclave-cert:v1\x00" + json.dumps(
            body, sort_keys=True
        ).encode("utf-8")

    def verify(self, ca_public_key: ecdsa.EcdsaPublicKey) -> None:
        """User-side check (Fig. 3 step 4)."""
        try:
            ca_public_key.verify(self.signed_payload(), self.ca_signature)
        except Exception as exc:
            raise AttestationError("enclave certificate signature invalid") from exc


class Auditor:
    """Attests enclaves against an allow-list of audited measurements and
    acts as the CA for enclave certificates."""

    def __init__(self, ias: IntelAttestationService,
                 rng: Rng | None = None,
                 ca_key: "ecdsa.EcdsaPrivateKey | None" = None) -> None:
        self._ias = ias
        rng = rng or SystemRng()
        # A persisted CA key keeps certificates verifiable across process
        # restarts (see the CLI deployment).
        self._ca_key = ca_key or ecdsa.generate_keypair(rng)
        #: Users pin this to verify enclave certificates.
        self.ca_public_key = self._ca_key.public_key()
        self._expected_measurements: Set[bytes] = set()

    def approve_measurement(self, measurement: bytes) -> None:
        """Record the measurement of an audited (source-reviewed) enclave."""
        if len(measurement) != 32:
            raise AttestationError("measurement must be 32 bytes")
        self._expected_measurements.add(measurement)

    def attest_and_certify(self, quote: Quote,
                           enclave_public_key: bytes) -> EnclaveCertificate:
        """Fig. 3 steps 2-3: IAS check, measurement check, certificate issue.

        The quote's report data must commit to the enclave public key
        (SHA-256), binding the key to the attested enclave instance.
        """
        report = self._ias.verify_quote(quote)
        IntelAttestationService.verify_report(
            report, self._ias.report_public_key
        )
        if not report.is_ok:
            raise AttestationError(
                f"IAS rejected the quote: {report.quote_status}"
            )
        if quote.measurement not in self._expected_measurements:
            raise AttestationError(
                "enclave measurement does not match any audited build"
            )
        expected_commit = sha256(enclave_public_key)
        if quote.report_data[:32] != expected_commit:
            raise AttestationError(
                "quote report data does not commit to the presented key"
            )
        cert = EnclaveCertificate(
            enclave_public_key=enclave_public_key,
            measurement=quote.measurement,
            device_id=quote.device_id,
            issued_at=time.time(),
            ca_signature=b"",
        )
        signature = self._ca_key.sign(cert.signed_payload())
        return EnclaveCertificate(
            enclave_public_key=cert.enclave_public_key,
            measurement=cert.measurement,
            device_id=cert.device_id,
            issued_at=cert.issued_at,
            ca_signature=signature,
        )
