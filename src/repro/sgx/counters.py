"""Monotonic counters (SGX platform service equivalent).

Enclaves use monotonic counters for rollback protection of sealed state:
the IBBE-SGX enclave stamps each sealed group key with a counter value so a
malicious host cannot replay an old sealed blob after a revocation.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import EnclaveError


class MonotonicCounterService:
    """Per-device counter registry; values only move forward."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def create(self, counter_id: str) -> int:
        if counter_id in self._counters:
            raise EnclaveError(f"counter {counter_id!r} already exists")
        self._counters[counter_id] = 0
        return 0

    def exists(self, counter_id: str) -> bool:
        return counter_id in self._counters

    def increment(self, counter_id: str) -> int:
        if counter_id not in self._counters:
            raise EnclaveError(f"unknown counter {counter_id!r}")
        self._counters[counter_id] += 1
        return self._counters[counter_id]

    def read(self, counter_id: str) -> int:
        if counter_id not in self._counters:
            raise EnclaveError(f"unknown counter {counter_id!r}")
        return self._counters[counter_id]
