"""Enclave Page Cache (EPC) model.

SGX v1 reserves 128 MiB of encrypted memory; enclave working sets beyond it
are transparently paged with substantial cost, and even resident accesses
pay an encryption overhead (the paper cites up to 19.5 % for writes and
102 % for reads, via the HotCalls study).  This model lets benchmarks
quantify the §III-B argument: HE's linearly-growing group metadata blows the
EPC budget, IBBE's constant metadata does not.

The model is an accounting simulator: enclaves report allocations and
accesses; it tracks page residency with an LRU policy and accumulates a
virtual cost in abstract "cycles" (base cost 1 per byte, multiplied by the
configured overheads; a page fault costs ``fault_cost_cycles``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import EPCError

PAGE_SIZE = 4096
DEFAULT_EPC_BYTES = 128 * 1024 * 1024

# Overheads from Weisse et al. (HotCalls, ISCA'17), cited in paper §III-B.
READ_OVERHEAD = 1.02    # +102 % on reads of enclave memory
WRITE_OVERHEAD = 0.195  # +19.5 % on writes
# Cost of an EPC page fault (EWB + ELDU round trip), in abstract cycles.
DEFAULT_FAULT_COST = 40_000


@dataclass
class EpcStats:
    """Counters exposed to benchmarks."""

    allocated_bytes: int = 0
    peak_allocated_bytes: int = 0
    resident_pages: int = 0
    page_faults: int = 0
    evictions: int = 0
    read_bytes: int = 0
    written_bytes: int = 0
    cycles: float = 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "allocated_bytes": self.allocated_bytes,
            "peak_allocated_bytes": self.peak_allocated_bytes,
            "resident_pages": self.resident_pages,
            "page_faults": self.page_faults,
            "evictions": self.evictions,
            "read_bytes": self.read_bytes,
            "written_bytes": self.written_bytes,
            "cycles": self.cycles,
        }


@dataclass
class _Region:
    base_page: int
    pages: int
    nbytes: int


class EpcModel:
    """Page-granular EPC accounting shared by all enclaves on a device."""

    def __init__(self, capacity_bytes: int = DEFAULT_EPC_BYTES,
                 fault_cost_cycles: float = DEFAULT_FAULT_COST,
                 read_overhead: float = READ_OVERHEAD,
                 write_overhead: float = WRITE_OVERHEAD) -> None:
        if capacity_bytes < PAGE_SIZE:
            raise EPCError("EPC capacity below one page")
        self.capacity_pages = capacity_bytes // PAGE_SIZE
        self.fault_cost_cycles = fault_cost_cycles
        self.read_overhead = read_overhead
        self.write_overhead = write_overhead
        self.stats = EpcStats()
        self._next_page = 0
        self._regions: Dict[int, _Region] = {}
        self._next_region_id = 1
        # page -> resident marker, ordered by recency (LRU at the front).
        self._resident: "OrderedDict[int, None]" = OrderedDict()

    # -- allocation ----------------------------------------------------------

    def allocate(self, nbytes: int) -> int:
        """Reserve enclave memory; returns a region handle."""
        if nbytes <= 0:
            raise EPCError(f"allocation must be positive, got {nbytes}")
        pages = -(-nbytes // PAGE_SIZE)
        region = _Region(base_page=self._next_page, pages=pages,
                         nbytes=nbytes)
        self._next_page += pages
        handle = self._next_region_id
        self._next_region_id += 1
        self._regions[handle] = region
        self.stats.allocated_bytes += nbytes
        self.stats.peak_allocated_bytes = max(
            self.stats.peak_allocated_bytes, self.stats.allocated_bytes
        )
        return handle

    def free(self, handle: int) -> None:
        region = self._regions.pop(handle, None)
        if region is None:
            raise EPCError(f"unknown EPC region handle {handle}")
        for page in range(region.base_page, region.base_page + region.pages):
            self._resident.pop(page, None)
        self.stats.allocated_bytes -= region.nbytes
        self.stats.resident_pages = len(self._resident)

    # -- access accounting ----------------------------------------------------

    def touch(self, handle: int, nbytes: int, write: bool = False,
              offset: int = 0) -> float:
        """Account an access of ``nbytes`` within a region.

        Returns the cycle cost charged (also accumulated in :attr:`stats`).
        """
        region = self._regions.get(handle)
        if region is None:
            raise EPCError(f"unknown EPC region handle {handle}")
        first = region.base_page + offset // PAGE_SIZE
        last = region.base_page + (offset + max(nbytes, 1) - 1) // PAGE_SIZE
        if last >= region.base_page + region.pages:
            raise EPCError("access beyond the end of the region")
        cost = 0.0
        for page in range(first, last + 1):
            cost += self._ensure_resident(page)
        overhead = self.write_overhead if write else self.read_overhead
        cost += nbytes * (1.0 + overhead)
        if write:
            self.stats.written_bytes += nbytes
        else:
            self.stats.read_bytes += nbytes
        self.stats.cycles += cost
        return cost

    def _ensure_resident(self, page: int) -> float:
        if page in self._resident:
            self._resident.move_to_end(page)
            return 0.0
        cost = 0.0
        if len(self._resident) >= self.capacity_pages:
            self._resident.popitem(last=False)  # evict LRU
            self.stats.evictions += 1
            cost += self.fault_cost_cycles  # EWB of the victim
        self._resident[page] = None
        self.stats.page_faults += 1
        self.stats.resident_pages = len(self._resident)
        cost += self.fault_cost_cycles
        return cost
