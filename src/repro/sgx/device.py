"""Simulated SGX-capable CPU (the platform an enclave loads on).

A device owns:

* a *fuse key* — root of the sealing-key derivation; never leaves the
  device object (the substrate's stand-in for the CPU's sealing fuses);
* an *attestation key* — signs quotes; its public half is registered with
  the simulated Intel Attestation Service at manufacturing time, which is
  exactly the trust relation real EPID/DCAP provisioning establishes;
* the shared :class:`~repro.sgx.epc.EpcModel` for all enclaves it loads.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Optional

from repro.crypto import ecdsa
from repro.crypto.kdf import hkdf
from repro.crypto.rng import Rng, SystemRng
from repro.ec.p256 import P256
from repro.sgx.counters import MonotonicCounterService
from repro.sgx.epc import EpcModel
from repro.sgx.quote import Quote, quote_payload

_device_counter = itertools.count(1)


class SgxDevice:
    """An SGX platform: fuse key + attestation key + EPC.

    ``device_secret`` models the CPU's e-fuses: when provided, the fuse
    and attestation keys are derived from it deterministically, so the
    *same* device (and hence its sealed blobs) survives process restarts —
    required by the persistent CLI deployment.  Without it, fresh keys are
    drawn from ``rng`` (an anonymous throwaway platform).
    """

    def __init__(self, rng: Optional[Rng] = None,
                 epc: Optional[EpcModel] = None,
                 device_id: Optional[str] = None,
                 device_secret: Optional[bytes] = None) -> None:
        self._rng = rng or SystemRng()
        self.epc = epc or EpcModel()
        #: Platform monotonic-counter service.  Hosted on the *device*
        #: (as on real SGX hardware) so counter state — and with it the
        #: rollback protection of sealed blobs — survives enclave
        #: restarts on the same platform.
        self.counters = MonotonicCounterService()
        if device_secret is not None:
            digest = hashlib.sha256(device_secret).hexdigest()[:16]
            self.device_id = device_id or f"sgx-device-{digest}"
            self._fuse_key = hkdf(device_secret, 32, info=b"repro:fuse")
            scalar = 1 + int.from_bytes(
                hkdf(device_secret, 48, info=b"repro:attest"), "big"
            ) % (P256.order - 1)
            self._attestation_key = ecdsa.EcdsaPrivateKey(scalar)
        else:
            self.device_id = device_id or f"sgx-device-{next(_device_counter)}"
            self._fuse_key = self._rng.random_bytes(32)
            self._attestation_key = ecdsa.generate_keypair(self._rng)
        #: Public half, to be registered with the IAS (manufacturing step).
        self.attestation_public_key = self._attestation_key.public_key()

    @property
    def rng(self) -> Rng:
        return self._rng

    @rng.setter
    def rng(self, rng: Rng) -> None:
        # Replaceable so deterministic harnesses (the worker-sweep
        # benchmark) can reset the randomness stream between repetitions
        # of the same operation; enclaves read ``device.rng`` per call,
        # so the swap takes effect immediately.
        self._rng = rng

    def sealing_root_key(self) -> bytes:
        """Device fuse key — accessed only by enclaves loaded on this device."""
        return self._fuse_key

    def sign_quote(self, measurement: bytes, report_data: bytes) -> Quote:
        """Produce a quote over (measurement, report_data) — the EREPORT +
        quoting-enclave path collapsed into one step."""
        payload = quote_payload(measurement, report_data, self.device_id)
        return Quote(
            measurement=measurement,
            report_data=report_data,
            device_id=self.device_id,
            signature=self._attestation_key.sign(payload),
        )

    def __repr__(self) -> str:
        return f"SgxDevice({self.device_id})"
