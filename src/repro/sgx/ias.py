"""Simulated Intel Attestation Service (IAS).

The real IAS verifies EPID quote signatures against Intel's provisioning
records and returns a signed attestation verification report.  This
simulation keeps the same interface: devices are registered at
"manufacturing" time (their attestation public keys deposited here), quotes
are checked against the registry and a revocation list, and reports are
signed with the IAS report key so relying parties (the Auditor) can verify
their provenance offline.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, Set

from repro.crypto import ecdsa
from repro.crypto.rng import Rng, SystemRng
from repro.errors import AttestationError
from repro.sgx.quote import Quote


@dataclass(frozen=True)
class AttestationReport:
    """Signed verdict over a quote (ISV enclave quote status)."""

    quote_status: str          # "OK" | rejection reason
    measurement: bytes
    report_data: bytes
    device_id: str
    timestamp: float
    signature: bytes           # by the IAS report key

    def signed_payload(self) -> bytes:
        body = {
            "status": self.quote_status,
            "measurement": self.measurement.hex(),
            "report_data": self.report_data.hex(),
            "device_id": self.device_id,
            "timestamp": self.timestamp,
        }
        return b"repro:ias-report:v1\x00" + json.dumps(
            body, sort_keys=True
        ).encode("utf-8")

    @property
    def is_ok(self) -> bool:
        return self.quote_status == "OK"


class IntelAttestationService:
    """Registry of genuine platforms + quote verification service."""

    def __init__(self, rng: Rng | None = None,
                 report_key: "ecdsa.EcdsaPrivateKey | None" = None) -> None:
        rng = rng or SystemRng()
        # A persisted report key lets relying parties pin one IAS identity
        # across process restarts (see the CLI deployment).
        self._report_key = report_key or ecdsa.generate_keypair(rng)
        #: Relying parties pin this key to verify reports.
        self.report_public_key = self._report_key.public_key()
        self._devices: Dict[str, ecdsa.EcdsaPublicKey] = {}
        self._revoked: Set[str] = set()

    # -- manufacturing / lifecycle ------------------------------------------

    def register_device(self, device_id: str,
                        attestation_public_key: ecdsa.EcdsaPublicKey) -> None:
        """Provision a platform (performed when the CPU is manufactured)."""
        if device_id in self._devices:
            raise AttestationError(f"device {device_id!r} already registered")
        self._devices[device_id] = attestation_public_key

    def revoke_device(self, device_id: str) -> None:
        """Add a platform to the revocation list (compromised key)."""
        self._revoked.add(device_id)

    # -- verification ----------------------------------------------------------

    def verify_quote(self, quote: Quote) -> AttestationReport:
        """Check a quote and return a signed report (never raises for a
        *failed* verification — the verdict is in ``quote_status``)."""
        status = "OK"
        key = self._devices.get(quote.device_id)
        if key is None:
            status = "UNKNOWN_DEVICE"
        elif quote.device_id in self._revoked:
            status = "DEVICE_REVOKED"
        elif not key.is_valid(quote.signed_payload(), quote.signature):
            status = "SIGNATURE_INVALID"
        report = AttestationReport(
            quote_status=status,
            measurement=quote.measurement,
            report_data=quote.report_data,
            device_id=quote.device_id,
            timestamp=time.time(),
            signature=b"",
        )
        signature = self._report_key.sign(report.signed_payload())
        return AttestationReport(
            quote_status=report.quote_status,
            measurement=report.measurement,
            report_data=report.report_data,
            device_id=report.device_id,
            timestamp=report.timestamp,
            signature=signature,
        )

    @staticmethod
    def verify_report(report: AttestationReport,
                      report_public_key: ecdsa.EcdsaPublicKey) -> None:
        """Relying-party check of a report's signature."""
        try:
            report_public_key.verify(report.signed_payload(), report.signature)
        except Exception as exc:
            raise AttestationError("IAS report signature invalid") from exc
