"""End-to-end trust establishment and key provisioning (paper Fig. 3).

Protocol driver functions tying together the enclave, the Auditor/CA, the
IAS and the user:

1. The enclave generates an identity keypair inside the boundary and emits
   its public key plus a quote whose report data commits to that key.
2. The Auditor checks the quote with IAS and the measurement against the
   audited build, then issues an :class:`EnclaveCertificate`.
3. Users verify the certificate against the pinned CA key.
4. Users request their IBBE secret key over an encrypted channel bound to
   the certified enclave key (ECIES in lieu of TLS), so only the attested
   enclave can read the request and only the requesting user can read the
   response.

The enclave side of steps 1 and 4 is part of the enclave application's
ecall contract (see :mod:`repro.enclave_app.ibbe_enclave`):

* ``get_public_key() -> bytes``
* ``get_attestation_quote() -> Quote``
* ``provision_user_key(request: bytes) -> bytes`` — ECIES envelope in,
  ECIES envelope out.
"""

from __future__ import annotations

import json
from typing import Tuple

from repro.crypto import ecdsa, ecies
from repro.crypto.rng import Rng
from repro.errors import AttestationError
from repro.sgx.auditor import Auditor, EnclaveCertificate
from repro.sgx.enclave import Enclave


def setup_trust(enclave: Enclave, auditor: Auditor) -> EnclaveCertificate:
    """Fig. 3 steps 1-3: attest ``enclave`` and obtain its certificate."""
    public_key = enclave.call("get_public_key")
    quote = enclave.call("get_attestation_quote")
    return auditor.attest_and_certify(quote, public_key)


def provision_user_key(
    enclave: Enclave,
    certificate: EnclaveCertificate,
    ca_public_key: ecdsa.EcdsaPublicKey,
    identity: str,
    rng: Rng,
) -> bytes:
    """Fig. 3 step 4, run from the user's perspective.

    Verifies the enclave certificate, sends an encrypted key request, and
    returns the decrypted IBBE user secret key bytes.  Raises
    :class:`AttestationError` if any link of the trust chain fails.
    """
    certificate.verify(ca_public_key)
    if certificate.enclave_public_key != enclave.call("get_public_key"):
        raise AttestationError(
            "enclave presented a key different from its certificate"
        )
    enclave_key = ecies.EciesPublicKey.decode(certificate.enclave_public_key)
    response_key = ecies.generate_keypair(rng)
    request = json.dumps({
        "identity": identity,
        "response_key": response_key.public_key().encode().hex(),
    }).encode("utf-8")
    sealed_request = enclave_key.encrypt(request, rng, aad=b"usk-request")
    sealed_response = enclave.call("provision_user_key", sealed_request)
    return response_key.decrypt(sealed_response, aad=b"usk-response")


# ---------------------------------------------------------------------------
# MAGE-style mutual attestation (no trusted third party)
# ---------------------------------------------------------------------------
#
# The Fig. 3 flow above trusts the Auditor/CA to say which measurements
# are good.  Multi-enclave shard deployments (repro.shard) drop that
# third party following MAGE (arXiv:2008.09501): two enclaves of the
# same build attest *each other*.  The untrusted coordinator below only
# ferries offers, quotes and IAS reports between the parties — every
# security-relevant check (report signature under the pinned IAS key,
# measurement equality with the verifier's OWN measurement, key
# commitment, nonce freshness) runs inside the enclave boundary in
# ``register_peer``.  The coordinator consults the ambient fault
# injector at each step, so seeded chaos plans can break the handshake
# mid-flight; a TransientAttestationError is retryable by contract.


def _attestation_fault(site: str) -> None:
    from repro.faults import active

    injector = active()
    if injector is not None:
        injector.attestation_fault(site)


def mutual_attest(enclave_a: Enclave, enclave_b: Enclave, ias) -> None:
    """Run the MAGE mutual-attestation handshake between two enclaves.

    On return, each enclave holds the other in its peer registry (the
    precondition for ``export_master_secret_to_peer`` /
    ``import_master_secret_from_peer``).  Raises
    :class:`~repro.errors.AttestationError` if either side rejects;
    raises the *transient* subclass when an injected fault interrupts a
    step, in which case the whole exchange is safe to rerun (stale
    issued nonces are simply never answered).
    """
    _attestation_fault("peer-offer")
    offer_a = enclave_a.call("peer_offer")
    offer_b = enclave_b.call("peer_offer")
    quote_a = enclave_a.call("peer_quote", offer_b["nonce"])
    quote_b = enclave_b.call("peer_quote", offer_a["nonce"])
    _attestation_fault("ias-report")
    report_a = ias.verify_quote(quote_a)
    report_b = ias.verify_quote(quote_b)
    _attestation_fault("register-peer")
    enclave_a.call("register_peer", report_b, offer_b["public_key"])
    enclave_b.call("register_peer", report_a, offer_a["public_key"])


def provision_master_secret(source: Enclave, target: Enclave, ias,
                            public_key) -> bytes:
    """Mutually attest ``source`` and ``target``, migrate the master
    secret from the former to the latter, and return the target's own
    sealed copy (so it can later ``restore_system`` after a restart
    without repeating the migration).
    """
    mutual_attest(source, target, ias)
    source_key = source.call("get_public_key")
    target_key = target.call("get_public_key")
    _attestation_fault("msk-transfer")
    blob = source.call("export_master_secret_to_peer", target_key)
    target.call("import_master_secret_from_peer", blob, public_key,
                source_key)
    return target.call("seal_master_secret")


def parse_provision_request(request: bytes) -> Tuple[str, ecies.EciesPublicKey]:
    """Enclave-side helper: decode a provisioning request body."""
    try:
        body = json.loads(request.decode("utf-8"))
        identity = body["identity"]
        response_key = ecies.EciesPublicKey.decode(
            bytes.fromhex(body["response_key"])
        )
    except (ValueError, KeyError, TypeError) as exc:
        raise AttestationError("malformed provisioning request") from exc
    if not isinstance(identity, str) or not identity:
        raise AttestationError("provisioning request lacks an identity")
    return identity, response_key
