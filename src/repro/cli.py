"""Command-line deployment of IBBE-SGX.

Turns the library into an operable tool: a *state directory* holds the
persistent identities (device fuses, sealed master secret, system public
key, administrator signing key, auditor/IAS keys) and a *cloud directory*
holds the file-backed store shared between administrator and clients —
mirroring the paper's deployment of an admin machine plus Dropbox.

Usage overview::

    python -m repro.cli init         --state S --cloud C [--params toy64]
                                     [--capacity 4] [--bound 16] [--workers N]
    python -m repro.cli create-group --state S --cloud C GROUP M1 M2 …
    python -m repro.cli add-user     --state S --cloud C GROUP USER
    python -m repro.cli remove-user  --state S --cloud C GROUP USER
    python -m repro.cli rekey        --state S --cloud C GROUP
    python -m repro.cli delete-group --state S --cloud C GROUP
    python -m repro.cli show         --state S --cloud C [GROUP]
    python -m repro.cli provision    --state S --cloud C IDENTITY --out F
    python -m repro.cli client-key   --cloud C --user-key F GROUP IDENTITY
    python -m repro.cli gen-trace    --kind {synthetic,kernel} --out F …
    python -m repro.cli replay       --state S --cloud C --trace F [--workers N]
                                     [--telemetry] [--trace-out F.json]
                                     [--profile [--profile-hz N]]
                                     [--faults SEED] [--compact N]
    python -m repro.cli compact      --cloud C
    python -m repro.cli stats        (--state S --cloud C | --store-url U)
                                     [--format table|json|prom] [--out F]
    python -m repro.cli health       --store-url U [--store-url U2 …]
                                     [--timeout T] [--json]
    python -m repro.cli serve        --cloud C [--state S] [--host H]
                                     [--port P] [--compact-every N]
                                     [--request-log F] [--slow-ms N]
                                     [--shards N]

``serve`` exposes the file-backed store over TCP (``repro.net``
protocol); every command that takes ``--cloud`` alternatively accepts
``--store-url tcp://host:port`` and then operates through a
:class:`~repro.net.RemoteCloudStore` against the running server.  With
``--state``, the server also hosts the deployment's administrator and
forwards the whitelisted group-management operations
(:data:`repro.net.ADMIN_OPS`) to it.

``compact`` folds the store's event history into a snapshot manifest and
truncates the event log (crash-safe; see ``repro.cloud.filestore``), so
late-joining clients and restarted administrators bootstrap in
O(current state + changes since) instead of replaying every event ever
written.  ``replay --compact N`` runs the same compaction automatically
every ``N`` mutations during the replay.

``provision`` runs the Fig. 3 flow (attestation + encrypted channel) and
writes the user's IBBE secret key to a file; ``client-key`` then acts as
that user: it syncs the group directory and prints the derived group key.

Every invocation reconstructs the enclave on the same simulated platform
(the device secret in the state directory models the CPU fuses) and
restores the sealed master secret — no plaintext key material is ever in
the state directory except the user-side files explicitly exported.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro import ibbe
from repro.cloud import FileCloudStore
from repro.core import GroupAdministrator, GroupClient
from repro.crypto import ecdsa
from repro.crypto.rng import SystemRng
from repro.enclave_app import IbbeEnclave
from repro.errors import NotFoundError, ReproError, ValidationError
from repro.pairing import PairingGroup, preset
from repro.pairing.group import G1Element
from repro.sgx import (
    Auditor,
    IntelAttestationService,
    SgxDevice,
    provision_user_key,
    setup_trust,
)

_CONFIG = "config.json"
_DEVICE_SECRET = "device-secret.bin"
_SEALED_MSK = "sealed-msk.bin"
_PUBLIC_KEY = "public-key.bin"
_ADMIN_KEY = "admin-signing.key"
_CA_KEY = "auditor-ca.key"
_IAS_KEY = "ias-report.key"


class Deployment:
    """A reconstructed admin-side deployment from a state directory.

    ``workers`` configures the enclave's parallel engine for this
    invocation; ``None`` falls back to the count persisted by ``init``
    (which itself defaults to the ``REPRO_WORKERS`` environment
    variable, else serial).  The worker count is a runtime knob — it is
    excluded from the enclave measurement, so any value can unseal the
    deployment's master secret.
    """

    def __init__(self, state_dir: Path, cloud_dir: Optional[Path] = None,
                 workers: Optional[int] = None,
                 compact_every: Optional[int] = None,
                 store=None) -> None:
        from repro.par import resolve_workers

        self.state_dir = state_dir
        config = json.loads((state_dir / _CONFIG).read_text("utf-8"))
        self.params_name = config["params"]
        self.capacity = config["capacity"]
        self.bound = config["bound"]
        if workers is None:
            workers = config.get("workers")
        self.workers = resolve_workers(workers)
        self.group = PairingGroup(preset(self.params_name))
        self.rng = SystemRng()

        device_secret = (state_dir / _DEVICE_SECRET).read_bytes()
        self.device = SgxDevice(rng=self.rng, device_secret=device_secret)
        self.ias = IntelAttestationService(
            report_key=_load_scalar(state_dir / _IAS_KEY)
        )
        self.ias.register_device(self.device.device_id,
                                 self.device.attestation_public_key)
        ca_key = _load_scalar(state_dir / _CA_KEY)
        self.enclave = IbbeEnclave.load(self.device, {
            "pairing_group": self.group,
            "ca_public_key": ca_key.public_key().encode().hex(),
            "workers": self.workers,
        })
        self.auditor = Auditor(self.ias, ca_key=ca_key)
        self.auditor.approve_measurement(self.enclave.measurement)
        self.certificate = setup_trust(self.enclave, self.auditor)

        pk_bytes = (state_dir / _PUBLIC_KEY).read_bytes()
        self.public_key = ibbe.IbbePublicKey.decode(pk_bytes, self.group)
        self.enclave.call(
            "restore_system", (state_dir / _SEALED_MSK).read_bytes(),
            self.public_key,
        )

        if store is not None:
            self.cloud = store
        else:
            assert cloud_dir is not None
            self.cloud = FileCloudStore(cloud_dir,
                                        compact_every=compact_every)
        self.admin = GroupAdministrator(
            enclave=self.enclave,
            cloud=self.cloud,
            signing_key=_load_scalar(state_dir / _ADMIN_KEY),
            partition_capacity=self.capacity,
            rng=self.rng,
        )

    def load_group(self, group_id: str) -> None:
        if self.admin.cache.get(group_id) is None:
            self.admin.load_group_from_cloud(group_id)

    def metric_sources(self) -> list:
        """Admin-side metric registries (same shape as System.metric_sources).

        Includes the enclave meter (which carries the ``par.*`` engine
        metrics — worker count, tasks, dispatches) and the process-wide
        ``ec.precomp.*`` fixed-base table counters."""
        from repro.ec import precomp_registry
        return [
            self.enclave.meter.registry,
            self.cloud.metrics.registry,
            self.admin.metrics.registry,
            precomp_registry,
        ]


def _open_store(args, compact_every: Optional[int] = None):
    """The store an invocation operates on: the file-backed directory
    behind ``--cloud``, or — with ``--store-url`` — a
    :class:`~repro.net.RemoteCloudStore` talking to a ``repro serve``
    instance.  Both satisfy the same ``CloudStoreProtocol``, so every
    command works identically against either."""
    url = getattr(args, "store_url", None)
    if url:
        from repro.net import connect_store

        return connect_store(url)
    if not getattr(args, "cloud", None):
        print("error: one of --cloud or --store-url is required",
              file=sys.stderr)
        raise SystemExit(2)
    return FileCloudStore(Path(args.cloud), compact_every=compact_every)


def _open_deployment(args, workers: Optional[int] = None,
                     compact_every: Optional[int] = None) -> Deployment:
    return Deployment(Path(args.state), workers=workers,
                      store=_open_store(args, compact_every=compact_every))


def _load_scalar(path: Path) -> ecdsa.EcdsaPrivateKey:
    return ecdsa.EcdsaPrivateKey(int(path.read_text("utf-8").strip(), 16))


def _save_scalar(path: Path, key: ecdsa.EcdsaPrivateKey) -> None:
    path.write_text(f"{key.scalar:064x}\n", encoding="utf-8")


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------

def cmd_init(args) -> int:
    state_dir = Path(args.state)
    state_dir.mkdir(parents=True, exist_ok=True)
    if (state_dir / _CONFIG).exists() and not args.force:
        print(f"error: {state_dir} is already initialized "
              "(use --force to overwrite)", file=sys.stderr)
        return 2
    from repro.par import resolve_workers

    rng = SystemRng()
    group = PairingGroup(preset(args.params))
    workers = resolve_workers(args.workers)

    device_secret = rng.random_bytes(32)
    (state_dir / _DEVICE_SECRET).write_bytes(device_secret)
    device = SgxDevice(rng=rng, device_secret=device_secret)
    ca_key = ecdsa.generate_keypair(rng)
    enclave = IbbeEnclave.load(device, {
        "pairing_group": group,
        "ca_public_key": ca_key.public_key().encode().hex(),
    })
    bound = args.bound or args.capacity
    public_key, sealed_msk = enclave.call("setup_system", bound)

    (state_dir / _SEALED_MSK).write_bytes(sealed_msk)
    (state_dir / _PUBLIC_KEY).write_bytes(public_key.encode())
    _save_scalar(state_dir / _ADMIN_KEY, ecdsa.generate_keypair(rng))
    _save_scalar(state_dir / _CA_KEY, ca_key)
    _save_scalar(state_dir / _IAS_KEY, ecdsa.generate_keypair(rng))
    (state_dir / _CONFIG).write_text(json.dumps({
        "params": args.params,
        "capacity": args.capacity,
        "bound": bound,
        "workers": workers,
    }, indent=2), encoding="utf-8")
    FileCloudStore(Path(args.cloud))  # materialize the store directory
    print(f"initialized: params={args.params}, partition capacity="
          f"{args.capacity}, system bound m={bound}, workers={workers}")
    print(f"enclave measurement: {enclave.measurement.hex()}")
    return 0


def cmd_create_group(args) -> int:
    deployment = _open_deployment(args)
    deployment.admin.create_group(args.group, args.members)
    state = deployment.admin.group_state(args.group)
    print(f"group {args.group!r}: {len(args.members)} members in "
          f"{state.table.partition_count} partitions")
    return 0


def cmd_add_user(args) -> int:
    deployment = _open_deployment(args)
    deployment.load_group(args.group)
    deployment.admin.add_user(args.group, args.user)
    print(f"added {args.user!r} to {args.group!r}")
    return 0


def cmd_remove_user(args) -> int:
    deployment = _open_deployment(args)
    deployment.load_group(args.group)
    deployment.admin.remove_user(args.group, args.user)
    print(f"removed {args.user!r} from {args.group!r} (group key rotated)")
    return 0


def cmd_delete_group(args) -> int:
    deployment = _open_deployment(args)
    deployment.load_group(args.group)
    deployment.admin.delete_group(args.group)
    print(f"deleted group {args.group!r} and its cloud metadata")
    return 0


def cmd_rekey(args) -> int:
    deployment = _open_deployment(args)
    deployment.load_group(args.group)
    deployment.admin.rekey(args.group)
    print(f"re-keyed {args.group!r}")
    return 0


def cmd_show(args) -> int:
    deployment = _open_deployment(args)
    if args.group:
        deployment.load_group(args.group)
        state = deployment.admin.group_state(args.group)
        print(f"group {args.group!r} (epoch {state.epoch}):")
        for pid in state.table.partition_ids:
            members = ", ".join(state.table.members_of(pid))
            print(f"  p{pid}: {members}")
        print(f"  crypto metadata: {state.crypto_footprint()} bytes")
        return 0
    groups = sorted({
        path.strip("/").split("/")[0]
        for path in deployment.cloud.list_dir("/")
    })
    if not groups:
        print("no groups")
        return 0
    for group_id in groups:
        try:
            deployment.load_group(group_id)
            state = deployment.admin.group_state(group_id)
            print(f"{group_id}: {len(state.table)} members, "
                  f"{state.table.partition_count} partitions")
        except (NotFoundError, ReproError) as exc:
            print(f"{group_id}: <unreadable: {exc}>")
    return 0


def cmd_provision(args) -> int:
    deployment = _open_deployment(args)
    raw = provision_user_key(
        deployment.enclave, deployment.certificate,
        deployment.auditor.ca_public_key, args.identity, deployment.rng,
    )
    out = Path(args.out)
    out.write_bytes(raw)
    # The user also needs the public key and the admin verification key;
    # write a companion bundle.
    bundle = {
        "identity": args.identity,
        "params": deployment.params_name,
        "public_key": deployment.public_key.encode().hex(),
        "admin_verification_key":
            deployment.admin.verification_key.encode().hex(),
    }
    out.with_suffix(out.suffix + ".bundle.json").write_text(
        json.dumps(bundle, indent=2), encoding="utf-8"
    )
    print(f"provisioned user key for {args.identity!r} -> {out} "
          f"(+ .bundle.json)")
    return 0


def cmd_client_key(args) -> int:
    key_path = Path(args.user_key)
    bundle = json.loads(
        key_path.with_suffix(key_path.suffix + ".bundle.json")
        .read_text("utf-8")
    )
    if bundle["identity"] != args.identity:
        print("error: user key file belongs to a different identity",
              file=sys.stderr)
        return 2
    group = PairingGroup(preset(bundle["params"]))
    public_key = ibbe.IbbePublicKey.decode(
        bytes.fromhex(bundle["public_key"]), group
    )
    user_key = ibbe.IbbeUserKey(
        identity=args.identity,
        element=G1Element.decode(group, key_path.read_bytes()),
    )
    client = GroupClient(
        group_id=args.group,
        identity=args.identity,
        user_key=user_key,
        public_key=public_key,
        cloud=_open_store(args),
        admin_verification_key=ecdsa.EcdsaPublicKey.decode(
            bytes.fromhex(bundle["admin_verification_key"])
        ),
    )
    client.sync()
    try:
        group_key = client.current_group_key()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(group_key.hex())
    return 0


def cmd_gen_trace(args) -> int:
    """Generate a workload trace file (synthetic or kernel-like)."""
    from repro.workloads import (
        KernelTraceConfig,
        generate_trace,
        save_trace,
        synthesize_kernel_trace,
    )
    from repro.workloads.synthetic import trace_stats

    if args.kind == "synthetic":
        trace = generate_trace(args.ops, args.rate, seed=args.seed)
    else:
        trace = synthesize_kernel_trace(
            KernelTraceConfig(scale=args.scale, seed=args.seed)
        )
    save_trace(args.out, trace)
    print(f"wrote {args.out}: {trace_stats(trace).describe()}")
    return 0


def cmd_replay(args) -> int:
    """Replay a trace file against this deployment and report costs."""
    from repro import obs
    from repro.bench import format_seconds
    from repro.workloads import ReplayEngine, load_trace
    from repro.workloads.replay import IbbeSgxReplayAdapter

    if args.telemetry or args.trace_out:
        obs.enable()
    deployment = _open_deployment(args, workers=args.workers,
                                  compact_every=args.compact)
    injector = None
    if args.faults is not None:
        # Seeded transient store faults (outages / read timeouts /
        # latency spikes), absorbed by the retry layers; the same seed
        # replays the identical fault schedule.  Crash/restart chaos
        # needs the recovery driver: python -m repro.workloads.chaos.
        from repro.faults import FaultInjector, FaultPlan, FaultyCloudStore

        injector = FaultInjector(FaultPlan.store_faults(args.faults))
        faulty = FaultyCloudStore(deployment.cloud, injector)
        deployment.cloud = faulty
        deployment.admin.cloud = faulty
    if deployment.workers > 1:
        deployment.admin.warm_enclave_workers()
    trace = load_trace(args.trace)

    clients = []

    class _DeploymentShim:
        """Adapter expects a System-shaped object."""

        admin = deployment.admin

        @staticmethod
        def make_client(group_id, identity):
            raw = deployment.enclave.call("extract_user_key_raw", identity)
            user_key = ibbe.IbbeUserKey(
                identity=identity,
                element=G1Element.decode(deployment.group, raw),
            )
            client = GroupClient(
                group_id=group_id, identity=identity, user_key=user_key,
                public_key=deployment.public_key, cloud=deployment.cloud,
                admin_verification_key=deployment.admin.verification_key,
            )
            clients.append(client)
            return client

    engine = ReplayEngine(IbbeSgxReplayAdapter(_DeploymentShim()),
                          group_id=args.group,
                          decrypt_sample_every=args.sample_every)
    profiler = None
    if args.profile:
        profiler = obs.SamplingProfiler(hz=args.profile_hz)
        profiler.start()
    try:
        report = engine.run(trace)
    finally:
        if profiler is not None:
            profiler.stop()
    print(f"replayed {report.operations_applied} operations "
          f"({report.adds} add / {report.removes} rm, "
          f"{report.skipped} skipped)")
    print(f"admin total: {format_seconds(report.admin_seconds)}")
    if report.decrypt_samples:
        print(f"mean client decrypt: "
              f"{format_seconds(report.mean_decrypt_seconds)}")
    if injector is not None:
        backoff_ms = deployment.admin.retry.slept_ms + sum(
            client.retry.slept_ms for client in clients
        )
        print(f"faults: {len(injector.log)} injected "
              f"(seed {args.faults!r}), "
              f"retry backoff {backoff_ms:.1f}ms accounted")
    if args.telemetry:
        spans = obs.tracer().spans()
        sources = deployment.metric_sources() + [engine.registry]
        sources.extend(client.registry for client in clients)
        print()
        print("== metrics ==")
        for line in obs.format_metrics(obs.merge_snapshots(sources)):
            print(line)
        print()
        print("== time breakdown (self time per category) ==")
        for line in obs.breakdown_table(spans):
            print(line)
    if profiler is not None:
        print()
        print("== sampling profile ==")
        for line in profiler.report_lines():
            print(line)
    if args.trace_out:
        recorded = obs.tracer().spans()
        if args.trace_out.endswith(".json"):
            written = obs.write_chrome_trace(recorded, args.trace_out)
            print(f"wrote {written} trace events -> {args.trace_out} "
                  "(load in chrome://tracing or ui.perfetto.dev)")
        else:
            written = obs.write_jsonl(recorded, args.trace_out)
            print(f"wrote {written} spans -> {args.trace_out}")
    return 0


def cmd_compact(args) -> int:
    """Compact the file-backed store: fold history into the snapshot
    manifest and truncate the event log.  A store-level operation — no
    enclave or admin state is needed, so only ``--cloud`` is taken."""
    store = _open_store(args)
    truncated = store.compact()
    where = args.cloud or args.store_url
    print(f"compacted {where}: {truncated} events folded into the "
          f"snapshot (horizon {store.snapshot_horizon()}, "
          f"{len(list(store.adversary_view()))} live objects)")
    return 0


class _ServedAdmin:
    """The administrator surface ``repro serve`` forwards: each
    whitelisted operation loads the group's cached state on demand
    (every CLI invocation starts cold) before delegating."""

    def __init__(self, deployment: Deployment) -> None:
        self._deployment = deployment

    def create_group(self, group_id, members):
        return self._deployment.admin.create_group(group_id, members)

    def _loaded(self, group_id):
        self._deployment.load_group(group_id)
        return self._deployment.admin

    def add_user(self, group_id, user):
        return self._loaded(group_id).add_user(group_id, user)

    def add_users(self, group_id, users):
        return self._loaded(group_id).add_users(group_id, users)

    def remove_user(self, group_id, user):
        return self._loaded(group_id).remove_user(group_id, user)

    def rekey(self, group_id):
        return self._loaded(group_id).rekey(group_id)

    def delete_group(self, group_id):
        return self._loaded(group_id).delete_group(group_id)

    def members(self, group_id):
        return self._loaded(group_id).members(group_id)

    def sync_group(self, group_id):
        return self._loaded(group_id).sync_group(group_id)


def cmd_serve(args) -> int:
    """Serve the file-backed store (and optionally the admin) over TCP.

    Prints the bound URL on the first line (``serving tcp://...``) so a
    supervising process can parse it — an ephemeral ``--port 0`` is the
    default.  With ``--state``, the deployment's administrator is also
    hosted and the whitelisted admin operations become callable via
    ``repro.net.RemoteAdmin``.  With ``--request-log``, every handled
    request appends one JSONL record (see docs/API.md for the schema);
    ``--slow-ms`` sets the threshold for the record's ``slow`` flag.

    ``--shards N`` starts ``N`` servers over the same store — one
    ``serving`` line each, in shard order, so a
    :class:`repro.net.ShardDirectory` built from those urls routes
    groups exactly like the deployment's own ring.  With an explicit
    ``--port`` the shards bind consecutive ports; each server's
    ``ops.stats`` / ``ops.health`` carries its shard identity.
    """
    import asyncio

    from repro.net import AdminBridge, RequestLog, StoreServer

    nshards = max(1, args.shards)
    if nshards > 1 and args.state:
        raise ValidationError(
            "--shards hosts the store fleet only; --state (the hosted "
            "administrator) requires a single server")
    store = FileCloudStore(Path(args.cloud),
                           compact_every=args.compact_every)
    bridge = None
    if args.state:
        deployment = Deployment(Path(args.state), store=store)
        bridge = AdminBridge(_ServedAdmin(deployment))
    request_log = None
    if args.request_log:
        request_log = RequestLog(args.request_log, slow_ms=args.slow_ms)

    async def run() -> None:
        servers = []
        for index in range(nshards):
            port = args.port + index if args.port else 0
            shard_info = None
            if nshards > 1:
                shard_info = {"shard_id": f"shard-{index}",
                              "index": index, "nshards": nshards}
            server = StoreServer(
                store, host=args.host, port=port,
                admin=bridge if index == 0 else None,
                name=(f"repro-store/shard-{index}" if nshards > 1
                      else "repro-store"),
                request_log=request_log, shard_info=shard_info,
            )
            await server.start()
            suffix = f"  (shard {index}/{nshards})" if nshards > 1 else ""
            print(f"serving {server.url}{suffix}", flush=True)
            servers.append(server)
        print(f"admin endpoint: {'enabled' if bridge else 'disabled'}",
              flush=True)
        if request_log is not None:
            print(f"request log: {request_log.path} "
                  f"(slow >= {request_log.slow_ms:g} ms)", flush=True)
        try:
            await asyncio.gather(*(s.closed.wait() for s in servers))
        finally:
            for server in servers:
                await server.stop()
        for server in servers:
            if server.crashed is not None:
                raise server.crashed

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        if request_log is not None:
            request_log.close()
    return 0


def cmd_scale(args) -> int:
    """Run the scale suite through the same argument set (and driver)
    as ``python -m repro.workloads.scale``."""
    from repro.workloads.scale import run_from_args

    return run_from_args(args)


def _server_stats_table(stats: dict) -> list:
    """Human-readable rendering of an ``ops.stats`` snapshot."""
    from repro import obs

    conns = stats.get("connections", {})
    reqs = stats.get("requests", {})
    store = stats.get("store", {})
    rlog = stats.get("request_log", {})
    lines = [
        f"server         {stats.get('server', '?')}  "
        f"pid={stats.get('pid', '?')}  "
        f"protocol={stats.get('protocol', '?')}",
        f"uptime         {stats.get('uptime_s', 0.0):.1f} s",
        f"features       {', '.join(stats.get('features', []))}",
        f"connections    active={conns.get('active', 0)}  "
        f"total={conns.get('total', 0)}  "
        f"poll_waiters={conns.get('poll_waiters', 0)}",
        f"requests       total={reqs.get('total', 0)}  "
        f"errors={reqs.get('errors', 0)}  "
        f"bytes_in={reqs.get('bytes_in', 0)}  "
        f"bytes_out={reqs.get('bytes_out', 0)}",
        f"store          type={store.get('type', '?')}  "
        f"head={store.get('head_sequence', '?')}  "
        f"recoveries={store.get('recoveries', 0)}",
    ]
    if rlog.get("enabled"):
        lines.append(
            f"request log    {rlog.get('path') or '<memory>'}  "
            f"records={rlog.get('records', 0)}  "
            f"slow={rlog.get('slow', 0)}  errors={rlog.get('errors', 0)}")
    else:
        lines.append("request log    disabled")
    slo = stats.get("slo", {})
    methods = slo.get("methods", {})
    if methods:
        lines.append("")
        lines.append(f"{'method':<22} {'count':>7} {'errors':>6} "
                     f"{'p50ms':>8} {'p95ms':>8} {'p99ms':>8} {'err%':>6}")
        rows = list(methods.items()) + [("(all)", slo.get("all", {}))]
        for name, window in rows:
            if not window:
                continue
            lines.append(
                f"{name:<22} {window.get('count', 0):>7} "
                f"{window.get('errors', 0):>6} "
                f"{window.get('p50_ms', 0.0):>8.3f} "
                f"{window.get('p95_ms', 0.0):>8.3f} "
                f"{window.get('p99_ms', 0.0):>8.3f} "
                f"{100.0 * window.get('error_rate', 0.0):>6.2f}")
    metrics = stats.get("metrics", {})
    if metrics:
        lines.append("")
        lines.extend(obs.format_metrics(metrics))
    return lines


def cmd_stats(args) -> int:
    """Dump a metric snapshot: the deployment's merged local registries
    (``--state``), or a live server's operational snapshot fetched over
    the wire via ``ops.stats`` (``--store-url`` alone)."""
    from repro import obs

    if args.store_url and not args.state:
        from repro.net import connect_store

        store = connect_store(args.store_url)
        try:
            stats = store.server_stats()
        finally:
            store.close()
        if args.format == "json":
            text = json.dumps(stats, indent=2, sort_keys=True)
        elif args.format == "prom":
            text = obs.metrics_to_prometheus(
                stats.get("metrics", {})).rstrip("\n")
        else:
            text = "\n".join(_server_stats_table(stats))
    else:
        if not args.state:
            raise ValidationError(
                "stats needs --state (local deployment snapshot) or "
                "--store-url (live server snapshot)")
        deployment = _open_deployment(args)
        groups = sorted({
            path.strip("/").split("/")[0]
            for path in deployment.cloud.list_dir("/")
        })
        for group_id in groups:
            try:
                deployment.load_group(group_id)
            except (NotFoundError, ReproError):
                pass
        metrics = obs.merge_snapshots(deployment.metric_sources())
        metrics.update(obs.tracer().registry.snapshot())
        if args.format == "json":
            text = json.dumps(metrics, indent=2, sort_keys=True)
        elif args.format == "prom":
            text = obs.metrics_to_prometheus(metrics).rstrip("\n")
        else:
            text = "\n".join(obs.format_metrics(metrics))
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {len(text.splitlines())} lines -> {args.out}")
    else:
        print(text)
    return 0


def cmd_health(args) -> int:
    """Probe one or more servers' ``ops.health`` endpoints.

    Exit status encodes the verdict so the probe slots straight into CI
    and liveness checks: 0 = ok, 1 = degraded/failing, 2 = unreachable.
    ``--store-url`` may be repeated (a sharded fleet): every endpoint is
    probed and the worst answer wins — one dead shard makes the whole
    fleet unhealthy, which is exactly what a liveness check should see.
    """
    from repro.net import aggregate_health

    report = aggregate_health(args.store_url, timeout=args.timeout)
    if args.json:
        payload = (report if len(args.store_url) > 1
                   else report["endpoints"][0])
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for health in report["endpoints"]:
            status = health.get("status", "?")
            if status == "unreachable":
                print(f"unreachable: {health.get('error', '')}",
                      file=sys.stderr)
                continue
            checks = health.get("checks", {})
            detail = "  ".join(
                f"{k}={v}" for k, v in sorted(checks.items()))
            prefix = (f"{health.get('url')}  "
                      if len(report["endpoints"]) > 1 else "")
            print(f"{prefix}{status}  "
                  f"uptime={health.get('uptime_s', 0.0):.1f}s  {detail}")
        if len(report["endpoints"]) > 1:
            print(f"fleet: {report['status']}")
    return report["exit_code"]


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="IBBE-SGX group access control (DSN'18 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def store_options(p):
        p.add_argument("--cloud", default=None,
                       help="cloud directory (file-backed store)")
        p.add_argument("--store-url", default=None, metavar="URL",
                       help="tcp://host:port of a running `repro serve` "
                            "instance (alternative to --cloud)")

    def common(p):
        p.add_argument("--state", required=True,
                       help="state directory (admin-side identities)")
        store_options(p)

    def workers_option(p):
        p.add_argument("--workers", type=int, default=None,
                       help="parallel engine worker count (default: the "
                            "count persisted by init, else REPRO_WORKERS, "
                            "else serial); results are byte-identical for "
                            "any value")

    p = sub.add_parser("init", help="set up a new deployment")
    p.add_argument("--state", required=True,
                   help="state directory (admin-side identities)")
    p.add_argument("--cloud", required=True,
                   help="cloud directory (file-backed store)")
    p.add_argument("--params", default="toy64",
                   choices=["toy64", "std160"],
                   help="pairing preset (std160 = the paper's level)")
    p.add_argument("--capacity", type=int, default=4,
                   help="partition capacity")
    p.add_argument("--bound", type=int, default=None,
                   help="enclave system bound m (default: capacity)")
    workers_option(p)
    p.add_argument("--force", action="store_true")
    p.set_defaults(func=cmd_init)

    p = sub.add_parser("create-group", help="create a group")
    common(p)
    p.add_argument("group")
    p.add_argument("members", nargs="+")
    p.set_defaults(func=cmd_create_group)

    for name, fn, help_text in (
        ("add-user", cmd_add_user, "add a member"),
        ("remove-user", cmd_remove_user, "revoke a member"),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p)
        p.add_argument("group")
        p.add_argument("user")
        p.set_defaults(func=fn)

    p = sub.add_parser("rekey", help="rotate a group key")
    common(p)
    p.add_argument("group")
    p.set_defaults(func=cmd_rekey)

    p = sub.add_parser("delete-group", help="delete a group entirely")
    common(p)
    p.add_argument("group")
    p.set_defaults(func=cmd_delete_group)

    p = sub.add_parser("show", help="inspect groups")
    common(p)
    p.add_argument("group", nargs="?")
    p.set_defaults(func=cmd_show)

    p = sub.add_parser("provision",
                       help="extract a user secret key (Fig. 3 flow)")
    common(p)
    p.add_argument("identity")
    p.add_argument("--out", required=True, help="user key output file")
    p.set_defaults(func=cmd_provision)

    p = sub.add_parser("client-key",
                       help="derive a group key as a user")
    store_options(p)
    p.add_argument("--user-key", required=True)
    p.add_argument("group")
    p.add_argument("identity")
    p.set_defaults(func=cmd_client_key)

    p = sub.add_parser("gen-trace", help="generate a workload trace file")
    p.add_argument("--kind", choices=["synthetic", "kernel"],
                   default="synthetic")
    p.add_argument("--ops", type=int, default=200,
                   help="operation count (synthetic)")
    p.add_argument("--rate", type=float, default=0.3,
                   help="revocation rate (synthetic)")
    p.add_argument("--scale", type=float, default=0.005,
                   help="down-scaling factor (kernel)")
    p.add_argument("--seed", default="cli")
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_gen_trace)

    p = sub.add_parser("replay",
                       help="replay a trace file against this deployment")
    common(p)
    p.add_argument("--trace", required=True)
    workers_option(p)
    p.add_argument("--group", default="replayed")
    p.add_argument("--sample-every", type=int, default=0,
                   help="sample a client decrypt every N operations")
    p.add_argument("--telemetry", action="store_true",
                   help="enable span tracing and print a metric snapshot "
                        "and per-category time breakdown after the replay")
    p.add_argument("--trace-out", default=None,
                   help="write the recorded spans to this file: Chrome "
                        "trace_event JSON when it ends in .json "
                        "(chrome://tracing / Perfetto), JSONL otherwise")
    p.add_argument("--profile", action="store_true",
                   help="run the stdlib sampling profiler during the "
                        "replay and print a span-attributed report")
    p.add_argument("--profile-hz", type=int, default=97,
                   help="profiler sampling rate (default: 97 Hz)")
    p.add_argument("--faults", default=None, metavar="SEED",
                   help="inject seeded transient store faults during the "
                        "replay (outages, read timeouts, latency spikes); "
                        "the retry layers absorb them and the same seed "
                        "reproduces the identical fault schedule")
    p.add_argument("--compact", type=int, default=None, metavar="N",
                   help="automatically compact the store every N "
                        "mutations during the replay (snapshot + event-"
                        "log truncation)")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("compact",
                       help="fold store history into a snapshot and "
                            "truncate the event log")
    store_options(p)
    p.set_defaults(func=cmd_compact)

    p = sub.add_parser("serve",
                       help="serve the file-backed store (and optionally "
                            "the admin) over TCP for --store-url clients")
    p.add_argument("--cloud", required=True,
                   help="cloud directory (file-backed store) to serve")
    p.add_argument("--state", default=None,
                   help="state directory; when given, the deployment's "
                        "administrator is hosted too and remote "
                        "`repro.net.RemoteAdmin` calls are accepted")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0 = ephemeral; the bound URL "
                        "is printed on startup)")
    p.add_argument("--compact-every", type=int, default=None, metavar="N",
                   help="compact the served store automatically every N "
                        "mutations")
    p.add_argument("--request-log", default=None, metavar="PATH",
                   help="append one JSONL record per handled request to "
                        "PATH (request id, trace id, method, bytes, "
                        "latency, outcome, peer)")
    p.add_argument("--slow-ms", type=float, default=250.0,
                   help="latency threshold for the request log's `slow` "
                        "flag (default: 250 ms)")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="serve N shard endpoints over the same store "
                        "(one `serving` line each, in shard order; "
                        "with --port they bind consecutive ports)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("scale",
                       help="run the million-user scale suite (Zipf "
                            "groups, bursty churn, OCC contention, "
                            "sync storms) or its calibration mode")
    from repro.workloads.scale import add_scale_arguments

    add_scale_arguments(p)
    p.set_defaults(func=cmd_scale)

    p = sub.add_parser("stats",
                       help="dump a metric snapshot: the deployment's "
                            "merged registries (--state) or a live "
                            "server's operational snapshot (--store-url)")
    p.add_argument("--state", default=None,
                   help="state directory (admin-side identities); omit "
                        "with --store-url to query the live server's "
                        "ops.stats endpoint instead")
    store_options(p)
    p.add_argument("--format", choices=["table", "json", "prom"],
                   default="table",
                   help="output format: human table, JSON object, or "
                        "Prometheus text exposition")
    p.add_argument("--out", default=None,
                   help="write to this file instead of stdout")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("health",
                       help="probe running servers' ops.health "
                            "endpoints (exit 0 ok / 1 degraded-failing / "
                            "2 unreachable; worst answer wins)")
    p.add_argument("--store-url", required=True, metavar="URL",
                   action="append",
                   help="tcp://host:port of a running `repro serve`; "
                        "repeat once per shard to probe a whole fleet")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="connect/request timeout in seconds")
    p.add_argument("--json", action="store_true",
                   help="print the raw health payload as JSON")
    p.set_defaults(func=cmd_health)

    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout went away (e.g. ``repro stats | head``); not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
