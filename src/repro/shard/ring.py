"""Consistent group-to-shard placement (rendezvous / highest-random-weight).

Every participant — shard routers, network directories, offline tools —
must agree on which shard owns a group using nothing but the shard-id
list and the group id.  Rendezvous hashing gives that with no shared
state: score every ``(shard, group)`` pair with a hash and pick the
highest.  Unlike ``hash(gid) % n`` the mapping is *stable under
membership change*: removing one shard reassigns only the groups that
shard owned, which is what keeps a future resharding path from
rewriting the whole placement.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

from repro.errors import ValidationError


def rendezvous_score(shard_id: str, group_id: str) -> int:
    """The HRW weight of ``shard_id`` for ``group_id``."""
    payload = shard_id.encode("utf-8") + b"\x00" + group_id.encode("utf-8")
    return int.from_bytes(
        hashlib.sha256(b"repro-shard-hrw:" + payload).digest(), "big"
    )


class ShardRing:
    """A fixed roster of shard ids with rendezvous-hash ownership."""

    def __init__(self, shard_ids: Sequence[str]) -> None:
        if not shard_ids:
            raise ValidationError("a shard ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValidationError("shard ids must be unique")
        self.shard_ids: List[str] = list(shard_ids)

    def __len__(self) -> int:
        return len(self.shard_ids)

    def owner(self, group_id: str) -> int:
        """Index of the shard owning ``group_id`` (deterministic,
        uniform over shards, stable across processes)."""
        return max(
            range(len(self.shard_ids)),
            key=lambda i: rendezvous_score(self.shard_ids[i], group_id),
        )

    def owner_id(self, group_id: str) -> str:
        return self.shard_ids[self.owner(group_id)]

    def assignments(self, group_ids: Sequence[str]) -> List[List[str]]:
        """Group ids partitioned by owning shard index."""
        buckets: List[List[str]] = [[] for _ in self.shard_ids]
        for group_id in group_ids:
            buckets[self.owner(group_id)].append(group_id)
        return buckets
