"""Sharded multi-enclave deployments (kill-any-shard failover).

Consistent-hash group partitioning across ``N`` enclave instances,
MAGE-style mutual attestation for master-secret provisioning, and a
respawn/re-attest/roll-forward failover path — byte-identical per group
to the single-enclave system for any shard count.  See ``DESIGN.md``
§12 for the topology and trust story.
"""

from repro.shard.ring import ShardRing, rendezvous_score
from repro.shard.rng import CONTROL_SCOPE, GroupRoutedRng
from repro.shard.system import Shard, ShardedSystem

__all__ = [
    "ShardRing",
    "rendezvous_score",
    "GroupRoutedRng",
    "CONTROL_SCOPE",
    "Shard",
    "ShardedSystem",
]
