"""Sharded multi-enclave deployment with kill-any-shard failover.

:class:`ShardedSystem` runs ``N`` complete enclave instances — each with
its own :class:`~repro.sgx.SgxDevice`, EPC, monotonic counters and
sealed master-secret copy — against one shared cloud store, and
partitions groups across them by rendezvous hash
(:class:`~repro.shard.ring.ShardRing`).  The three pillars:

**Provisioning.**  Shard 0 runs IBBE system setup; every other shard
receives the master secret through the MAGE-style mutual-attestation
exchange of :func:`repro.sgx.provision_master_secret` — no Auditor/CA,
each enclave checks the peer's IAS-signed report against the pinned IAS
key in its *measured* configuration and requires the peer's measurement
to equal its own.  Each shard then holds the MSK sealed under its own
device fuse key, so it can restart without repeating the migration.

**Routing.**  Admin operations and client syncs for a group go to the
shard that owns it.  One :class:`~repro.shard.rng.GroupRoutedRng` is
shared by every device, enclave and administrator, and each routed
operation runs inside ``rng.scoped("group:<id>")`` — which makes a
group's cloud bytes a pure function of the master seed, the group id
and the group's own operation sequence.  ``ShardedSystem(N)`` is
therefore *byte-identical per group* to the single-enclave deployment
(``ShardedSystem(1)``, whose one shard is a plain
:class:`repro.System`) for every ``N``, placement and interleaving.
All shards share one admin signing key (ECDSA nonces are RFC 6979
deterministic, so signatures don't depend on which shard signs).

**Failover.**  :meth:`kill_shard` destroys a shard's enclave in place
(EPC freed, secrets scrubbed); the device — and with it the monotonic
counters guarding sealed-blob freshness — survives, as on real
hardware.  The router detects the dead shard on the next routed
operation (or an explicit :meth:`health` probe) and respawns it:
:meth:`repro.System.restart_enclave` reloads the measured
configuration, unseals the MSK, and rolls the administrator's cached
group state forward from the cloud journal; then the shard
*re-attests* to a live peer (retried through a
:class:`~repro.faults.RetryPolicy`, since injected ``attest.fail``
faults raise the retryable
:class:`~repro.errors.TransientAttestationError`) before serving a
single operation.  Respawn consumes only control-scope randomness, so
a post-failover group continues byte-for-byte where it left off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Dict, List, Optional

from repro.cloud import CloudStore, LatencyModel
from repro.core import GroupClient
from repro.crypto import ecdsa
from repro.errors import EnclaveError, ValidationError
from repro.faults.retry import RetryPolicy
from repro.obs import MetricSource, telemetry_snapshot
from repro.pairing import PairingGroup, preset
from repro.sgx import (
    IntelAttestationService,
    SgxDevice,
    mutual_attest,
    provision_master_secret,
)
from repro.shard.ring import ShardRing
from repro.shard.rng import GroupRoutedRng


@dataclass
class Shard:
    """One enclave instance of a sharded deployment.

    ``system`` is a full single-enclave :class:`repro.System` (with the
    Auditor-specific fields unset — shard trust comes from mutual
    attestation, not a CA), so the shard inherits the whole restart
    machinery.  ``attested`` gates serving: a shard that has not
    completed its (re-)attestation handshake never sees an operation.
    """

    index: int
    shard_id: str
    system: Any                     # repro.System (import deferred; cycle)
    alive: bool = True
    attested: bool = False
    respawns: int = 0

    @property
    def enclave(self):
        return self.system.enclave

    @property
    def admin(self):
        return self.system.admin


class ShardedSystem:
    """``N`` mutually attested enclave shards over one cloud store."""

    def __init__(self, nshards: int = 2,
                 partition_capacity: int = 1000,
                 params: str = "std160",
                 seed: str = "shard",
                 latency: Optional[LatencyModel] = None,
                 auto_repartition: bool = True,
                 system_bound: Optional[int] = None,
                 pipeline: bool = True,
                 workers: Optional[int] = None,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        if nshards < 1:
            raise ValidationError("nshards must be >= 1")
        from repro.par import resolve_workers

        self.seed = seed
        self.rng = GroupRoutedRng(seed)
        self.ring = ShardRing([f"shard-{i}" for i in range(nshards)])
        self.pairing_group = PairingGroup(preset(params))
        self.cloud = CloudStore(latency=latency)
        # The IAS is the deployment's only trust root.  Its report key is
        # pinned in every shard's *measured* configuration below; its own
        # randomness rides a dedicated stream so IAS identity generation
        # never perturbs group bytes.
        self.ias = IntelAttestationService(rng=self.rng.stream("ias"))
        # One signing key for every shard's administrator: clients verify
        # group metadata under a single key no matter which shard signed
        # it, and RFC 6979 nonces keep the signatures shard-independent.
        self._signing_key = ecdsa.generate_keypair(
            self.rng.stream("admin-signing"))
        self._partition_capacity = partition_capacity
        self._auto_repartition = auto_repartition
        self._pipeline = pipeline
        self._workers = resolve_workers(workers)
        # Attestation handshakes consult the ambient fault injector at
        # several sites per attempt, so give the exchange more headroom
        # than cloud I/O gets: an exhausted handshake aborts deployment.
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=8, seed=f"shard:{seed}")
        self.public_key = None
        self.shards: List[Shard] = []
        self._user_keys: Dict[str, object] = {}
        self._clients: List[GroupClient] = []
        self._groups: Dict[str, int] = {}

        with self.rng.scoped("setup"):
            first = self._build_shard(0, system_bound or partition_capacity)
        first.attested = True    # setup shard is trusted by construction
        self.shards.append(first)
        self.public_key = first.system.public_key
        for index in range(1, nshards):
            shard = self._build_shard(index, None)
            self._provision_from(first, shard)
            self.shards.append(shard)

    # -- construction -----------------------------------------------------------

    def _enclave_config(self) -> Dict[str, Any]:
        # Identical across shards — measurement equality between peers is
        # a *precondition* of the mutual-attestation handshake.  The IAS
        # report key is pinned here, inside the measurement, so swapping
        # the verification root means running a different (rejectable)
        # build: the MAGE trust story.
        return {
            "pairing_group": self.pairing_group,
            "ias_report_key": self.ias.report_public_key.encode().hex(),
            "workers": self._workers,
            "precompute": False,
        }

    def _build_shard(self, index: int, system_bound: Optional[int]) -> Shard:
        from repro import System
        from repro.core import GroupAdministrator
        from repro.enclave_app import IbbeEnclave

        # Deterministic per-shard device secret: fuse/attestation keys
        # (and hence device ids) are a function of (seed, index), never
        # of the shared rng — manufacturing draws no group bytes.
        secret = sha256(
            f"repro:shard-device:{self.seed}:{index}".encode()).digest()
        device = SgxDevice(rng=self.rng, device_secret=secret)
        self.ias.register_device(device.device_id,
                                 device.attestation_public_key)
        config = self._enclave_config()
        enclave = IbbeEnclave.load(device, config)
        if system_bound is not None:
            public_key, sealed_msk = enclave.call("setup_system",
                                                  system_bound)
        else:
            public_key, sealed_msk = self.public_key, b""
        admin = GroupAdministrator(
            enclave=enclave,
            cloud=self.cloud,
            signing_key=self._signing_key,
            partition_capacity=self._partition_capacity,
            rng=self.rng,
            auto_repartition=self._auto_repartition,
            pipeline=self._pipeline,
        )
        system = System(
            group=self.pairing_group, device=device, enclave=enclave,
            ias=self.ias, auditor=None, cloud=self.cloud, admin=admin,
            certificate=None, public_key=public_key, sealed_msk=sealed_msk,
            rng=self.rng, workers=self._workers, enclave_config=config,
        )
        return Shard(index=index, shard_id=f"shard-{index}", system=system)

    def _provision_from(self, source: Shard, target: Shard) -> None:
        """Migrate the MSK to ``target`` via mutual attestation, retrying
        the whole exchange on transient (injected) failures."""
        def attempt():
            return provision_master_secret(
                source.enclave, target.enclave, self.ias, self.public_key)

        target.system.sealed_msk = self.retry_policy.run(
            attempt, label=f"provision:{target.shard_id}")
        target.attested = True

    # -- routing ----------------------------------------------------------------

    @property
    def nshards(self) -> int:
        return len(self.shards)

    def owner(self, group_id: str) -> int:
        """Index of the shard owning ``group_id``."""
        return self.ring.owner(group_id)

    def _serving_shard(self, group_id: str) -> Shard:
        """The owning shard, respawned and re-attested if found dead.

        This is the failover path: detection happens on the routed
        operation itself, *before* the group scope is entered, so the
        recovery handshake's randomness stays in the control scope.
        """
        shard = self.shards[self.owner(group_id)]
        if not shard.alive:
            self.respawn_shard(shard.index)
        if not shard.attested:
            raise EnclaveError(
                f"{shard.shard_id} has not completed attestation")
        return shard

    # -- group operations (each runs in its group's rng scope) ------------------

    def create_group(self, group_id: str, members: List[str]):
        shard = self._serving_shard(group_id)
        with self.rng.scoped(f"group:{group_id}"):
            state = shard.admin.create_group(group_id, members)
        self._groups[group_id] = shard.index
        return state

    def add_user(self, group_id: str, identity: str):
        shard = self._serving_shard(group_id)
        with self.rng.scoped(f"group:{group_id}"):
            return shard.admin.add_user(group_id, identity)

    def add_users(self, group_id: str, identities: List[str]):
        shard = self._serving_shard(group_id)
        with self.rng.scoped(f"group:{group_id}"):
            return shard.admin.add_users(group_id, identities)

    def remove_user(self, group_id: str, identity: str):
        shard = self._serving_shard(group_id)
        with self.rng.scoped(f"group:{group_id}"):
            return shard.admin.remove_user(group_id, identity)

    def rekey(self, group_id: str) -> None:
        shard = self._serving_shard(group_id)
        with self.rng.scoped(f"group:{group_id}"):
            shard.admin.rekey(group_id)

    def delete_group(self, group_id: str) -> None:
        shard = self._serving_shard(group_id)
        with self.rng.scoped(f"group:{group_id}"):
            shard.admin.delete_group(group_id)
        self._groups.pop(group_id, None)

    def group_state(self, group_id: str):
        return self._serving_shard(group_id).admin.group_state(group_id)

    def group_ids(self) -> List[str]:
        return sorted(self._groups)

    # -- clients ----------------------------------------------------------------

    def user_key(self, identity: str):
        """Provision (and cache) a user's IBBE secret key.

        Extraction is deterministic in (MSK, identity), so any live
        shard gives the same key; the certificate-wrapped Fig. 3 channel
        belongs to the Auditor deployment, not the sharded one.
        """
        if identity not in self._user_keys:
            from repro import ibbe as _ibbe
            from repro.pairing.group import G1Element

            shard = next(s for s in self.shards if s.alive and s.attested)
            raw = shard.enclave.call("extract_user_key_raw", identity)
            self._user_keys[identity] = _ibbe.IbbeUserKey(
                identity=identity,
                element=G1Element.decode(self.pairing_group, raw),
            )
        return self._user_keys[identity]

    @property
    def verification_key(self):
        return self.shards[0].admin.verification_key

    def make_client(self, group_id: str, identity: str) -> GroupClient:
        """A client of ``group_id``; syncs hit the shared cloud store, so
        clients are oblivious to shard placement and failover."""
        client = GroupClient(
            group_id=group_id,
            identity=identity,
            user_key=self.user_key(identity),
            public_key=self.public_key,
            cloud=self.cloud,
            admin_verification_key=self.verification_key,
        )
        self._clients.append(client)
        return client

    # -- failure and recovery ---------------------------------------------------

    def kill_shard(self, index: int) -> None:
        """Crash a shard in place: its enclave is destroyed (EPC freed,
        secrets scrubbed) but its device — sealed blobs' fuse key and the
        monotonic counters — survives, as on a real machine."""
        shard = self.shards[index]
        shard.enclave.destroy()
        shard.alive = False
        shard.attested = False

    def respawn_shard(self, index: int) -> Shard:
        """Bring a dead shard back: restart the enclave from its measured
        config + sealed MSK, roll cached group state forward from the
        cloud journal, and re-attest to a live peer before serving."""
        shard = self.shards[index]
        shard.system.restart_enclave()
        shard.alive = True
        shard.respawns += 1
        peer = next(
            (s for s in self.shards
             if s.index != index and s.alive and s.attested), None)
        if peer is not None:
            self.retry_policy.run(
                lambda: mutual_attest(peer.enclave, shard.enclave, self.ias),
                label=f"reattest:{shard.shard_id}",
            )
        # With no live peer (or N=1) the sealed MSK is the trust anchor:
        # only the genuine measured build on this device can unseal it.
        shard.attested = True
        return shard

    # -- health -----------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Probe every shard (a cheap ecall) and report worst-of status:
        ``ok`` when all shards serve, ``degraded`` otherwise."""
        shards = []
        all_ok = True
        for shard in self.shards:
            probe_ok = True
            try:
                shard.enclave.call("get_public_key")
            except EnclaveError:
                probe_ok = False
            ok = probe_ok and shard.alive and shard.attested
            all_ok = all_ok and ok
            shards.append({
                "shard": shard.shard_id,
                "alive": shard.alive and probe_ok,
                "attested": shard.attested,
                "respawns": shard.respawns,
                "groups": sorted(g for g, i in self._groups.items()
                                 if i == shard.index),
            })
        return {"status": "ok" if all_ok else "degraded",
                "nshards": self.nshards, "shards": shards}

    # -- observability ----------------------------------------------------------

    def metric_sources(self) -> List[MetricSource]:
        """The shared cloud registry, every shard's enclave + admin
        registries, and each client's registry.  Names collide across
        shards (merged views keep the last shard's ``sgx.*`` numbers);
        use :meth:`total_crossings` for deployment-wide sums."""
        sources: List[MetricSource] = [self.cloud.metrics.registry]
        for shard in self.shards:
            sources.append(shard.enclave.meter.registry)
            sources.append(shard.admin.metrics.registry)
        sources.extend(client.registry for client in self._clients)
        return sources

    def total_crossings(self) -> int:
        """Enclave boundary crossings summed over all shards (the merge
        in :meth:`telemetry` overwrites same-named counters instead)."""
        return sum(shard.enclave.meter.crossings for shard in self.shards)

    def telemetry(self) -> Dict[str, Any]:
        return telemetry_snapshot(self.metric_sources())

    def close(self) -> None:
        for client in self._clients:
            closer = getattr(client, "close", None)
            if closer is not None:
                closer()
        self._clients.clear()
        for shard in self.shards:
            shard.enclave.destroy()
            shard.alive = False
