"""Scope-routed randomness: the byte-identity mechanism of sharding.

A group's cloud bytes depend on random draws made while operating on it
(the enclave's group keys, envelope nonces and parallel parent seeds,
and the administrator's partition picks).  With one *linear* RNG stream
those draws depend on everything that ran before them — so moving a
group to a different enclave, or interleaving it differently with other
groups, would change its bytes.  :class:`GroupRoutedRng` removes that
coupling: every draw is routed to a per-scope
:class:`~repro.crypto.rng.DeterministicRng` forked from one master seed
by label alone.  Scoped to ``group:<id>`` around each routed operation,
a group's randomness becomes a pure function of ``(master seed, group
id, the group's own operation sequence)`` — independent of shard count,
placement and cross-group interleaving.  That is the whole proof
obligation of the cross-shard equivalence tests: ``ShardedSystem(N)``
produces the same per-group bytes for every ``N`` because no draw ever
crosses a scope.

The same construction already appears at smaller scale in the parallel
engine (per-partition seeds derived by index from one parent) and the
fault injector (per-category forks); this lifts it to whole-deployment
granularity.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

from repro.crypto.rng import DeterministicRng

#: Draws made outside any explicit scope: device manufacturing,
#: attestation transport, MSK migration envelopes — randomness that
#: never reaches cloud bytes or group keys.
CONTROL_SCOPE = "control"


class GroupRoutedRng:
    """An :class:`~repro.crypto.rng.Rng` that routes each draw to the
    stream of the currently active scope.

    Scopes are entered with :meth:`scoped` (re-entrant; nesting stacks)
    and their streams are lazily forked from the master seed, so two
    deployments sharing a seed agree on every scope's stream regardless
    of the order scopes are first touched in.
    """

    def __init__(self, seed: str = "shard") -> None:
        self.seed = seed
        self._master = DeterministicRng(f"shard-rng:{seed}")
        self._streams: Dict[str, DeterministicRng] = {}
        self._stack = [CONTROL_SCOPE]

    # -- scope management ------------------------------------------------------

    @property
    def scope(self) -> str:
        """The label draws are currently routed to."""
        return self._stack[-1]

    def stream(self, label: str) -> DeterministicRng:
        """The (lazily forked) stream for ``label``."""
        stream = self._streams.get(label)
        if stream is None:
            stream = self._master.fork(label)
            self._streams[label] = stream
        return stream

    @contextmanager
    def scoped(self, label: str) -> Iterator["GroupRoutedRng"]:
        """Route draws to ``label``'s stream for the duration."""
        self._stack.append(label)
        try:
            yield self
        finally:
            self._stack.pop()

    # -- the Rng interface -----------------------------------------------------

    def random_bytes(self, n: int) -> bytes:
        return self.stream(self.scope).random_bytes(n)

    def randint_below(self, bound: int) -> int:
        return self.stream(self.scope).randint_below(bound)

    # -- crash-recovery snapshots ----------------------------------------------

    def getstate(self) -> Tuple:
        """Snapshot every touched stream (plus the scope stack), so a
        chaos driver can rewind a redone operation onto the exact bytes
        its first attempt consumed — the same contract as
        :meth:`DeterministicRng.getstate`."""
        return (
            tuple(self._stack),
            {label: stream.getstate()
             for label, stream in self._streams.items()},
        )

    def setstate(self, state: Tuple) -> None:
        stack, streams = state
        self._stack = list(stack)
        # Streams first touched after the snapshot are dropped so a redo
        # re-forks them at position zero, exactly like the first attempt.
        for label in list(self._streams):
            if label not in streams:
                del self._streams[label]
        for label, stream_state in streams.items():
            self.stream(label).setstate(stream_state)
