"""File-backed cloud store.

Persists the :class:`~repro.cloud.store.CloudStore` contract to a local
directory so separate processes (an administrator CLI invocation, client
daemons) share one storage substrate:

* each object lives at ``objects/<urlsafe path>`` with a sidecar version;
* the event log (long-polling source) is an append-only JSONL file;
* metrics are process-local (not persisted).

Concurrency model: single-writer-at-a-time per object (the paper's single
administrator; the multi-admin extension layers optimistic concurrency on
top via conditional puts, which this store honours).

Crash consistency: every mutation — single put/delete or batch commit —
is first recorded in a ``commit.journal`` written with temp-file +
``os.replace``, then applied (each data/meta file itself replaced
atomically), then logged to the event file, then the journal is removed.
A process killed anywhere in that sequence leaves either no journal (the
mutation never happened) or a complete journal that the next
:class:`FileCloudStore` opened on the directory rolls *forward*: event
lines at or past the journal's first sequence number are truncated, the
journalled ops are re-applied with their recorded versions (idempotent),
and the journal's event lines are appended.  A corrupt ``.meta`` sidecar
or a torn final event-log line is likewise repaired from the log instead
of raising ``StorageError``.  Recovery increments ``cloud.recoveries``
and ``cloud.meta_rebuilds``.

Snapshot compaction reuses the same journal machinery under a second
journal file: :meth:`FileCloudStore.compact` folds ``events.jsonl`` into
``snapshot.json`` (the serialized :class:`~repro.cloud.store
.StoreSnapshot` manifest) by writing the folded manifest to
``compact.journal`` first, then atomically replacing ``snapshot.json``,
then rewriting the event file with only the suffix past the snapshot
horizon, then unlinking the journal.  Every step is idempotent, so a
crash anywhere rolls the compaction *forward* on the next open — the
store never has to undo a half-written snapshot, and mutations are
strictly serialized with compactions so at most one journal kind exists
at any crash.  ``poll_dir`` merges synthetic snapshot events ahead of
the surviving suffix (see :mod:`repro.cloud.store`), keeping stale
cursors exact across truncations.
"""

from __future__ import annotations

import base64
import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cloud.latency import LatencyModel
from repro.cloud.protocol import CloudStoreProtocol
from repro.cloud.store import (
    BatchDelete,
    BatchPut,
    CloudBatch,
    CloudMetrics,
    CloudObject,
    DirectoryEvent,
    SnapshotEntry,
    StoreSnapshot,
    _normalize,
    fold_snapshot,
    snapshot_events,
)
from repro.errors import ConflictError, NotFoundError, StorageError
from repro.faults.plan import crash_point
from repro.obs.spans import span as _span


def _encode_snapshot(snapshot: StoreSnapshot) -> bytes:
    return json.dumps({
        "horizon": snapshot.horizon,
        "entries": [
            {"path": e.path, "kind": e.kind, "version": e.version,
             "seq": e.sequence}
            for e in snapshot.entries
        ],
    }).encode("utf-8")


def _slug(path: str) -> str:
    return base64.urlsafe_b64encode(path.encode("utf-8")).decode("ascii")


def _unslug(name: str) -> str:
    return base64.urlsafe_b64decode(name.encode("ascii")).decode("utf-8")


class FileCloudStore(CloudStoreProtocol):
    """Drop-in replacement for :class:`CloudStore` backed by a directory."""

    def __init__(self, root: str | Path,
                 latency: Optional[LatencyModel] = None,
                 compact_every: Optional[int] = None) -> None:
        if compact_every is not None and compact_every < 1:
            raise StorageError("compact_every must be a positive interval")
        self.root = Path(root)
        self._objects_dir = self.root / "objects"
        self._events_path = self.root / "events.jsonl"
        self._journal_path = self.root / "commit.journal"
        self._snapshot_path = self.root / "snapshot.json"
        self._compact_journal_path = self.root / "compact.journal"
        self._objects_dir.mkdir(parents=True, exist_ok=True)
        if not self._events_path.exists():
            self._events_path.write_text("", encoding="utf-8")
        self._latency = latency or LatencyModel.disabled()
        self._compact_every = compact_every
        self._mutations_since_compact = 0
        self.metrics = CloudMetrics()
        self._recoveries = self.metrics.registry.counter("cloud.recoveries")
        self._meta_rebuilds = self.metrics.registry.counter(
            "cloud.meta_rebuilds")
        self._compactions = self.metrics.registry.counter("cloud.compactions")
        self._events_truncated = self.metrics.registry.counter(
            "cloud.events_truncated")
        self._snapshot: Optional[StoreSnapshot] = None
        self._last_seq = 0
        self._recover()
        self._snapshot = self._load_snapshot()
        # Cached so mutations stop paying an O(history) scan per call.
        self._last_seq = max(
            [self.snapshot_horizon()]
            + [event.sequence for event in self._read_events()]
        )

    # -- object API -----------------------------------------------------------

    def put(self, path: str, data: bytes,
            expected_version: Optional[int] = None) -> int:
        path = _normalize(path)
        with _span("cloud.put", path=path, bytes=len(data)) as sp:
            sp.set(latency_ms=self._account(bytes_in=len(data)))
            current = self._current_version(path)
            if expected_version is not None and current != expected_version:
                raise ConflictError(
                    f"version conflict on {path}: have {current}, "
                    f"expected {expected_version}"
                )
            version = current + 1
            self._journaled_apply([("put", path, data, version)])
            self._note_mutation()
            return version

    def get(self, path: str) -> CloudObject:
        path = _normalize(path)
        with _span("cloud.get", path=path) as sp:
            object_path = self._objects_dir / _slug(path)
            if not object_path.exists():
                raise NotFoundError(f"no object at {path}")
            data = object_path.read_bytes()
            sp.set(bytes=len(data),
                   latency_ms=self._account(bytes_out=len(data)))
            version = self._read_version(object_path.with_suffix(".meta"))
            return CloudObject(path=path, data=data, version=version)

    def get_many(self, paths: Iterable[str]) -> Dict[str, CloudObject]:
        """Fetch several objects in one round trip (missing paths skipped)."""
        with _span("cloud.get_many") as sp:
            found: Dict[str, CloudObject] = {}
            for raw in paths:
                path = _normalize(raw)
                object_path = self._objects_dir / _slug(path)
                if not object_path.exists():
                    continue
                found[path] = CloudObject(
                    path=path,
                    data=object_path.read_bytes(),
                    version=self._read_version(object_path.with_suffix(".meta")),
                )
            payload = sum(len(o.data) for o in found.values())
            sp.set(objects=len(found), bytes=payload,
                   latency_ms=self._account(bytes_out=payload))
            return found

    def exists(self, path: str) -> bool:
        return (self._objects_dir / _slug(_normalize(path))).exists()

    def delete(self, path: str) -> None:
        path = _normalize(path)
        object_path = self._objects_dir / _slug(path)
        if not object_path.exists():
            raise NotFoundError(f"no object at {path}")
        version = self._read_version(object_path.with_suffix(".meta"))
        self._account()
        self._journaled_apply([("delete", path, None, version)])
        self._note_mutation()

    def commit(self, batch: CloudBatch) -> Dict[str, int]:
        """Atomic multi-object write; see :meth:`CloudStore.commit`.

        All-or-nothing with respect to validation (no partial application
        on a version conflict) *and* crash-consistent: the whole batch is
        journalled before the first file is touched, so a process killed
        mid-apply rolls the batch forward on the next open (the module
        docstring describes the journal protocol).
        """
        with _span("cloud.commit", ops=len(batch.ops),
                   bytes=batch.payload_bytes) as sp:
            staged = []
            projected: Dict[str, Optional[int]] = {}

            def current(path: str) -> int:
                if path in projected:
                    return projected[path] or 0
                return self._current_version(path)

            for op in batch.ops:
                path = _normalize(op.path)
                have = current(path)
                if isinstance(op, BatchPut):
                    if op.expected_version is not None and have != op.expected_version:
                        raise ConflictError(
                            f"version conflict on {path}: have {have}, "
                            f"expected {op.expected_version}"
                        )
                    version = have + 1
                    projected[path] = version
                    staged.append((op, path, version))
                elif isinstance(op, BatchDelete):
                    if have == 0:
                        if op.ignore_missing:
                            continue
                        raise NotFoundError(f"no object at {path}")
                    projected[path] = None
                    staged.append((op, path, have))
                else:  # pragma: no cover - defensive
                    raise StorageError(f"unknown batch operation {op!r}")

            sp.set(latency_ms=self._account(bytes_in=batch.payload_bytes))
            self.metrics.batch_commits += 1
            versions: Dict[str, int] = {}
            ops = []
            for op, path, version in staged:
                if isinstance(op, BatchPut):
                    ops.append(("put", path, op.data, version))
                    versions[path] = version
                else:
                    ops.append(("delete", path, None, version))
            self._journaled_apply(ops)
            self._note_mutation(len(ops))
            return versions

    def list_dir(self, directory: str) -> List[str]:
        directory = _normalize(directory).rstrip("/") + "/"
        self._account(0)
        children = set()
        for entry in self._objects_dir.iterdir():
            if entry.suffix in (".meta", ".tmp"):
                continue
            path = _unslug(entry.name)
            if path.startswith(directory):
                remainder = path[len(directory):]
                children.add(directory + remainder.split("/")[0])
        return sorted(children)

    # -- long polling ------------------------------------------------------------

    def poll_dir(self, directory: str, after_sequence: int = 0,
                 ) -> Tuple[List[DirectoryEvent], int]:
        directory = _normalize(directory).rstrip("/") + "/"
        with _span("cloud.poll_dir", dir=directory) as sp:
            sp.set(latency_ms=self._account(0))
            events = snapshot_events(self._snapshot, directory,
                                     after_sequence)
            cursor = max(after_sequence, self.snapshot_horizon())
            for event in self._read_events():
                cursor = max(cursor, event.sequence)
                if event.sequence <= after_sequence:
                    continue
                if event.path.startswith(directory) or event.path == directory[:-1]:
                    events.append(event)
            sp.set(events=len(events))
            return events, cursor

    # -- snapshot compaction -----------------------------------------------------

    def compact(self) -> int:
        """Fold ``events.jsonl`` into ``snapshot.json`` and truncate it.

        Crash-consistent via ``compact.journal`` (module docstring);
        counts one request.  Returns the number of event records
        truncated (0 when the log is already empty, making repeated
        compaction idempotent).
        """
        with _span("cloud.compact") as sp:
            self._account()
            events = self._read_events()
            if not events:
                sp.set(truncated=0, horizon=self.snapshot_horizon())
                return 0
            snapshot = fold_snapshot(self._snapshot, events)
            payload = _encode_snapshot(snapshot)
            self._write_atomic(self._compact_journal_path, payload)
            crash_point("cloud.compact.journaled")
            self._apply_compaction(payload, inject=True)
            self._compact_journal_path.unlink()
            self._snapshot = snapshot
            self._last_seq = max(self._last_seq, snapshot.horizon)
            self._compactions.add()
            self._events_truncated.add(len(events))
            sp.set(truncated=len(events), horizon=snapshot.horizon)
            return len(events)

    def snapshot_horizon(self) -> int:
        """Highest sequence folded into the snapshot (0 = never compacted).
        Inspection only — no round trip is charged."""
        return self._snapshot.horizon if self._snapshot is not None else 0

    def head_sequence(self) -> int:
        """Sequence of the newest committed mutation (inspection only)."""
        return self._last_seq

    def _apply_compaction(self, payload: bytes, inject: bool) -> None:
        """Execute (or re-execute, during recovery) a journalled
        compaction: install the snapshot manifest, then drop every event
        line at or below its horizon.  Both steps replace whole files
        atomically and converge to the same state when repeated."""
        self._write_atomic(self._snapshot_path, payload)
        if inject:
            crash_point("cloud.compact.snapshot_written")
        horizon = json.loads(payload.decode("utf-8"))["horizon"]
        kept = [e for e in self._read_events() if e.sequence > horizon]
        lines = "".join(
            json.dumps({"seq": e.sequence, "path": e.path,
                        "kind": e.kind, "version": e.version}) + "\n"
            for e in kept
        )
        self._write_atomic(self._events_path, lines.encode("utf-8"))

    def _load_snapshot(self) -> Optional[StoreSnapshot]:
        if not self._snapshot_path.exists():
            return None
        try:
            record = json.loads(self._snapshot_path.read_text("utf-8"))
            return StoreSnapshot(
                horizon=int(record["horizon"]),
                entries=tuple(
                    SnapshotEntry(path=e["path"], kind=e["kind"],
                                  version=int(e["version"]),
                                  sequence=int(e["seq"]))
                    for e in record["entries"]
                ),
            )
        except (ValueError, KeyError, TypeError) as exc:
            # snapshot.json is only ever installed via os.replace, so a
            # parse failure means tampering, not a crash artifact.
            raise StorageError("corrupt snapshot manifest") from exc

    # -- adversary interface -------------------------------------------------------

    def adversary_view(self):
        for entry in sorted(self._objects_dir.iterdir()):
            if entry.suffix in (".meta", ".tmp"):
                continue
            path = _unslug(entry.name)
            yield CloudObject(
                path=path,
                data=entry.read_bytes(),
                version=self._read_version(entry.with_suffix(".meta")),
            )

    def total_stored_bytes(self, prefix: str = "/") -> int:
        prefix = _normalize(prefix)
        return sum(
            len(obj.data) for obj in self.adversary_view()
            if obj.path.startswith(prefix)
        )

    # -- internals -----------------------------------------------------------------

    def _current_version(self, path: str) -> int:
        """Version of the live object at ``path`` (0 if absent)."""
        object_path = self._objects_dir / _slug(path)
        if not object_path.exists():
            return 0
        return self._read_version(object_path.with_suffix(".meta"))

    @staticmethod
    def _write_atomic(target: Path, data: bytes) -> None:
        """Temp-file + ``os.replace``: the target is always either the
        old bytes or the new bytes, never a torn mix."""
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, target)

    def _journaled_apply(self, ops: Sequence[Tuple]) -> None:
        """Apply ``("put", path, data, version)`` / ``("delete", path,
        None, version)`` ops under the journal protocol (see the module
        docstring).  Versions are absolute, making roll-forward
        idempotent."""
        first_seq = self._last_sequence() + 1
        records = []
        events = []
        for offset, (kind, path, data, version) in enumerate(ops):
            record = {"kind": kind, "path": path, "version": version}
            if kind == "put":
                record["data"] = base64.b64encode(data).decode("ascii")
            records.append(record)
            events.append({"seq": first_seq + offset, "path": path,
                           "kind": kind, "version": version})
        journal = {"ops": records, "events": events}
        self._write_atomic(self._journal_path,
                           json.dumps(journal).encode("utf-8"))
        crash_point("cloud.commit.journaled")
        self._apply_records(records, inject=True)
        self._append_event_lines(events)
        self._journal_path.unlink()

    def _apply_records(self, records: Sequence[Dict], inject: bool) -> None:
        for index, record in enumerate(records):
            if record["kind"] == "put":
                data = base64.b64decode(record["data"].encode("ascii"))
                self._apply_put(record["path"], data, record["version"],
                                inject=inject)
            else:
                self._apply_delete(record["path"])
            if inject and index + 1 < len(records):
                crash_point("cloud.commit.apply")

    def _apply_put(self, path: str, data: bytes, version: int,
                   inject: bool = True) -> None:
        object_path = self._objects_dir / _slug(path)
        self._write_atomic(object_path, data)
        if inject:
            crash_point("store.put.data_written")
        self._write_atomic(
            object_path.with_suffix(".meta"),
            json.dumps({"version": version}).encode("utf-8"),
        )

    def _apply_delete(self, path: str) -> None:
        object_path = self._objects_dir / _slug(path)
        object_path.unlink(missing_ok=True)
        object_path.with_suffix(".meta").unlink(missing_ok=True)

    def _append_event_lines(self, events: Sequence[Dict]) -> None:
        with self._events_path.open("a", encoding="utf-8") as handle:
            for record in events:
                handle.write(json.dumps(record) + "\n")
        if events:
            self._last_seq = max(self._last_seq,
                                 max(e["seq"] for e in events))

    def _recover(self) -> None:
        """Roll an interrupted mutation forward from ``commit.journal``.

        The journal itself is written atomically, so its presence means
        a complete op list with pre-assigned event sequence numbers; any
        subset of those file writes and event lines may have landed
        before the crash.  Truncating the event log below the journal's
        first sequence and re-applying everything makes the mutation
        exactly-once regardless of where the process died.
        """
        for stray in self._objects_dir.glob("*.tmp"):
            stray.unlink(missing_ok=True)
        for stray in self.root.glob("*.tmp"):
            stray.unlink(missing_ok=True)
        self._trim_torn_event_tail()
        if self._compact_journal_path.exists():
            # Mutations and compactions are strictly serialized, so a
            # compact journal excludes a commit journal; roll the
            # compaction forward (idempotent, see _apply_compaction).
            payload = self._compact_journal_path.read_bytes()
            self._apply_compaction(payload, inject=False)
            self._compact_journal_path.unlink()
            self._recoveries.add()
            return
        if not self._journal_path.exists():
            return
        journal = json.loads(self._journal_path.read_text("utf-8"))
        events = journal["events"]
        if events:
            first_seq = events[0]["seq"]
            kept = [e for e in self._read_events() if e.sequence < first_seq]
            lines = "".join(
                json.dumps({"seq": e.sequence, "path": e.path,
                            "kind": e.kind, "version": e.version}) + "\n"
                for e in kept
            )
            self._write_atomic(self._events_path, lines.encode("utf-8"))
        self._apply_records(journal["ops"], inject=False)
        self._append_event_lines(events)
        self._journal_path.unlink()
        self._recoveries.add()

    def _trim_torn_event_tail(self) -> None:
        """Drop a torn final event line left by a crash mid-append.

        Skipping it on read is not enough: an unterminated tail would
        corrupt the *next* appended line, and a terminated-but-corrupt
        tail would turn into a mid-file parse error once more events
        follow it.  The dropped line's mutation is re-applied by the
        journal roll-forward (events are only appended while the journal
        exists on disk).
        """
        raw = self._events_path.read_bytes()
        if not raw:
            return
        body, _, tail = raw.rpartition(b"\n")
        if tail:
            # No trailing newline: the tail is a torn partial line.
            self._write_atomic(self._events_path,
                               body + b"\n" if body else b"")
            return
        last_line = body[body.rfind(b"\n") + 1:]
        if not last_line.strip():
            return
        try:
            record = json.loads(last_line.decode("utf-8"))
            int(record["seq"])
            record["path"], record["kind"], int(record["version"])
        except (ValueError, KeyError, UnicodeDecodeError):
            self._write_atomic(self._events_path,
                               raw[:body.rfind(b"\n") + 1])

    def _read_version(self, meta_path: Path) -> int:
        if not meta_path.exists():
            return self._rebuild_version(meta_path)
        try:
            return int(json.loads(meta_path.read_text("utf-8"))["version"])
        except (ValueError, KeyError):
            return self._rebuild_version(meta_path)

    def _rebuild_version(self, meta_path: Path) -> int:
        """Repair a missing/corrupt ``.meta`` sidecar from the event log
        (the data file exists, so the object is live; its last ``put``
        event carries the version).  After a compaction the object's put
        may live in the snapshot manifest rather than the log, so the
        snapshot entry seeds the scan.  Falls back to 1 for an object
        whose event line was also lost to the crash."""
        path = _unslug(meta_path.stem)
        version = 0
        if self._snapshot is not None:
            entry = self._snapshot.entry_for(path)
            if entry is not None and entry.kind == "put":
                version = entry.version
        for event in self._read_events():
            if event.path == path:
                version = event.version if event.kind == "put" else 0
        if version == 0:
            version = 1
        self._write_atomic(
            meta_path, json.dumps({"version": version}).encode("utf-8"))
        self._meta_rebuilds.add()
        return version

    def _last_sequence(self) -> int:
        return self._last_seq

    def _note_mutation(self, count: int = 1) -> None:
        """Advance the auto-compaction policy by ``count`` committed
        mutations, compacting when the interval elapses."""
        if self._compact_every is None:
            return
        self._mutations_since_compact += count
        if self._mutations_since_compact >= self._compact_every:
            self._mutations_since_compact = 0
            self.compact()

    def _read_events(self) -> List[DirectoryEvent]:
        lines = self._events_path.read_text("utf-8").splitlines()
        events = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                events.append(DirectoryEvent(
                    sequence=int(record["seq"]), path=record["path"],
                    kind=record["kind"], version=int(record["version"]),
                ))
            except (ValueError, KeyError) as exc:
                if index == len(lines) - 1:
                    # Torn tail from a crash mid-append; the journal
                    # roll-forward rewrites this line.
                    continue
                raise StorageError("corrupt event log") from exc
        return events

    def _account(self, bytes_in: int = 0, bytes_out: int = 0) -> float:
        latency_ms = self._latency.sample(bytes_in + bytes_out)
        self.metrics.requests += 1
        self.metrics.bytes_in += bytes_in
        self.metrics.bytes_out += bytes_out
        self.metrics.simulated_latency_ms += latency_ms
        return latency_ms
