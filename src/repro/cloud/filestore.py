"""File-backed cloud store.

Persists the :class:`~repro.cloud.store.CloudStore` contract to a local
directory so separate processes (an administrator CLI invocation, client
daemons) share one storage substrate:

* each object lives at ``objects/<urlsafe path>`` with a sidecar version;
* the event log (long-polling source) is an append-only JSONL file;
* metrics are process-local (not persisted).

Concurrency model: single-writer-at-a-time per object (the paper's single
administrator; the multi-admin extension layers optimistic concurrency on
top via conditional puts, which this store honours).
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cloud.latency import LatencyModel
from repro.cloud.store import (
    BatchDelete,
    BatchPut,
    CloudBatch,
    CloudMetrics,
    CloudObject,
    DirectoryEvent,
    _normalize,
)
from repro.errors import ConflictError, NotFoundError, StorageError
from repro.obs.spans import span as _span


def _slug(path: str) -> str:
    return base64.urlsafe_b64encode(path.encode("utf-8")).decode("ascii")


def _unslug(name: str) -> str:
    return base64.urlsafe_b64decode(name.encode("ascii")).decode("utf-8")


class FileCloudStore:
    """Drop-in replacement for :class:`CloudStore` backed by a directory."""

    def __init__(self, root: str | Path,
                 latency: Optional[LatencyModel] = None) -> None:
        self.root = Path(root)
        self._objects_dir = self.root / "objects"
        self._events_path = self.root / "events.jsonl"
        self._objects_dir.mkdir(parents=True, exist_ok=True)
        if not self._events_path.exists():
            self._events_path.write_text("", encoding="utf-8")
        self._latency = latency or LatencyModel.disabled()
        self.metrics = CloudMetrics()

    # -- object API -----------------------------------------------------------

    def put(self, path: str, data: bytes,
            expected_version: Optional[int] = None) -> int:
        path = _normalize(path)
        with _span("cloud.put", path=path, bytes=len(data)) as sp:
            sp.set(latency_ms=self._account(bytes_in=len(data)))
            current = self._current_version(path)
            if expected_version is not None and current != expected_version:
                raise ConflictError(
                    f"version conflict on {path}: have {current}, "
                    f"expected {expected_version}"
                )
            version = current + 1
            self._apply_put(path, data, version)
            return version

    def get(self, path: str) -> CloudObject:
        path = _normalize(path)
        with _span("cloud.get", path=path) as sp:
            object_path = self._objects_dir / _slug(path)
            if not object_path.exists():
                raise NotFoundError(f"no object at {path}")
            data = object_path.read_bytes()
            sp.set(bytes=len(data),
                   latency_ms=self._account(bytes_out=len(data)))
            version = self._read_version(object_path.with_suffix(".meta"))
            return CloudObject(path=path, data=data, version=version)

    def get_many(self, paths: Iterable[str]) -> Dict[str, CloudObject]:
        """Fetch several objects in one round trip (missing paths skipped)."""
        with _span("cloud.get_many") as sp:
            found: Dict[str, CloudObject] = {}
            for raw in paths:
                path = _normalize(raw)
                object_path = self._objects_dir / _slug(path)
                if not object_path.exists():
                    continue
                found[path] = CloudObject(
                    path=path,
                    data=object_path.read_bytes(),
                    version=self._read_version(object_path.with_suffix(".meta")),
                )
            payload = sum(len(o.data) for o in found.values())
            sp.set(objects=len(found), bytes=payload,
                   latency_ms=self._account(bytes_out=payload))
            return found

    def exists(self, path: str) -> bool:
        return (self._objects_dir / _slug(_normalize(path))).exists()

    def delete(self, path: str) -> None:
        path = _normalize(path)
        object_path = self._objects_dir / _slug(path)
        if not object_path.exists():
            raise NotFoundError(f"no object at {path}")
        version = self._read_version(object_path.with_suffix(".meta"))
        self._account()
        self._apply_delete(path, version)

    def commit(self, batch: CloudBatch) -> Dict[str, int]:
        """Atomic multi-object write; see :meth:`CloudStore.commit`.

        Atomicity here means all-or-nothing with respect to this process's
        validation (no partial application on a version conflict); the
        individual file writes are not crash-atomic, matching the rest of
        this store's single-writer model.
        """
        with _span("cloud.commit", ops=len(batch.ops),
                   bytes=batch.payload_bytes) as sp:
            staged = []
            projected: Dict[str, Optional[int]] = {}

            def current(path: str) -> int:
                if path in projected:
                    return projected[path] or 0
                return self._current_version(path)

            for op in batch.ops:
                path = _normalize(op.path)
                have = current(path)
                if isinstance(op, BatchPut):
                    if op.expected_version is not None and have != op.expected_version:
                        raise ConflictError(
                            f"version conflict on {path}: have {have}, "
                            f"expected {op.expected_version}"
                        )
                    version = have + 1
                    projected[path] = version
                    staged.append((op, path, version))
                elif isinstance(op, BatchDelete):
                    if have == 0:
                        if op.ignore_missing:
                            continue
                        raise NotFoundError(f"no object at {path}")
                    projected[path] = None
                    staged.append((op, path, have))
                else:  # pragma: no cover - defensive
                    raise StorageError(f"unknown batch operation {op!r}")

            sp.set(latency_ms=self._account(bytes_in=batch.payload_bytes))
            self.metrics.batch_commits += 1
            versions: Dict[str, int] = {}
            for op, path, version in staged:
                if isinstance(op, BatchPut):
                    self._apply_put(path, op.data, version)
                    versions[path] = version
                else:
                    self._apply_delete(path, version)
            return versions

    def list_dir(self, directory: str) -> List[str]:
        directory = _normalize(directory).rstrip("/") + "/"
        self._account(0)
        children = set()
        for entry in self._objects_dir.iterdir():
            if entry.suffix == ".meta":
                continue
            path = _unslug(entry.name)
            if path.startswith(directory):
                remainder = path[len(directory):]
                children.add(directory + remainder.split("/")[0])
        return sorted(children)

    # -- long polling ------------------------------------------------------------

    def poll_dir(self, directory: str, after_sequence: int = 0,
                 ) -> Tuple[List[DirectoryEvent], int]:
        directory = _normalize(directory).rstrip("/") + "/"
        with _span("cloud.poll_dir", dir=directory) as sp:
            sp.set(latency_ms=self._account(0))
            events = []
            cursor = after_sequence
            for event in self._read_events():
                cursor = max(cursor, event.sequence)
                if event.sequence <= after_sequence:
                    continue
                if event.path.startswith(directory) or event.path == directory[:-1]:
                    events.append(event)
            sp.set(events=len(events))
            return events, cursor

    # -- adversary interface -------------------------------------------------------

    def adversary_view(self):
        for entry in sorted(self._objects_dir.iterdir()):
            if entry.suffix == ".meta":
                continue
            path = _unslug(entry.name)
            yield CloudObject(
                path=path,
                data=entry.read_bytes(),
                version=self._read_version(entry.with_suffix(".meta")),
            )

    def total_stored_bytes(self, prefix: str = "/") -> int:
        prefix = _normalize(prefix)
        return sum(
            len(obj.data) for obj in self.adversary_view()
            if obj.path.startswith(prefix)
        )

    # -- internals -----------------------------------------------------------------

    def _current_version(self, path: str) -> int:
        """Version of the live object at ``path`` (0 if absent)."""
        object_path = self._objects_dir / _slug(path)
        if not object_path.exists():
            return 0
        return self._read_version(object_path.with_suffix(".meta"))

    def _apply_put(self, path: str, data: bytes, version: int) -> None:
        object_path = self._objects_dir / _slug(path)
        object_path.write_bytes(data)
        object_path.with_suffix(".meta").write_text(
            json.dumps({"version": version}), encoding="utf-8"
        )
        self._append_event(path, "put", version)

    def _apply_delete(self, path: str, version: int) -> None:
        object_path = self._objects_dir / _slug(path)
        object_path.unlink(missing_ok=True)
        object_path.with_suffix(".meta").unlink(missing_ok=True)
        self._append_event(path, "delete", version)

    def _read_version(self, meta_path: Path) -> int:
        if not meta_path.exists():
            return 0
        try:
            return int(json.loads(meta_path.read_text("utf-8"))["version"])
        except (ValueError, KeyError) as exc:
            raise StorageError(f"corrupt metadata at {meta_path}") from exc

    def _append_event(self, path: str, kind: str, version: int) -> None:
        sequence = self._last_sequence() + 1
        record = {"seq": sequence, "path": path, "kind": kind,
                  "version": version}
        with self._events_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")

    def _last_sequence(self) -> int:
        last = 0
        for event in self._read_events():
            last = max(last, event.sequence)
        return last

    def _read_events(self) -> List[DirectoryEvent]:
        events = []
        for line in self._events_path.read_text("utf-8").splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                events.append(DirectoryEvent(
                    sequence=int(record["seq"]), path=record["path"],
                    kind=record["kind"], version=int(record["version"]),
                ))
            except (ValueError, KeyError) as exc:
                raise StorageError("corrupt event log") from exc
        return events

    def _account(self, bytes_in: int = 0, bytes_out: int = 0) -> float:
        latency_ms = self._latency.sample(bytes_in + bytes_out)
        self.metrics.requests += 1
        self.metrics.bytes_in += bytes_in
        self.metrics.bytes_out += bytes_out
        self.metrics.simulated_latency_ms += latency_ms
        return latency_ms
