"""Honest-but-curious cloud storage substrate (the paper's Dropbox role).

The cloud stores group metadata under the bi-level hierarchy
``/<group>/p<k>`` and doubles as the broadcast channel for membership
changes: administrators PUT partition objects, clients long-poll the group
directory (Dropbox long polling works at directory level, paper §V-A).
"""

from repro.cloud.filestore import FileCloudStore
from repro.cloud.latency import LatencyModel
from repro.cloud.protocol import (
    INSPECTION_METHODS,
    MUTATING_METHODS,
    ROUND_TRIP_METHODS,
    CloudStoreProtocol,
)
from repro.cloud.store import (
    BatchDelete,
    BatchPut,
    CloudBatch,
    CloudObject,
    CloudStore,
    DirectoryEvent,
    SnapshotEntry,
    StoreSnapshot,
)

__all__ = [
    "CloudStoreProtocol",
    "ROUND_TRIP_METHODS",
    "INSPECTION_METHODS",
    "MUTATING_METHODS",
    "CloudStore",
    "FileCloudStore",
    "CloudObject",
    "DirectoryEvent",
    "SnapshotEntry",
    "StoreSnapshot",
    "LatencyModel",
    "CloudBatch",
    "BatchPut",
    "BatchDelete",
]
