"""The formal ``CloudStore`` contract.

Every storage backend in the reproduction — the in-memory
:class:`~repro.cloud.CloudStore`, the file-backed
:class:`~repro.cloud.FileCloudStore`, the fault-injecting
:class:`~repro.faults.FaultyCloudStore` decorator, and the network
:class:`~repro.net.RemoteCloudStore` — implements this ABC instead of
relying on duck typing.  ``tests/test_store_contract.py`` runs one shared
conformance suite over all of them, and the wire schema in
:mod:`repro.net.wire` maps the contract one method per RPC, so "what a
store is" is checked in exactly one place.

The contract splits into two method classes:

* **round trips** (:data:`ROUND_TRIP_METHODS`) — operations a remote
  store pays a network request for, and therefore the operations the
  fault layer injects outages/timeouts into and the metrics layer counts
  as requests;
* **inspection** (:data:`INSPECTION_METHODS`) — local accessors
  (`snapshot_horizon`, `head_sequence`) and test-only interfaces
  (`adversary_view`, `total_stored_bytes`) that are *not* charged as
  round trips by the in-process stores.  The remote store necessarily
  pays a request for them too, but fault decorators leave them
  unguarded so chaos schedules stay aligned with the in-process runs.

``ROUND_TRIP_METHODS`` maps each method name to the index of its path
(or directory) argument, ``None`` when the operation has no single path
— this is what lets :class:`~repro.faults.FaultyCloudStore` *generate*
its guarded delegations from the ABC instead of hand-writing
pass-throughs that silently rot when the contract grows.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

#: Round-trip method name -> index of the positional path/directory
#: argument consulted by fault injection (``None``: no single path).
ROUND_TRIP_METHODS: Dict[str, Optional[int]] = {
    "put": 0,
    "get": 0,
    "get_many": None,
    "exists": 0,
    "delete": 0,
    "commit": None,
    "list_dir": 0,
    "poll_dir": 0,
    "compact": None,
}

#: Local accessors and test-only interfaces; never guarded, never charged
#: as requests by in-process stores.
INSPECTION_METHODS: Tuple[str, ...] = (
    "snapshot_horizon",
    "head_sequence",
    "adversary_view",
    "total_stored_bytes",
)

#: Round trips that mutate store state.  A request that fails *before*
#: reaching the store (an injected outage) is safe to retry for every
#: method; a mutating request whose *response* is lost is not.
MUTATING_METHODS: Tuple[str, ...] = ("put", "delete", "commit", "compact")


class CloudStoreProtocol(abc.ABC):
    """Versioned object store + directory broadcast channel (paper §V-A).

    Path convention: object paths look like ``/<group>/<name>``; they are
    normalized (leading slash, no ``//`` or ``..``) by implementations,
    which raise :class:`~repro.errors.StorageError` on invalid input.
    Every mutation appends a :class:`~repro.cloud.DirectoryEvent` with a
    monotonically increasing ``sequence``, which is what ``poll_dir``
    cursors index.
    """

    # -- round trips --------------------------------------------------------

    @abc.abstractmethod
    def put(self, path: str, data: bytes,
            expected_version: Optional[int] = None) -> int:
        """Store an object, returning its new version (1 for a fresh
        path).  With ``expected_version`` the put is conditional and
        raises :class:`~repro.errors.ConflictError` on a version
        mismatch (0 = "must not exist")."""

    @abc.abstractmethod
    def get(self, path: str) -> Any:
        """Fetch one :class:`~repro.cloud.CloudObject`;
        :class:`~repro.errors.NotFoundError` if absent."""

    @abc.abstractmethod
    def get_many(self, paths: Iterable[str]) -> Dict[str, Any]:
        """Fetch several objects in one round trip; missing paths are
        silently skipped.  Returns ``{normalized path: CloudObject}``."""

    @abc.abstractmethod
    def exists(self, path: str) -> bool:
        """Whether a live object sits at ``path``."""

    @abc.abstractmethod
    def delete(self, path: str) -> None:
        """Delete the object at ``path``;
        :class:`~repro.errors.NotFoundError` if absent."""

    @abc.abstractmethod
    def commit(self, batch: Any) -> Dict[str, int]:
        """Apply a :class:`~repro.cloud.CloudBatch` atomically as ONE
        request: all operations validate against the projected state
        before anything mutates.  Returns ``{path: new version}`` for
        the puts."""

    @abc.abstractmethod
    def list_dir(self, directory: str) -> List[str]:
        """Immediate children (paths) under a directory."""

    @abc.abstractmethod
    def poll_dir(self, directory: str, after_sequence: int = 0,
                 ) -> Tuple[List[Any], int]:
        """One long-poll round: ordered
        :class:`~repro.cloud.DirectoryEvent` records under ``directory``
        past the cursor, plus the new cursor.  In-process stores return
        immediately; a network store may block server-side until events
        arrive."""

    @abc.abstractmethod
    def compact(self) -> int:
        """Fold the event log into the store snapshot and truncate it;
        returns the number of event records truncated (idempotent: 0 on
        an empty log)."""

    # -- inspection ---------------------------------------------------------

    @abc.abstractmethod
    def snapshot_horizon(self) -> int:
        """Highest sequence folded into the snapshot (0 = never
        compacted)."""

    @abc.abstractmethod
    def head_sequence(self) -> int:
        """Sequence number of the newest committed mutation."""

    @abc.abstractmethod
    def adversary_view(self) -> Iterator[Any]:
        """Everything the honest-but-curious provider can inspect (used
        by the security tests and the chaos digests)."""

    @abc.abstractmethod
    def total_stored_bytes(self, prefix: str = "/") -> int:
        """Total payload bytes stored under ``prefix``."""


def contract_methods() -> Tuple[str, ...]:
    """Every method of the contract, round trips first — the single
    source the conformance suite and generated decorators iterate."""
    return tuple(ROUND_TRIP_METHODS) + INSPECTION_METHODS
