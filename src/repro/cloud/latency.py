"""Cloud latency model.

Benchmarks isolate cryptographic cost by default (zero latency); system
experiments can inject a distribution calibrated to public-cloud storage
round trips to study end-to-end behaviour (the paper notes client decrypt
cost is overshadowed by cloud response time, §VI-A).

The model is deterministic given its seed: latencies are *accounted*, not
slept, so simulated time stays decoupled from wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rng import DeterministicRng


@dataclass
class LatencyModel:
    """Log-normal-ish latency sampler with deterministic replay.

    ``base_ms`` is the per-request floor; ``jitter_ms`` scales a smoothed
    uniform term; ``per_kb_ms`` adds size-dependent transfer time.
    """

    base_ms: float = 0.0
    jitter_ms: float = 0.0
    per_kb_ms: float = 0.0
    seed: str = "latency"
    _rng: DeterministicRng = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = DeterministicRng(f"cloud-latency:{self.seed}")

    def sample(self, payload_bytes: int = 0) -> float:
        """Latency in milliseconds for one request."""
        if self.base_ms == 0 and self.jitter_ms == 0 and self.per_kb_ms == 0:
            return 0.0
        # Average two uniforms for a crude bell shape without trig.
        u1 = self._rng.randint_below(10_000) / 10_000
        u2 = self._rng.randint_below(10_000) / 10_000
        jitter = self.jitter_ms * (u1 + u2) / 2
        return self.base_ms + jitter + self.per_kb_ms * payload_bytes / 1024

    @classmethod
    def disabled(cls) -> "LatencyModel":
        return cls()

    @classmethod
    def public_cloud(cls, seed: str = "latency") -> "LatencyModel":
        """Roughly a commercial object store over WAN: ~80 ms + transfer."""
        return cls(base_ms=80.0, jitter_ms=40.0, per_kb_ms=0.08, seed=seed)
