"""In-process cloud object store with directory long polling.

Semantics follow what the paper uses from Dropbox:

* PUT/GET of opaque objects addressed by ``/group/partition`` style paths;
* optimistic concurrency via per-object version numbers;
* *long polling at directory level*: a client subscribes to a directory and
  is handed every subsequent change event in order (§V-A: "In Dropbox, long
  polling works at the directory level, so we index the group metadata as a
  bi-level hierarchy").

The store is honest-but-curious: it faithfully executes requests while
keeping everything it has seen readable through :meth:`adversary_view`,
which the security tests use to verify that stored metadata never reveals
group keys.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.cloud.latency import LatencyModel
from repro.errors import ConflictError, NotFoundError, StorageError


@dataclass(frozen=True)
class CloudObject:
    path: str
    data: bytes
    version: int


@dataclass(frozen=True)
class DirectoryEvent:
    """One change visible to a long-polling watcher."""

    sequence: int
    path: str
    kind: str        # "put" | "delete"
    version: int


@dataclass
class CloudMetrics:
    requests: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    simulated_latency_ms: float = 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "simulated_latency_ms": self.simulated_latency_ms,
        }


class CloudStore:
    """The storage + broadcast substrate."""

    def __init__(self, latency: Optional[LatencyModel] = None) -> None:
        self._objects: Dict[str, CloudObject] = {}
        self._latency = latency or LatencyModel.disabled()
        self._event_log: List[DirectoryEvent] = []
        self._sequence = itertools.count(1)
        self.metrics = CloudMetrics()

    # -- object API -----------------------------------------------------------

    def put(self, path: str, data: bytes,
            expected_version: Optional[int] = None) -> int:
        """Store an object; returns its new version.

        With ``expected_version`` set, the put is conditional (used by
        multi-admin setups to detect lost updates)."""
        path = _normalize(path)
        self._account(len(data))
        current = self._objects.get(path)
        if expected_version is not None:
            have = current.version if current else 0
            if have != expected_version:
                raise ConflictError(
                    f"version conflict on {path}: have {have}, "
                    f"expected {expected_version}"
                )
        version = (current.version if current else 0) + 1
        self._objects[path] = CloudObject(path=path, data=data, version=version)
        self._event_log.append(DirectoryEvent(
            sequence=next(self._sequence), path=path, kind="put",
            version=version,
        ))
        return version

    def get(self, path: str) -> CloudObject:
        path = _normalize(path)
        obj = self._objects.get(path)
        if obj is None:
            raise NotFoundError(f"no object at {path}")
        self._account(len(obj.data))
        return obj

    def exists(self, path: str) -> bool:
        return _normalize(path) in self._objects

    def delete(self, path: str) -> None:
        path = _normalize(path)
        obj = self._objects.pop(path, None)
        if obj is None:
            raise NotFoundError(f"no object at {path}")
        self._account(0)
        self._event_log.append(DirectoryEvent(
            sequence=next(self._sequence), path=path, kind="delete",
            version=obj.version,
        ))

    def list_dir(self, directory: str) -> List[str]:
        """Immediate children (paths) under a directory."""
        directory = _normalize(directory).rstrip("/") + "/"
        self._account(0)
        children = set()
        for path in self._objects:
            if path.startswith(directory):
                remainder = path[len(directory):]
                children.add(directory + remainder.split("/")[0])
        return sorted(children)

    # -- long polling ------------------------------------------------------------

    def poll_dir(self, directory: str, after_sequence: int = 0,
                 ) -> Tuple[List[DirectoryEvent], int]:
        """Return events under ``directory`` past ``after_sequence``.

        Models one long-poll round trip: the caller passes the cursor from
        the previous call and receives (possibly empty) ordered events plus
        the new cursor.
        """
        directory = _normalize(directory).rstrip("/") + "/"
        self._account(0)
        events = [
            ev for ev in self._event_log
            if ev.sequence > after_sequence
            and (ev.path.startswith(directory) or ev.path == directory[:-1])
        ]
        cursor = self._event_log[-1].sequence if self._event_log else after_sequence
        return events, max(after_sequence, cursor)

    # -- adversary interface -------------------------------------------------------

    def adversary_view(self) -> Iterator[CloudObject]:
        """Everything the curious cloud can inspect (for security tests)."""
        return iter(list(self._objects.values()))

    def total_stored_bytes(self, prefix: str = "/") -> int:
        prefix = _normalize(prefix)
        return sum(
            len(obj.data) for path, obj in self._objects.items()
            if path.startswith(prefix)
        )

    # -- internals -----------------------------------------------------------------

    def _account(self, payload: int) -> None:
        self.metrics.requests += 1
        self.metrics.bytes_in += payload
        self.metrics.simulated_latency_ms += self._latency.sample(payload)


def _normalize(path: str) -> str:
    if not path or ".." in path.split("/"):
        raise StorageError(f"invalid path {path!r}")
    if not path.startswith("/"):
        path = "/" + path
    while "//" in path:
        path = path.replace("//", "/")
    return path
