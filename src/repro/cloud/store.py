"""In-process cloud object store with directory long polling.

Semantics follow what the paper uses from Dropbox:

* PUT/GET of opaque objects addressed by ``/group/partition`` style paths;
* optimistic concurrency via per-object version numbers;
* *long polling at directory level*: a client subscribes to a directory and
  is handed every subsequent change event in order (§V-A: "In Dropbox, long
  polling works at the directory level, so we index the group metadata as a
  bi-level hierarchy");
* an atomic multi-object :meth:`CloudStore.commit` — the server-side batch
  endpoint every real object store offers (Dropbox ``/files/upload_session
  /finish_batch``, S3 multi-object ops).  One round trip carries a
  conditional descriptor put plus all partition puts/deletes; per-object
  versions and directory events are preserved exactly as if the operations
  had been issued one by one.

The store is honest-but-curious: it faithfully executes requests while
keeping everything it has seen readable through :meth:`adversary_view`,
which the security tests use to verify that stored metadata never reveals
group keys.

Metrics: each API call counts one request; ``bytes_in`` is upload volume
(put payloads), ``bytes_out`` is download volume (get payloads).  A batch
commit counts one request (that is the point) and increments
``batch_commits`` so benchmarks can report round-trip savings.

Snapshot compaction: the event log is the cold-start replay source, so an
append-only log makes reconnect O(history).  :meth:`CloudStore.compact`
folds the current log into a :class:`StoreSnapshot` — one
:class:`SnapshotEntry` per distinct path recording the *last* event that
touched it (puts for live objects, delete tombstones for dead ones) — and
truncates the log.  ``poll_dir`` then serves a stale cursor by merging
synthetic events reconstructed from the snapshot (each carrying its real
last-writer sequence number, so arbitrary mid-prefix cursors stay exact)
ahead of the surviving suffix events.  Tombstones are retained so a
client that slept through its own revocation still sees the delete; the
snapshot is bounded by the number of distinct paths ever written, i.e.
O(state), not O(history).  Pass ``compact_every=K`` to compact
automatically after every K committed mutations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.cloud.latency import LatencyModel
from repro.cloud.protocol import CloudStoreProtocol
from repro.errors import ConflictError, NotFoundError, StorageError
from repro.obs.metrics import CounterField, MetricRegistry
from repro.obs.spans import span as _span


@dataclass(frozen=True)
class CloudObject:
    path: str
    data: bytes
    version: int


@dataclass(frozen=True)
class DirectoryEvent:
    """One change visible to a long-polling watcher."""

    sequence: int
    path: str
    kind: str        # "put" | "delete"
    version: int


@dataclass(frozen=True)
class SnapshotEntry:
    """Per-path outcome of a compacted event-log prefix.

    ``kind == "put"`` records a live object; ``kind == "delete"`` is a
    tombstone kept so stale watchers still learn about the removal.
    ``sequence`` is the sequence number of the last prefix event that
    touched the path, which is what keeps mid-prefix poll cursors exact
    across a truncation.
    """

    path: str
    kind: str        # "put" | "delete"
    version: int
    sequence: int


@dataclass(frozen=True)
class StoreSnapshot:
    """Materialized state of every event at or below ``horizon``."""

    horizon: int
    entries: Tuple[SnapshotEntry, ...]   # ordered by sequence

    def entry_for(self, path: str) -> Optional[SnapshotEntry]:
        for entry in self.entries:
            if entry.path == path:
                return entry
        return None


def fold_snapshot(previous: Optional[StoreSnapshot],
                  events: Sequence[DirectoryEvent]) -> StoreSnapshot:
    """Fold ``events`` (the log being truncated) into ``previous``.

    Folding is associative — compacting twice is the same as compacting
    once over the concatenation — which is what makes double compaction
    idempotent and incremental compaction correct.
    """
    by_path: Dict[str, SnapshotEntry] = (
        {entry.path: entry for entry in previous.entries}
        if previous is not None else {}
    )
    horizon = previous.horizon if previous is not None else 0
    for event in events:
        horizon = max(horizon, event.sequence)
        by_path[event.path] = SnapshotEntry(
            path=event.path, kind=event.kind,
            version=event.version, sequence=event.sequence,
        )
    entries = tuple(sorted(by_path.values(), key=lambda e: e.sequence))
    return StoreSnapshot(horizon=horizon, entries=entries)


def snapshot_events(snapshot: Optional[StoreSnapshot], directory: str,
                    after_sequence: int) -> List[DirectoryEvent]:
    """Synthetic events a watcher at ``after_sequence`` would have seen
    from the compacted prefix.  ``directory`` must already be normalized
    with a trailing slash (the ``poll_dir`` convention)."""
    if snapshot is None:
        return []
    return [
        DirectoryEvent(sequence=entry.sequence, path=entry.path,
                       kind=entry.kind, version=entry.version)
        for entry in snapshot.entries
        if entry.sequence > after_sequence
        and (entry.path.startswith(directory)
             or entry.path == directory[:-1])
    ]


class CloudMetrics:
    """Round-trip accounting shared by every store implementation.

    Values live in a ``repro.obs`` :class:`~repro.obs.MetricRegistry`
    under the ``cloud.*`` namespace; the attributes and the flat
    :meth:`snapshot` are the compatibility shim over it (see
    :class:`~repro.obs.CounterField`).
    """

    requests = CounterField("cloud.requests")
    bytes_in = CounterField("cloud.bytes_in")
    bytes_out = CounterField("cloud.bytes_out")
    batch_commits = CounterField("cloud.batch_commits")
    simulated_latency_ms = CounterField("cloud.simulated_latency_ms")

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        for name in ("cloud.requests", "cloud.bytes_in", "cloud.bytes_out",
                     "cloud.batch_commits", "cloud.simulated_latency_ms"):
            self.registry.counter(name)

    def snapshot(self) -> Dict[str, float]:
        """Flat legacy view; prefer ``metrics.registry.snapshot()`` (dotted)."""
        return {
            "requests": self.requests,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "batch_commits": self.batch_commits,
            "simulated_latency_ms": self.simulated_latency_ms,
        }

    def reset(self) -> None:
        self.registry.reset()

    def __repr__(self) -> str:
        return (f"CloudMetrics(requests={self.requests}, "
                f"bytes_in={self.bytes_in}, bytes_out={self.bytes_out}, "
                f"batch_commits={self.batch_commits})")


@dataclass(frozen=True)
class BatchPut:
    """One put inside a :class:`CloudBatch` (conditional iff
    ``expected_version`` is set)."""

    path: str
    data: bytes
    expected_version: Optional[int] = None


@dataclass(frozen=True)
class BatchDelete:
    """One delete inside a :class:`CloudBatch`.

    ``ignore_missing`` makes the delete a no-op when the object is absent
    (garbage that another admin may already have collected).
    """

    path: str
    ignore_missing: bool = False


BatchOp = Union[BatchPut, BatchDelete]


@dataclass
class CloudBatch:
    """An ordered multi-object write, committed atomically in one request.

    Build with :meth:`put` / :meth:`delete` (chainable) or pass operations
    directly.  Operation order matters: events are emitted in it, and a
    put after a delete of the same path restarts the version at 1, exactly
    as sequential calls would.
    """

    ops: List[BatchOp] = field(default_factory=list)

    def put(self, path: str, data: bytes,
            expected_version: Optional[int] = None) -> "CloudBatch":
        self.ops.append(BatchPut(path, data, expected_version))
        return self

    def delete(self, path: str, ignore_missing: bool = False) -> "CloudBatch":
        self.ops.append(BatchDelete(path, ignore_missing))
        return self

    def __len__(self) -> int:
        return len(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    @property
    def payload_bytes(self) -> int:
        return sum(len(op.data) for op in self.ops if isinstance(op, BatchPut))


class CloudStore(CloudStoreProtocol):
    """The storage + broadcast substrate (in-memory reference
    implementation of :class:`~repro.cloud.CloudStoreProtocol`)."""

    def __init__(self, latency: Optional[LatencyModel] = None,
                 compact_every: Optional[int] = None) -> None:
        if compact_every is not None and compact_every < 1:
            raise StorageError("compact_every must be a positive interval")
        self._objects: Dict[str, CloudObject] = {}
        self._latency = latency or LatencyModel.disabled()
        self._event_log: List[DirectoryEvent] = []
        self._sequence = itertools.count(1)
        self._snapshot: Optional[StoreSnapshot] = None
        self._compact_every = compact_every
        self._mutations_since_compact = 0
        self.metrics = CloudMetrics()
        self._compactions = self.metrics.registry.counter("cloud.compactions")
        self._events_truncated = self.metrics.registry.counter(
            "cloud.events_truncated")

    # -- object API -----------------------------------------------------------

    def put(self, path: str, data: bytes,
            expected_version: Optional[int] = None) -> int:
        """Store an object; returns its new version.

        With ``expected_version`` set, the put is conditional (used by
        multi-admin setups to detect lost updates)."""
        path = _normalize(path)
        with _span("cloud.put", path=path, bytes=len(data)) as sp:
            sp.set(latency_ms=self._account(bytes_in=len(data)))
            current = self._objects.get(path)
            if expected_version is not None:
                have = current.version if current else 0
                if have != expected_version:
                    raise ConflictError(
                        f"version conflict on {path}: have {have}, "
                        f"expected {expected_version}"
                    )
            version = (current.version if current else 0) + 1
            self._apply_put(path, data, version)
            self._note_mutation()
            return version

    def get(self, path: str) -> CloudObject:
        path = _normalize(path)
        with _span("cloud.get", path=path) as sp:
            obj = self._objects.get(path)
            if obj is None:
                raise NotFoundError(f"no object at {path}")
            sp.set(bytes=len(obj.data),
                   latency_ms=self._account(bytes_out=len(obj.data)))
            return obj

    def get_many(self, paths: Iterable[str]) -> Dict[str, CloudObject]:
        """Fetch several objects in one round trip.

        Missing paths are silently skipped (they may have been deleted
        between the event that advertised them and this fetch), mirroring
        the per-path ``NotFoundError → skip`` pattern clients used with
        sequential gets.  Returns ``{normalized path: object}``.
        """
        with _span("cloud.get_many") as sp:
            found: Dict[str, CloudObject] = {}
            for path in paths:
                obj = self._objects.get(_normalize(path))
                if obj is not None:
                    found[obj.path] = obj
            payload = sum(len(o.data) for o in found.values())
            sp.set(objects=len(found), bytes=payload,
                   latency_ms=self._account(bytes_out=payload))
            return found

    def exists(self, path: str) -> bool:
        return _normalize(path) in self._objects

    def delete(self, path: str) -> None:
        path = _normalize(path)
        obj = self._objects.get(path)
        if obj is None:
            raise NotFoundError(f"no object at {path}")
        self._account()
        self._apply_delete(path, obj.version)
        self._note_mutation()

    def commit(self, batch: CloudBatch) -> Dict[str, int]:
        """Apply a :class:`CloudBatch` atomically, charged as ONE request.

        Every operation is validated against the store state *as projected
        through the preceding operations of the same batch* before anything
        mutates — a failed conditional put or a delete of a missing object
        raises :class:`ConflictError` / :class:`NotFoundError` and leaves
        the store untouched.  On success the operations apply in order,
        each emitting its ordinary directory event with the same version
        numbers sequential calls would have produced.

        Returns ``{normalized path: new version}`` for the puts.
        """
        with _span("cloud.commit", ops=len(batch.ops),
                   bytes=batch.payload_bytes) as sp:
            staged: List[Tuple[BatchOp, str, int]] = []
            projected: Dict[str, Optional[int]] = {}

            def current_version(path: str) -> int:
                if path in projected:
                    return projected[path] or 0
                obj = self._objects.get(path)
                return obj.version if obj else 0

            for op in batch.ops:
                path = _normalize(op.path)
                have = current_version(path)
                if isinstance(op, BatchPut):
                    if op.expected_version is not None and have != op.expected_version:
                        raise ConflictError(
                            f"version conflict on {path}: have {have}, "
                            f"expected {op.expected_version}"
                        )
                    version = have + 1
                    projected[path] = version
                    staged.append((op, path, version))
                elif isinstance(op, BatchDelete):
                    if have == 0:
                        if op.ignore_missing:
                            continue
                        raise NotFoundError(f"no object at {path}")
                    projected[path] = None
                    staged.append((op, path, have))
                else:  # pragma: no cover - defensive
                    raise StorageError(f"unknown batch operation {op!r}")

            sp.set(latency_ms=self._account(bytes_in=batch.payload_bytes))
            self.metrics.batch_commits += 1
            versions: Dict[str, int] = {}
            for op, path, version in staged:
                if isinstance(op, BatchPut):
                    self._apply_put(path, op.data, version)
                    versions[path] = version
                else:
                    self._apply_delete(path, version)
            self._note_mutation(len(staged))
            return versions

    def list_dir(self, directory: str) -> List[str]:
        """Immediate children (paths) under a directory."""
        directory = _normalize(directory).rstrip("/") + "/"
        self._account()
        children = set()
        for path in self._objects:
            if path.startswith(directory):
                remainder = path[len(directory):]
                children.add(directory + remainder.split("/")[0])
        return sorted(children)

    # -- long polling ------------------------------------------------------------

    def poll_dir(self, directory: str, after_sequence: int = 0,
                 ) -> Tuple[List[DirectoryEvent], int]:
        """Return events under ``directory`` past ``after_sequence``.

        Models one long-poll round trip: the caller passes the cursor from
        the previous call and receives (possibly empty) ordered events plus
        the new cursor.
        """
        directory = _normalize(directory).rstrip("/") + "/"
        with _span("cloud.poll_dir", dir=directory) as sp:
            sp.set(latency_ms=self._account())
            events = snapshot_events(self._snapshot, directory,
                                     after_sequence)
            events += [
                ev for ev in self._event_log
                if ev.sequence > after_sequence
                and (ev.path.startswith(directory) or ev.path == directory[:-1])
            ]
            sp.set(events=len(events))
            return events, max(after_sequence, self.head_sequence())

    # -- snapshot compaction -----------------------------------------------------

    def compact(self) -> int:
        """Fold the event log into the snapshot and truncate it.

        Counts one (server-side) request.  Returns the number of event
        records truncated; compacting an already-empty log is a no-op
        (which is what makes back-to-back compactions idempotent).
        """
        with _span("cloud.compact") as sp:
            self._account()
            truncated = len(self._event_log)
            if truncated:
                self._snapshot = fold_snapshot(self._snapshot,
                                               self._event_log)
                self._event_log.clear()
                self._compactions.add()
                self._events_truncated.add(truncated)
            sp.set(truncated=truncated, horizon=self.snapshot_horizon())
            return truncated

    def snapshot_horizon(self) -> int:
        """Highest sequence folded into the snapshot (0 = never compacted).
        Inspection only — no round trip is charged."""
        return self._snapshot.horizon if self._snapshot is not None else 0

    def head_sequence(self) -> int:
        """Sequence of the newest committed mutation (inspection only)."""
        if self._event_log:
            return self._event_log[-1].sequence
        return self.snapshot_horizon()

    # -- adversary interface -------------------------------------------------------

    def adversary_view(self) -> Iterator[CloudObject]:
        """Everything the curious cloud can inspect (for security tests)."""
        return iter(list(self._objects.values()))

    def total_stored_bytes(self, prefix: str = "/") -> int:
        prefix = _normalize(prefix)
        return sum(
            len(obj.data) for path, obj in self._objects.items()
            if path.startswith(prefix)
        )

    # -- internals -----------------------------------------------------------------

    def _apply_put(self, path: str, data: bytes, version: int) -> None:
        self._objects[path] = CloudObject(path=path, data=data, version=version)
        self._event_log.append(DirectoryEvent(
            sequence=next(self._sequence), path=path, kind="put",
            version=version,
        ))

    def _apply_delete(self, path: str, version: int) -> None:
        self._objects.pop(path, None)
        self._event_log.append(DirectoryEvent(
            sequence=next(self._sequence), path=path, kind="delete",
            version=version,
        ))

    def _note_mutation(self, count: int = 1) -> None:
        """Advance the auto-compaction policy by ``count`` committed
        mutations, compacting when the interval elapses."""
        if self._compact_every is None:
            return
        self._mutations_since_compact += count
        if self._mutations_since_compact >= self._compact_every:
            self._mutations_since_compact = 0
            self.compact()

    def _account(self, bytes_in: int = 0, bytes_out: int = 0) -> float:
        latency_ms = self._latency.sample(bytes_in + bytes_out)
        self.metrics.requests += 1
        self.metrics.bytes_in += bytes_in
        self.metrics.bytes_out += bytes_out
        self.metrics.simulated_latency_ms += latency_ms
        return latency_ms


def _normalize(path: str) -> str:
    if not path or ".." in path.split("/"):
        raise StorageError(f"invalid path {path!r}")
    if not path.startswith("/"):
        path = "/" + path
    while "//" in path:
        path = path.replace("//", "/")
    return path
