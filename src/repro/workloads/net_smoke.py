"""End-to-end smoke test for the network serving layer (CI: net-smoke).

Drives the full client/server stack the way an operator would deploy it:

1. starts a real ``repro serve`` *subprocess* hosting a
   :class:`~repro.cloud.FileCloudStore` (unless ``--store-url`` points at
   a server that is already running),
2. runs a seeded two-administrator + client-sync workload where both
   administrators and the client reach the store exclusively through
   :class:`~repro.net.RemoteCloudStore`,
3. replays the identical seeded workload against an in-process store and
   asserts the cloud state is byte-identical and the client derives the
   same group key,
4. dumps the client-side ``net.rpc.*`` counters (requests, reconnects,
   wire bytes, latency quantiles) as a JSON artifact for CI to upload.

With ``--trace-out`` the remote phase runs with tracing enabled: the
client propagates its trace context over the wire, the server ships its
handler spans back, and the stitched result is *validated* (client
``net.rpc.*`` and server ``net.server.*`` spans share one trace id,
server roots are parented under the client RPC spans, server spans sit
on negative per-connection lanes) before being written as one Chrome
trace.  Because the reference replay runs untraced, the byte-identity
check doubles as proof that tracing never perturbs store state.  The
live server is also probed (``ops.health``) and its operational
snapshot (``ops.stats``) lands in the report.

Run with::

    python -m repro.workloads.net_smoke [--store-url tcp://...]
        [--seed SEED] [--metrics-out PATH] [--trace-out PATH]
        [--request-log PATH]

Exit status 0 means the smoke test passed.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.rng import DeterministicRng
from repro.errors import ReproError
from repro.workloads.chaos import cloud_digest

GROUP = "team"


# ---------------------------------------------------------------------------
# Server subprocess management
# ---------------------------------------------------------------------------

class ServedProcess:
    """A ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, cloud_dir: str,
                 request_log: Optional[str] = None) -> None:
        cmd = [sys.executable, "-m", "repro.cli", "serve",
               "--cloud", cloud_dir, "--host", "127.0.0.1", "--port", "0"]
        if request_log:
            cmd += ["--request-log", request_log]
        self.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        self.url = self._await_banner()

    def _await_banner(self, timeout: float = 30.0) -> str:
        deadline = time.monotonic() + timeout
        assert self.proc.stdout is not None
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise ReproError(
                    "serve subprocess exited before announcing its URL "
                    f"(exit {self.proc.poll()})")
            if line.startswith("serving "):
                return line.split(None, 1)[1].strip()
        raise ReproError("serve subprocess never announced its URL")

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.proc.kill()
                self.proc.wait()


# ---------------------------------------------------------------------------
# The seeded workload
# ---------------------------------------------------------------------------

def _fresh_system(seed: str):
    from repro import quickstart_system

    return quickstart_system(partition_capacity=4, params="toy64",
                             rng=DeterministicRng(seed),
                             auto_repartition=False)


def _second_admin(system, seed: str):
    """A second administrator: own enclave on its own device, migrated
    master secret, shared organisational signing key."""
    from repro.core.admin import GroupAdministrator
    from repro.core.multiadmin import join_administration
    from repro.enclave_app import IbbeEnclave
    from repro.sgx.device import SgxDevice

    device = SgxDevice(rng=DeterministicRng(f"{seed}-device"))
    system.ias.register_device(device.device_id,
                               device.attestation_public_key)
    enclave = IbbeEnclave.load(device, dict(system.enclave.config))
    join_administration(system, enclave)
    return GroupAdministrator(
        enclave=enclave,
        cloud=system.cloud,
        signing_key=system.admin._signing_key,
        partition_capacity=system.admin.partition_capacity,
        rng=DeterministicRng(seed),
    )


def run_workload(system, store, seed: str) -> bytes:
    """Seeded two-admin churn + late-client sync against ``store``.

    The second administrator refreshes between operations, then admin 1
    deliberately operates on a stale view so the OCC retry path runs
    over whatever store (local or remote) is plugged in.  Returns the
    surviving member's group key."""
    from repro.core.multiadmin import ConcurrentAdministrator

    system.cloud = store
    system.admin.cloud = store
    admin1 = ConcurrentAdministrator(system.admin)
    admin2 = ConcurrentAdministrator(_second_admin(system, f"{seed}-b"))

    admin1.create_group(GROUP, ["alice", "bob", "carol", "dave"])
    admin2.refresh(GROUP)
    admin2.add_user(GROUP, "erin")
    admin1.add_user(GROUP, "frank")      # stale view -> conflict retry
    admin2.refresh(GROUP)
    admin2.remove_user(GROUP, "bob")
    admin1.rekey(GROUP)                  # stale again -> conflict retry

    client = system.make_client(GROUP, "alice")
    client.sync()
    members = set(system.admin.members(GROUP))
    expected = {"alice", "carol", "dave", "erin", "frank"}
    if members != expected:
        raise ReproError(f"membership diverged: {sorted(members)}")
    return client.current_group_key()


def _reference_state(seed: str) -> Tuple[bytes, str]:
    """The same workload, fully in-process."""
    system = _fresh_system(seed)
    store = system.cloud
    key = run_workload(system, store, seed)
    digest = cloud_digest(store)
    system.close()
    return key, digest


# ---------------------------------------------------------------------------
# Metrics artifact
# ---------------------------------------------------------------------------

def collect_metrics(store) -> Dict[str, Any]:
    """The client-side ``net.rpc.*`` view of the run."""
    registry = store.metrics.registry
    counters = {name: value
                for name, value in registry.counters_snapshot().items()
                if name.startswith("net.rpc.")}
    full = registry.snapshot()
    latency = {field: full[f"net.rpc.latency_ms.{field}"]
               for field in ("count", "p50", "p95", "max")
               if f"net.rpc.latency_ms.{field}" in full}
    return {"counters": counters, "latency_ms": latency}


# ---------------------------------------------------------------------------
# Stitched-trace validation
# ---------------------------------------------------------------------------

def validate_stitched_trace(spans) -> Dict[str, Any]:
    """Check the merged span set tells one coherent cross-process story.

    Returns a summary dict whose ``problems`` list is empty when the
    stitching invariants hold: client RPC spans on the main lane,
    server handler spans on negative per-connection lanes, both sides
    sharing one trace id, and every server root parented under a
    client span."""
    problems: List[str] = []
    by_id = {s.span_id: s for s in spans}
    client = [s for s in spans if s.name.startswith("net.rpc.")]
    server = [s for s in spans if s.name.startswith("net.server.")]
    if not client:
        problems.append("no client net.rpc.* spans recorded")
    if not server:
        problems.append("no server net.server.* spans shipped back")

    trace_ids = set()
    for s in client:
        tid = s.attrs.get("trace_id")
        if tid:
            trace_ids.add(tid)
        if s.tid != 0:
            problems.append(f"client span {s.name} off the main lane "
                            f"(tid={s.tid})")
    lanes = set()
    for s in server:
        tid = s.attrs.get("trace_id")
        if tid:
            trace_ids.add(tid)
        else:
            problems.append(f"server span {s.name} lost its trace id")
        if s.tid >= 0:
            problems.append(f"server span {s.name} not on a negative "
                            f"connection lane (tid={s.tid})")
        lanes.add(s.tid)
        if s.parent_id is None:
            problems.append(f"server span {s.name} has no parent link")
        else:
            parent = by_id.get(s.parent_id)
            if parent is None:
                problems.append(f"server span {s.name} parent "
                                f"{s.parent_id} missing from the trace")
            elif parent.tid < 0 and parent.name.startswith("net.server."):
                pass                     # nested server span — fine
            elif not parent.name.startswith("net.rpc."):
                problems.append(
                    f"server root {s.name} parented under "
                    f"{parent.name}, expected a net.rpc.* span")
    if len(trace_ids) > 1:
        problems.append(f"spans carry {len(trace_ids)} distinct trace "
                        f"ids: {sorted(trace_ids)}")
    return {
        "client_spans": len(client),
        "server_spans": len(server),
        "connection_lanes": sorted(lanes),
        "trace_id": next(iter(trace_ids)) if len(trace_ids) == 1 else None,
        "problems": problems,
    }


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def run_smoke(store_url: Optional[str] = None, seed: str = "net-smoke",
              metrics_out: Optional[str] = None,
              trace_out: Optional[str] = None,
              request_log: Optional[str] = None) -> Dict[str, Any]:
    from repro import obs
    from repro.net import RemoteCloudStore

    served: Optional[ServedProcess] = None
    tmp: Optional[tempfile.TemporaryDirectory] = None
    if store_url is None:
        tmp = tempfile.TemporaryDirectory(prefix="net-smoke-")
        served = ServedProcess(tmp.name, request_log=request_log)
        store_url = served.url
        print(f"started serve subprocess at {store_url}")

    trace_report: Optional[Dict[str, Any]] = None
    server_report: Dict[str, Any] = {}
    try:
        if trace_out:
            obs.tracer().reset()
            obs.enable()
        store = RemoteCloudStore(store_url)
        system = _fresh_system(seed)
        remote_key = run_workload(system, store, seed)
        remote_digest = cloud_digest(store)
        object_count = len(list(store.adversary_view()))
        metrics = collect_metrics(store)
        if trace_out:
            obs.disable()
            spans = obs.tracer().spans()
            trace_report = validate_stitched_trace(spans)
            trace_report["events"] = obs.write_chrome_trace(
                spans, trace_out)
            trace_report["remote_spans_merged"] = int(
                store.metrics.registry.counters_snapshot().get(
                    "net.rpc.remote_spans", 0))
            trace_report["path"] = trace_out
            obs.tracer().reset()
        if "ops" in store.server_features:
            health = store.server_health()
            stats = store.server_stats()
            server_report = {
                "health": health,
                "slo": stats.get("slo", {}),
                "requests": stats.get("requests", {}),
                "request_log": stats.get("request_log", {}),
            }
        system.close()
        store.close()
    finally:
        if trace_out:
            obs.disable()
        if served is not None:
            served.stop()
        if tmp is not None:
            tmp.cleanup()

    local_key, local_digest = _reference_state(seed)
    identical = (remote_key == local_key
                 and remote_digest == local_digest)
    report = {
        "seed": seed,
        "store_url": store_url,
        "objects": object_count,
        "byte_identical": identical,
        "net_rpc": metrics,
        "server": server_report,
    }
    if trace_report is not None:
        report["trace"] = trace_report
    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {metrics_out}")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.net_smoke",
        description="network serving layer end-to-end smoke test")
    parser.add_argument("--store-url", default=None,
                        help="use an already-running server instead of "
                             "spawning a serve subprocess")
    parser.add_argument("--seed", default="net-smoke")
    parser.add_argument("--metrics-out", default=None,
                        help="write the net.rpc.* metrics artifact here")
    parser.add_argument("--trace-out", default=None,
                        help="run the remote phase with tracing enabled "
                             "and write the validated stitched Chrome "
                             "trace here")
    parser.add_argument("--request-log", default=None,
                        help="have the serve subprocess append its JSONL "
                             "request log here")
    args = parser.parse_args(argv)

    report = run_smoke(store_url=args.store_url, seed=args.seed,
                       metrics_out=args.metrics_out,
                       trace_out=args.trace_out,
                       request_log=args.request_log)
    rpc = report["net_rpc"]["counters"]
    print(f"workload over {report['store_url']}: "
          f"{int(rpc.get('net.rpc.requests', 0))} RPCs, "
          f"{int(rpc.get('net.rpc.bytes_sent', 0))} B sent, "
          f"{int(rpc.get('net.rpc.bytes_received', 0))} B received")
    failed = False
    trace = report.get("trace")
    if trace is not None:
        print(f"stitched trace: {trace['events']} events "
              f"({trace['client_spans']} client / "
              f"{trace['server_spans']} server spans, lanes "
              f"{trace['connection_lanes']}, trace id "
              f"{trace['trace_id']}) -> {trace['path']}")
        for problem in trace["problems"]:
            print(f"FAIL: trace: {problem}", file=sys.stderr)
            failed = True
    server = report.get("server")
    if server:
        health = server["health"]
        slo_all = server["slo"].get("all", {})
        print(f"server health: {health['status']}  "
              f"requests={server['requests'].get('total', 0)} "
              f"errors={server['requests'].get('errors', 0)} "
              f"p95={slo_all.get('p95_ms', 0.0)} ms")
        if health["status"] != "ok":
            print(f"FAIL: server health is {health['status']}: "
                  f"{health.get('checks', {})}", file=sys.stderr)
            failed = True
    if not report["byte_identical"]:
        print("FAIL: remote cloud state diverged from the in-process "
              "reference", file=sys.stderr)
        failed = True
    else:
        print(f"byte-identical to in-process reference "
              f"({report['objects']} objects)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
