"""Trace replay engine (paper §VI-B).

Replays a membership trace against any scheme exposing the adapter
interface, capturing:

* total administrator time (the Fig. 9 left axis / Fig. 10 y-axis);
* sampled user decryption times (the Fig. 9 right axis).

Adapters are provided for the IBBE-SGX system and the hybrid baselines so
the same trace drives both sides of every comparison.

Timing goes through ``repro.obs`` spans: every replayed operation and
every decrypt probe opens a ``replay.*`` span (``force=True`` — the
engine needs the duration even with tracing disabled), so with telemetry
enabled a replay emits the same trace format as the benchmarks and the
breakdown table can split replay time into crossing, cloud and crypto
shares.  Aggregates additionally land in the engine's
:class:`~repro.obs.MetricRegistry` (``replay.*`` dotted names).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence

from repro.crypto.rng import DeterministicRng
from repro.errors import MembershipError
from repro.obs.metrics import MetricRegistry
from repro.obs.spans import span as _span
from repro.workloads.synthetic import OP_ADD, OP_REMOVE, Operation


class ReplayAdapter(Protocol):
    """Minimal surface a scheme must expose to be replayed."""

    def bootstrap(self, group_id: str, initial_members: Sequence[str]) -> None:
        ...

    def add_user(self, group_id: str, user: str) -> None:
        ...

    def remove_user(self, group_id: str, user: str) -> None:
        ...

    def sample_decrypt_seconds(self, group_id: str, user: str) -> float:
        """Time one member's key derivation."""
        ...


@dataclass
class ReplayReport:
    group_id: str
    operations_applied: int = 0
    adds: int = 0
    removes: int = 0
    skipped: int = 0
    admin_seconds: float = 0.0
    decrypt_samples: List[float] = field(default_factory=list)
    op_latencies: List[float] = field(default_factory=list)

    @property
    def mean_decrypt_seconds(self) -> float:
        if not self.decrypt_samples:
            return 0.0
        return sum(self.decrypt_samples) / len(self.decrypt_samples)

    def summary(self) -> Dict[str, float]:
        return {
            "operations": self.operations_applied,
            "adds": self.adds,
            "removes": self.removes,
            "skipped": self.skipped,
            "admin_seconds": round(self.admin_seconds, 6),
            "mean_decrypt_seconds": round(self.mean_decrypt_seconds, 6),
        }


class ReplayEngine:
    """Sequential trace replay with decrypt sampling."""

    def __init__(self, adapter: ReplayAdapter, group_id: str = "replay",
                 decrypt_sample_every: int = 0,
                 seed: str = "replay",
                 registry: Optional[MetricRegistry] = None) -> None:
        self.adapter = adapter
        self.group_id = group_id
        self.decrypt_sample_every = decrypt_sample_every
        self._rng = DeterministicRng(f"replay:{seed}")
        self.registry = registry if registry is not None else MetricRegistry()
        self._ops = self.registry.counter("replay.operations")
        self._skipped = self.registry.counter("replay.skipped")
        self._op_seconds = self.registry.histogram("replay.op_seconds")
        self._decrypt_seconds = self.registry.histogram(
            "replay.decrypt_seconds"
        )

    def run(self, trace: Sequence[Operation],
            initial_members: Sequence[str] = ()) -> ReplayReport:
        report = ReplayReport(group_id=self.group_id)
        members: List[str] = list(initial_members)
        with _span("replay.bootstrap", force=True, group=self.group_id,
                   members=len(members)):
            self.adapter.bootstrap(self.group_id, members)
        for index, op in enumerate(trace):
            span = _span("replay.op", force=True, kind=op.kind, user=op.user)
            try:
                with span:
                    if op.kind == OP_ADD:
                        self.adapter.add_user(self.group_id, op.user)
                        members.append(op.user)
                        report.adds += 1
                    elif op.kind == OP_REMOVE:
                        self.adapter.remove_user(self.group_id, op.user)
                        members.remove(op.user)
                        report.removes += 1
                    else:
                        raise MembershipError(
                            f"unknown operation {op.kind!r}"
                        )
            except MembershipError:
                report.skipped += 1
                self._skipped.add()
                continue
            elapsed = span.duration
            report.admin_seconds += elapsed
            report.op_latencies.append(elapsed)
            report.operations_applied += 1
            self._ops.add()
            self._op_seconds.observe(elapsed)
            if (self.decrypt_sample_every
                    and members
                    and (index + 1) % self.decrypt_sample_every == 0):
                probe = members[self._rng.randint_below(len(members))]
                with _span("replay.decrypt_probe", force=True,
                           user=probe) as probe_span:
                    sample = self.adapter.sample_decrypt_seconds(
                        self.group_id, probe
                    )
                    probe_span.set(decrypt_seconds=sample)
                report.decrypt_samples.append(sample)
                self._decrypt_seconds.observe(sample)
        return report


# ---------------------------------------------------------------------------
# Adapters
# ---------------------------------------------------------------------------

class IbbeSgxReplayAdapter:
    """Replays against the full IBBE-SGX system (enclave + cloud).

    Decrypt sampling builds a throwaway client for the probed user and
    times :meth:`GroupClient.decrypt_partition` on the current record —
    isolating the cryptographic path as the paper's measurement does.
    """

    def __init__(self, system) -> None:
        # ``system`` is a repro.System; typed loosely to avoid an import
        # cycle with the package root.
        self.system = system

    def bootstrap(self, group_id: str,
                  initial_members: Sequence[str]) -> None:
        if initial_members:
            self.system.admin.create_group(group_id, list(initial_members))
        # With no initial members the group is created lazily on the first
        # add (the trace-replay convention the paper's experiments use).

    def add_user(self, group_id: str, user: str) -> None:
        admin = self.system.admin
        if admin.cache.get(group_id) is None:
            admin.create_group(group_id, [user])
        else:
            admin.add_user(group_id, user)

    def remove_user(self, group_id: str, user: str) -> None:
        self.system.admin.remove_user(group_id, user)

    def sample_decrypt_seconds(self, group_id: str, user: str) -> float:
        state = self.system.admin.group_state(group_id)
        pid = state.table.partition_of(user)
        record = state.records[pid]
        client = self.system.make_client(group_id, user)
        start = time.perf_counter()
        client.decrypt_partition(record)
        return time.perf_counter() - start


class HybridReplayAdapter:
    """Replays against a :class:`~repro.baselines.hybrid.HybridGroupManager`."""

    def __init__(self, manager) -> None:
        self.manager = manager

    def bootstrap(self, group_id: str,
                  initial_members: Sequence[str]) -> None:
        for user in initial_members:
            self.manager.scheme.register_user(user)
        if initial_members:
            self.manager.create_group(group_id, list(initial_members))

    def add_user(self, group_id: str, user: str) -> None:
        self.manager.scheme.register_user(user)
        if group_id not in getattr(self.manager, "_groups"):
            self.manager.create_group(group_id, [user])
        else:
            self.manager.add_user(group_id, user)

    def remove_user(self, group_id: str, user: str) -> None:
        self.manager.remove_user(group_id, user)

    def sample_decrypt_seconds(self, group_id: str, user: str) -> float:
        start = time.perf_counter()
        self.manager.derive_group_key(group_id, user)
        return time.perf_counter() - start
