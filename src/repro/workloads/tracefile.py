"""Trace (de)serialization — JSONL, one membership operation per line.

Lets experiments pin exact workloads to files: generated traces can be
shared between runs, machines and the CLI's ``replay`` command, keeping
comparisons apples-to-apples.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence

from repro.errors import StorageError
from repro.workloads.synthetic import OP_ADD, OP_REMOVE, Operation

_HEADER = {"format": "repro-trace", "version": 1}


def save_trace(path: str | Path, operations: Sequence[Operation]) -> None:
    """Write a trace as JSONL (header line + one line per operation)."""
    lines = [json.dumps(_HEADER)]
    for op in operations:
        lines.append(json.dumps({
            "kind": op.kind, "user": op.user, "t": op.timestamp,
        }))
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_trace(path: str | Path) -> List[Operation]:
    """Read a trace written by :func:`save_trace`; validates structure."""
    text = Path(path).read_text("utf-8")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise StorageError(f"empty trace file {path}")
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        raise StorageError(f"malformed trace header in {path}") from exc
    if header.get("format") != "repro-trace":
        raise StorageError(f"{path} is not a repro trace file")
    if header.get("version") != 1:
        raise StorageError(f"unsupported trace version {header.get('version')}")
    operations = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
            kind = record["kind"]
            user = record["user"]
            timestamp = float(record.get("t", 0.0))
        except (ValueError, KeyError, TypeError) as exc:
            raise StorageError(
                f"malformed trace record at {path}:{number}"
            ) from exc
        if kind not in (OP_ADD, OP_REMOVE):
            raise StorageError(
                f"unknown operation kind {kind!r} at {path}:{number}"
            )
        if not isinstance(user, str) or not user:
            raise StorageError(f"invalid user at {path}:{number}")
        operations.append(Operation(kind=kind, user=user,
                                    timestamp=timestamp))
    return operations
