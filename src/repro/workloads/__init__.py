"""Workload generation and replay for the macrobenchmarks (paper §VI-B),
plus the chaos harness that replays a workload under injected faults."""

from repro.workloads.kernel_trace import KernelTraceConfig, synthesize_kernel_trace
from repro.workloads.replay import (
    HybridReplayAdapter,
    IbbeSgxReplayAdapter,
    ReplayEngine,
    ReplayReport,
)
from repro.workloads.synthetic import Operation, TraceStats, generate_trace
from repro.workloads.tracefile import load_trace, save_trace

__all__ = [
    "Operation",
    "TraceStats",
    "generate_trace",
    "KernelTraceConfig",
    "synthesize_kernel_trace",
    "ReplayEngine",
    "ReplayReport",
    "IbbeSgxReplayAdapter",
    "HybridReplayAdapter",
    "save_trace",
    "load_trace",
    "ChaosReport",
    "run_chaos",
    "cloud_digest",
    "make_membership_trace",
    "CalibrationReport",
    "ScaleConfig",
    "ScaleReport",
    "plan_groups",
    "run_calibration",
    "run_scale",
    "zipf_group_sizes",
]

# The chaos harness and the scale suite are imported lazily so
# ``python -m repro.workloads.chaos`` / ``python -m
# repro.workloads.scale`` (the CI smoke entry points) do not import
# their module twice.
_CHAOS_EXPORTS = frozenset(
    {"ChaosReport", "run_chaos", "cloud_digest", "make_membership_trace"}
)
_SCALE_EXPORTS = frozenset(
    {"CalibrationReport", "ScaleConfig", "ScaleReport", "plan_groups",
     "run_calibration", "run_scale", "zipf_group_sizes"}
)


def __getattr__(name):
    if name in _CHAOS_EXPORTS:
        from repro.workloads import chaos

        return getattr(chaos, name)
    if name in _SCALE_EXPORTS:
        from repro.workloads import scale

        return getattr(scale, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
