"""Workload generation and replay for the macrobenchmarks (paper §VI-B)."""

from repro.workloads.kernel_trace import KernelTraceConfig, synthesize_kernel_trace
from repro.workloads.replay import (
    HybridReplayAdapter,
    IbbeSgxReplayAdapter,
    ReplayEngine,
    ReplayReport,
)
from repro.workloads.synthetic import Operation, TraceStats, generate_trace
from repro.workloads.tracefile import load_trace, save_trace

__all__ = [
    "Operation",
    "TraceStats",
    "generate_trace",
    "KernelTraceConfig",
    "synthesize_kernel_trace",
    "ReplayEngine",
    "ReplayReport",
    "IbbeSgxReplayAdapter",
    "HybridReplayAdapter",
    "save_trace",
    "load_trace",
]
