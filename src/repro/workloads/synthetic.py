"""Synthetic membership traces (paper §VI-B2, Fig. 10).

The paper generates 11 traces of 10,000 membership operations with
revocation ratios 0 %, 10 %, …, 100 % and replays them against IBBE-SGX
with several partition sizes.  :func:`generate_trace` reproduces that
construction: each operation is a revocation of a random current member
with probability ``revocation_rate``, otherwise an addition of a fresh
user; when no member is available to revoke, an addition is emitted
instead (and vice versa at rate 1.0 once the group drains).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.crypto.rng import DeterministicRng
from repro.errors import ParameterError

OP_ADD = "add"
OP_REMOVE = "remove"


@dataclass(frozen=True)
class Operation:
    kind: str        # OP_ADD | OP_REMOVE
    user: str
    timestamp: float = 0.0   # virtual time, seconds since trace start


@dataclass(frozen=True)
class TraceStats:
    operations: int
    adds: int
    removes: int
    peak_group_size: int
    final_group_size: int

    def describe(self) -> str:
        return (
            f"{self.operations} ops ({self.adds} add / {self.removes} rm), "
            f"peak group {self.peak_group_size}, final {self.final_group_size}"
        )


def trace_stats(operations: Sequence[Operation],
                initial_members: Sequence[str] = ()) -> TraceStats:
    current = set(initial_members)
    peak = len(current)
    adds = removes = 0
    for op in operations:
        if op.kind == OP_ADD:
            current.add(op.user)
            adds += 1
        else:
            current.discard(op.user)
            removes += 1
        peak = max(peak, len(current))
    return TraceStats(
        operations=len(operations), adds=adds, removes=removes,
        peak_group_size=peak, final_group_size=len(current),
    )


def generate_trace(n_ops: int, revocation_rate: float,
                   initial_members: Sequence[str] = (),
                   seed: str = "synthetic",
                   user_prefix: str = "u") -> List[Operation]:
    """Random membership trace with a target revocation ratio.

    Deterministic in ``(n_ops, revocation_rate, initial_members, seed)``.
    """
    if n_ops < 0:
        raise ParameterError("n_ops must be non-negative")
    if not 0.0 <= revocation_rate <= 1.0:
        raise ParameterError("revocation_rate must be in [0, 1]")
    rng = DeterministicRng(
        f"trace:{seed}:{n_ops}:{revocation_rate}:{len(initial_members)}"
    )
    current: List[str] = list(initial_members)
    next_user = 0
    ops: List[Operation] = []
    threshold = int(revocation_rate * 1_000_000)
    for index in range(n_ops):
        want_remove = rng.randint_below(1_000_000) < threshold
        if want_remove and current:
            victim = current.pop(rng.randint_below(len(current)))
            ops.append(Operation(OP_REMOVE, victim, float(index)))
        else:
            user = f"{user_prefix}{next_user}"
            next_user += 1
            current.append(user)
            ops.append(Operation(OP_ADD, user, float(index)))
    return ops


def revocation_rate_sweep(n_ops: int, steps: int = 11,
                          initial_members: Sequence[str] = (),
                          seed: str = "synthetic",
                          ) -> List[tuple]:
    """The Fig. 10 trace family: (rate, operations) pairs."""
    if steps < 2:
        raise ParameterError("sweep needs at least 2 steps")
    sweep = []
    for i in range(steps):
        rate = i / (steps - 1)
        sweep.append((
            rate,
            generate_trace(n_ops, rate, initial_members,
                           seed=f"{seed}:{i}"),
        ))
    return sweep
