"""Linux-kernel-like membership trace synthesizer (paper §VI-B1, Fig. 9).

The paper derives its realistic trace from the Linux kernel git history on
Kaggle: a developer's first commit is an *add to group*, their last commit
a *remove from group*, yielding 43,468 membership operations over 10 years
with the concurrent group size never exceeding 2,803 users.

That dataset is unavailable offline, so this module synthesizes a trace
matched to the published statistics (the substitution is recorded in
DESIGN.md):

* one add + one remove per developer → ``ops = 2 × developers``;
* developer arrivals spread over the project timeline with a linear growth
  trend (the kernel's contributor base grew over the decade);
* heavy-tailed activity lifetimes (many drive-by contributors, a long tail
  of maintainers), produced by a two-component exponential mixture;
* lifetimes globally scaled (binary search) until the *peak concurrent
  group size* matches the target.

Because only ordering and group-size dynamics matter to the replay
experiment, matching (op count, duration, peak size) reproduces the
workload characteristics Fig. 9 depends on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.crypto.rng import DeterministicRng
from repro.errors import ParameterError
from repro.workloads.synthetic import OP_ADD, OP_REMOVE, Operation

#: Statistics published in the paper (§VI-B1).
PAPER_TOTAL_OPS = 43_468
PAPER_PEAK_GROUP = 2_803
PAPER_YEARS = 10.0


@dataclass(frozen=True)
class KernelTraceConfig:
    """Generation parameters; defaults reproduce the paper's statistics.

    ``scale`` shrinks the trace proportionally (ops and peak size) so the
    pure-Python benchmarks can replay it in reasonable time while keeping
    the dynamics; ``scale=1.0`` is the full-size trace.
    """

    scale: float = 1.0
    seed: str = "linux-kernel"
    total_ops: int = PAPER_TOTAL_OPS
    peak_group_size: int = PAPER_PEAK_GROUP
    years: float = PAPER_YEARS

    def scaled_ops(self) -> int:
        return max(2, int(self.total_ops * self.scale) // 2 * 2)

    def scaled_peak(self) -> int:
        return max(2, int(self.peak_group_size * self.scale))


def synthesize_kernel_trace(config: KernelTraceConfig = KernelTraceConfig(),
                            ) -> List[Operation]:
    """Produce the membership operation sequence (adds and removes ordered
    by virtual time in seconds over the project window)."""
    n_devs = config.scaled_ops() // 2
    target_peak = config.scaled_peak()
    if target_peak > n_devs:
        raise ParameterError("peak group size cannot exceed developer count")
    horizon = config.years * 365.25 * 86_400
    rng = DeterministicRng(f"kernel-trace:{config.seed}:{n_devs}")

    arrivals = _arrival_times(n_devs, horizon, rng)
    raw_lifetimes = [_lifetime_sample(rng) for _ in range(n_devs)]

    # Binary-search a lifetime scale so the peak concurrency matches.
    low, high = 1e-6, 1e3
    best: Tuple[float, int] = (1.0, 0)
    for _ in range(48):
        mid = math.sqrt(low * high)
        peak = _peak_concurrency(arrivals, raw_lifetimes, mid, horizon)
        best = (mid, peak)
        if peak < target_peak:
            low = mid
        elif peak > target_peak:
            high = mid
        else:
            break
    scale = best[0]

    events: List[Operation] = []
    for index, (arrival, lifetime) in enumerate(zip(arrivals, raw_lifetimes)):
        departure = min(arrival + lifetime * scale, horizon)
        if departure <= arrival:
            departure = arrival + 1.0
        user = f"dev{index}"
        events.append(Operation(OP_ADD, user, arrival))
        events.append(Operation(OP_REMOVE, user, departure))
    events.sort(key=lambda op: (op.timestamp, op.kind == OP_REMOVE, op.user))
    return _fix_order(events)


def _arrival_times(n: int, horizon: float, rng: DeterministicRng,
                   ) -> List[float]:
    """Arrivals with a linearly growing rate (contributor-base growth):
    inverse-transform sampling of density f(t) ∝ 1 + 2t/horizon."""
    arrivals = []
    for _ in range(n):
        u = rng.randint_below(1_000_000) / 1_000_000
        # CDF F(t) = (t + t²/h)/(2h) normalized → solve quadratic.
        # With x = t/h: F = (x + x²)/2 → x = (-1 + sqrt(1 + 8u))/2
        x = (-1.0 + math.sqrt(1.0 + 8.0 * u)) / 2.0
        arrivals.append(min(x, 1.0) * horizon)
    arrivals.sort()
    return arrivals


def _lifetime_sample(rng: DeterministicRng) -> float:
    """Two-component exponential mixture (days): 75 % drive-by
    contributors (mean 60 days), 25 % long-term maintainers (mean 900)."""
    u = rng.randint_below(1_000_000) / 1_000_000
    mean_days = 60.0 if u < 0.75 else 900.0
    v = max(rng.randint_below(1_000_000), 1) / 1_000_000
    return -mean_days * 86_400 * math.log(v)


def _peak_concurrency(arrivals: List[float], lifetimes: List[float],
                      scale: float, horizon: float) -> int:
    points: List[Tuple[float, int]] = []
    for arrival, lifetime in zip(arrivals, lifetimes):
        departure = min(arrival + lifetime * scale, horizon)
        points.append((arrival, 1))
        points.append((max(departure, arrival + 1.0), -1))
    points.sort()
    peak = current = 0
    for _, delta in points:
        current += delta
        peak = max(peak, current)
    return peak


def _fix_order(events: List[Operation]) -> List[Operation]:
    """Guarantee every remove follows its add and no double membership."""
    seen_add = set()
    fixed: List[Operation] = []
    pending_removes: List[Operation] = []
    for op in events:
        if op.kind == OP_ADD:
            seen_add.add(op.user)
            fixed.append(op)
        elif op.user in seen_add:
            fixed.append(op)
        else:
            pending_removes.append(op)
    fixed.extend(pending_removes)  # defensive; should be empty
    return fixed
