"""Chaos harness: replay a membership workload under injected faults.

The robustness counterpart of :mod:`repro.workloads.replay` and the
executable form of the chaos-equivalence contract:

    *a retried, recovered run converges to the byte-identical final
    cloud state of the fault-free run.*

:func:`run_chaos` builds two independent deployments seeded identically
(each with its own :class:`~repro.crypto.rng.DeterministicRng` and its
own :class:`~repro.cloud.FileCloudStore` directory), drives both through
the same deterministic membership trace, and injects a seeded
:class:`~repro.faults.FaultPlan` into one of them: transient store
outages and read timeouts (absorbed by the :class:`RetryPolicy` layers),
latency spikes (accounted), crashes at the named crash points, and full
enclave restarts.  After every applied revocation both runs verify the
revoked user is locked out; at the end the two stores' content digests
are compared.

**The crash-recovery driver.**  A :class:`~repro.errors.CrashError`
models process death, so nothing in the library catches it.  The driver
plays the part of the freshly restarted process:

1. re-open the :class:`FileCloudStore` on the same directory — its
   journal roll-forward resolves any torn commit to "applied" or "never
   happened";
2. drop and reload the group's administrative state from the cloud;
3. decide whether the crashed operation *landed* (for an add: the user
   is in the reloaded table; for a remove: absent) — a crash after the
   commit point must not be redone;
4. if it did not land, rewind the deployment RNG to the snapshot taken
   at the operation boundary and redo it, consuming the exact same
   random bytes the fault-free run consumed.

Step 4 is why byte-identity survives recovery: an operation either runs
to completion exactly once on the advanced stream, or is replayed from
the snapshot until it does.

Content digests deliberately exclude object *versions*: a redone
conditional put consumes extra version numbers, and versions are
transport-layer concurrency tokens, not group state (what an adversary
or a client derives keys from is the bytes).  They also exclude the
``sealed-gk`` blob: it is opaque to everyone but the enclave, and the
monotonic seal counter encrypted inside it counts every seal the
*platform* performed — including attempts a crash aborted before their
cloud commit — so no faithful recovery can reproduce its exact bytes.
The group key it protects is compared directly instead: both runs must
yield the byte-identical group key at a surviving member's client,
which is the stronger, semantic form of the check.

**Compaction under chaos.**  With ``compact_every=K`` both deployments
run their :class:`FileCloudStore` with automatic snapshot compaction
every ``K`` mutations, so compactions land at whatever points the trace
dictates — including inside an operation that a fault plan then crashes.
A crash at ``cloud.compact.journaled`` or
``cloud.compact.snapshot_written`` leaves a compaction journal behind;
the reopen in step 1 rolls it forward.  After the trace, both runs
perform a *cold start*: reopen the store (faults off), rebuild the
administrator's group state from whatever snapshot + event suffix
survived, and sync a brand-new client from sequence zero.  The rebuilt
state digests and the cold clients' group keys must match across the
reference and chaos runs, extending byte-for-byte convergence to the
compacted bootstrap path.

Run from the command line (the CI chaos-smoke and compaction-smoke
jobs)::

    python -m repro.workloads.chaos --profile store --seed 7
    python -m repro.workloads.chaos --profile full  --seed 7 \
        --compact-every 3
"""

from __future__ import annotations

import hashlib
import tempfile
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.crypto.rng import DeterministicRng
from repro.errors import CrashError, NotFoundError, RevokedError, UnavailableError
from repro.faults import FaultInjector, FaultPlan, FaultyCloudStore, install
from repro.workloads.synthetic import OP_ADD, OP_REMOVE, Operation


def cloud_digest(store) -> str:
    """Content digest of a store: SHA-256 over the sorted ``(path,
    data)`` pairs.  Versions and sealed-key blobs are excluded (see the
    module docstring); the group key sealed inside the latter is checked
    directly via :meth:`_ChaosRun.group_key_hash`."""
    digest = hashlib.sha256()
    for obj in sorted(store.adversary_view(), key=lambda o: o.path):
        if obj.path.endswith("/sealed-gk"):
            continue
        digest.update(obj.path.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(hashlib.sha256(obj.data).digest())
        digest.update(b"\x01")
    return digest.hexdigest()


@dataclass
class ChaosReport:
    """Outcome of one :func:`run_chaos` comparison."""

    seed: str
    plan: FaultPlan
    ops_total: int = 0
    ops_applied: int = 0
    crashes_recovered: int = 0
    enclave_restarts: int = 0
    revocation_checks: int = 0
    revocation_failures: int = 0
    reference_digest: str = ""
    chaos_digest: str = ""
    reference_key_hash: str = ""
    chaos_key_hash: str = ""
    reference_cold_digest: str = ""
    chaos_cold_digest: str = ""
    reference_cold_key_hash: str = ""
    chaos_cold_key_hash: str = ""
    reference_horizon: int = 0
    chaos_horizon: int = 0
    fault_history: List[Tuple[str, str]] = field(default_factory=list)
    retry_backoff_ms: float = 0.0
    traced: bool = False
    server_slo: dict = field(default_factory=dict)
    request_log_tail: List[dict] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        """Byte-identical final cloud state, the byte-identical group key
        at a surviving member (live and after a cold start from whatever
        snapshot survived), identical cold-started administrative state,
        and every revoked user locked out whenever checked."""
        key_hashes = {self.reference_key_hash, self.chaos_key_hash,
                      self.reference_cold_key_hash,
                      self.chaos_cold_key_hash}
        return (self.reference_digest == self.chaos_digest
                and self.reference_cold_digest == self.chaos_cold_digest
                and len(key_hashes) == 1
                and self.revocation_failures == 0)

    def summary(self) -> dict:
        return {
            "seed": self.seed,
            "ops_total": self.ops_total,
            "ops_applied": self.ops_applied,
            "faults_injected": len(self.fault_history),
            "crashes_recovered": self.crashes_recovered,
            "enclave_restarts": self.enclave_restarts,
            "revocation_checks": self.revocation_checks,
            "revocation_failures": self.revocation_failures,
            "retry_backoff_ms": round(self.retry_backoff_ms, 3),
            "reference_digest": self.reference_digest,
            "chaos_digest": self.chaos_digest,
            "reference_key_hash": self.reference_key_hash,
            "chaos_key_hash": self.chaos_key_hash,
            "reference_cold_digest": self.reference_cold_digest,
            "chaos_cold_digest": self.chaos_cold_digest,
            "reference_cold_key_hash": self.reference_cold_key_hash,
            "chaos_cold_key_hash": self.chaos_cold_key_hash,
            "reference_horizon": self.reference_horizon,
            "chaos_horizon": self.chaos_horizon,
            "converged": self.converged,
            "traced": self.traced,
            # Server-side view of the chaos run (network mode only):
            # per-method SLO windows from the final server incarnation
            # and the tail of the request log every incarnation shared.
            "server_slo": self.server_slo,
            "request_log_tail": self.request_log_tail[-8:],
        }


def make_membership_trace(ops: int, pool: int, initial: int,
                          seed: str) -> Tuple[List[str], List[Operation]]:
    """Deterministic membership trace over a ``u0..u{pool-1}`` user pool.

    Returns ``(initial_members, operations)``; every operation is valid
    against the membership state it will find (no skipped ops, so the
    applied-op count is itself deterministic).  The group never drains
    below one member.
    """
    rng = DeterministicRng(f"chaos-trace:{seed}")
    users = [f"u{i}" for i in range(pool)]
    members = set(users[:initial])
    trace: List[Operation] = []
    for index in range(ops):
        absent = sorted(set(users) - members)
        present = sorted(members)
        # ~60/40 add/remove mix, constrained by what's possible.
        want_add = rng.randint_below(10) < 6
        if (want_add or len(present) <= 1) and absent:
            user = absent[rng.randint_below(len(absent))]
            members.add(user)
            trace.append(Operation(OP_ADD, user, float(index)))
        else:
            user = present[rng.randint_below(len(present))]
            members.remove(user)
            trace.append(Operation(OP_REMOVE, user, float(index)))
    return users[:initial], trace


class _ChaosRun:
    """One deployment (reference or faulty) driven through a trace."""

    GROUP = "chaos"

    def __init__(self, root: str, seed: str, capacity: int, pool: int,
                 injector: Optional[FaultInjector],
                 workers: Optional[int] = 1,
                 compact_every: Optional[int] = None,
                 remote: bool = False) -> None:
        from repro import quickstart_system
        from repro.cloud import FileCloudStore

        self.root = root
        self.injector = injector
        self.compact_every = compact_every
        self.remote = remote
        self._server = None
        self._remote_store = None
        # One in-memory request log shared across every server
        # incarnation (crash recovery restarts the server): its tail
        # shows the last requests spanning the restarts.
        self.request_log = None
        if remote:
            from repro.net import RequestLog

            self.request_log = RequestLog()
        self.rng = DeterministicRng(f"chaos-system:{seed}")
        # auto_repartition stays off so a crashed remove never nests a
        # second (repartition) plan inside its own recovery window.
        self.system = quickstart_system(
            partition_capacity=capacity, params="toy64", rng=self.rng,
            auto_repartition=False, workers=workers,
        )
        self._store_cls = FileCloudStore
        self.inner = FileCloudStore(root, compact_every=compact_every)
        self._wire()
        self.clients = {}
        self.crashes_recovered = 0
        self.enclave_restarts = 0
        self.revocation_checks = 0
        self.revocation_failures = 0

    # -- plumbing --------------------------------------------------------------

    def _serving_store(self):
        """The store the deployment talks to: the ``FileCloudStore``
        itself, or — in network mode — a fresh ``RemoteCloudStore``
        connected to a :class:`~repro.net.ServerThread` hosting it.
        An injected crash then genuinely kills the serving process."""
        if not self.remote:
            return self.inner
        from repro.net import RemoteCloudStore, ServerThread

        self._server = ServerThread(self.inner,
                                    request_log=self.request_log)
        url = self._server.start()
        self._remote_store = RemoteCloudStore(url)
        return self._remote_store

    def _stop_server(self) -> None:
        if self._remote_store is not None:
            self._remote_store.close()
            self._remote_store = None
        if self._server is not None:
            self._server.stop()
            self._server = None

    def _wire(self) -> None:
        served = self._serving_store()
        store = (FaultyCloudStore(served, self.injector)
                 if self.injector is not None else served)
        self.system.cloud = store
        self.system.admin.cloud = store
        for client in self.system._clients:
            client._cloud = store

    def _reopen_store(self) -> None:
        """The restarted process re-opens the store directory: the
        journal roll-forward runs here.  In network mode the dead
        server is torn down and a fresh one is started on the reopened
        store — the full restart a real deployment would perform."""
        self._stop_server()
        self.inner = self._store_cls(self.root,
                                     compact_every=self.compact_every)
        self._wire()

    # -- the crash-recovery driver --------------------------------------------

    def _recover(self) -> None:
        self._reopen_store()
        admin = self.system.admin
        admin.cache.drop(self.GROUP)
        try:
            admin.load_group_from_cloud(self.GROUP)
        except NotFoundError:
            pass  # the crashed op was the group creation; nothing landed

    def _applied(self, op: Operation) -> bool:
        state = self.system.admin.cache.get(self.GROUP)
        if state is None:
            return False
        if op.kind == OP_ADD:
            return op.user in state.table
        return op.user not in state.table

    def _drive(self, action, applied_check) -> bool:
        """Run one mutation to completion across crashes.  Returns True
        if it was redone at least once after landing-free crashes."""
        from repro.errors import ConflictError, StorageError

        snapshot = self.rng.getstate()
        while True:
            try:
                action()
                return True
            except CrashError:
                self.crashes_recovered += 1
                self._recover()
                if applied_check():
                    # Landed before the crash: the RNG stream advanced
                    # exactly once, same as the fault-free run — do not
                    # rewind, do not redo.
                    return True
                self.rng.setstate(snapshot)
            except UnavailableError:
                # Retry budget exhausted mid-plan (rare with default
                # policies): treat like a crash — reload and, if the op
                # did not land, rewind and redo.
                self._recover()
                if applied_check():
                    return True
                self.rng.setstate(snapshot)
            except ConflictError:
                raise
            except StorageError:
                # Network mode: an injected crash killed the *server*
                # mid-request, so the client saw the connection drop
                # with the outcome unknown.  Resolve the ambiguity the
                # only sound way — restart, reload, inspect.
                if not self.remote:
                    raise
                self.crashes_recovered += 1
                self._recover()
                if applied_check():
                    return True
                self.rng.setstate(snapshot)

    # -- workload --------------------------------------------------------------

    def bootstrap(self, initial_members: List[str], pool: int) -> None:
        admin = self.system.admin

        def create() -> None:
            if admin.cache.get(self.GROUP) is None:
                admin.create_group(self.GROUP, initial_members)

        def created() -> bool:
            return admin.cache.get(self.GROUP) is not None

        self._drive(create, created)
        # Provision every pool user's key and client up front, in both
        # runs identically: provisioning draws from the deployment RNG,
        # so doing it lazily (e.g. only when a revocation check needs a
        # client) would desynchronise the reference and chaos streams.
        for i in range(pool):
            user = f"u{i}"
            self.clients[user] = self.system.make_client(self.GROUP, user)

    def maybe_restart_enclave(self) -> None:
        if self.injector is None:
            return
        if self.injector.take_enclave_restart():
            self.system.restart_enclave()
            self.enclave_restarts += 1

    def apply(self, op: Operation) -> None:
        admin = self.system.admin
        if op.kind == OP_ADD:
            self._drive(lambda: admin.add_user(self.GROUP, op.user),
                        lambda: self._applied(op))
        else:
            self._drive(lambda: admin.remove_user(self.GROUP, op.user),
                        lambda: self._applied(op))
            self.check_revoked(op.user)

    def check_revoked(self, user: str) -> None:
        """The revocation invariant: after a remove (and whatever crash
        recovery it took), the revoked user's client must not reach a
        group key."""
        client = self.clients[user]
        self.revocation_checks += 1
        client.sync()
        try:
            client.current_group_key()
        except RevokedError:
            return
        self.revocation_failures += 1

    def group_key_hash(self) -> str:
        """Hash of the group key a (deterministically chosen) surviving
        member derives — the semantic stand-in for comparing sealed-gk
        bytes (see :func:`cloud_digest`)."""
        state = self.system.admin.cache.get(self.GROUP)
        member = sorted(state.table.all_members())[0]
        client = self.clients[member]
        client.sync()
        return hashlib.sha256(client.current_group_key()).hexdigest()

    def cold_start(self) -> Tuple[str, str]:
        """Cold-start equivalence probe (faults off): reopen the store —
        rolling forward any surviving journal — rebuild the
        administrator's group state from whatever snapshot + event
        suffix compaction left behind, and sync a brand-new client from
        sequence zero.  Returns ``(state_digest, key_hash)``.

        The state digest covers the epoch, the partition-id cursor and
        every partition record's signed payload bytes, so it pins
        exactly what a restarted administrator reconstructs.  The fresh
        client reuses the cached provisioned user key (``make_client``
        draws no deployment randomness for an already-provisioned user),
        keeping the reference and chaos RNG streams aligned.
        """
        self.injector = None
        self._reopen_store()
        admin = self.system.admin
        admin.cache.drop(self.GROUP)
        state = admin.load_group_from_cloud(self.GROUP)
        digest = hashlib.sha256()
        digest.update(f"epoch:{state.epoch}\x00".encode("utf-8"))
        digest.update(f"next:{state.table.next_partition_id}\x00"
                      .encode("utf-8"))
        for pid in sorted(state.records):
            digest.update(f"p{pid}\x00".encode("utf-8"))
            digest.update(hashlib.sha256(
                state.records[pid].payload()).digest())
        member = sorted(state.table.all_members())[0]
        client = self.system.make_client(self.GROUP, member)
        client.sync()
        key_hash = hashlib.sha256(client.current_group_key()).hexdigest()
        return digest.hexdigest(), key_hash

    def server_observability(self) -> Tuple[dict, list]:
        """The live server's SLO windows and shared request-log tail
        (network mode), fetched over the wire via ``ops.stats``."""
        if self._remote_store is None:
            return {}, []
        from repro.errors import ReproError

        try:
            stats = self._remote_store.server_stats()
        except ReproError:
            return {}, []
        slo = stats.get("slo", {})
        tail = stats.get("request_log", {}).get("tail", [])
        return slo, tail

    def finish(self) -> str:
        self.system.close()
        self._stop_server()
        return cloud_digest(self.inner)


def run_chaos(plan: Optional[FaultPlan] = None, *, ops: int = 30,
              pool: int = 12, initial: int = 5, capacity: int = 4,
              seed: str = "chaos", workers: Optional[int] = 1,
              compact_every: Optional[int] = None,
              remote: bool = False, traced: bool = False,
              ) -> ChaosReport:
    """Replay one deterministic membership trace twice — fault-free and
    under ``plan`` — and compare the final cloud bytes.

    ``seed`` derives everything: the trace, both deployments' RNG
    streams, and (by default) the fault schedule, so the entire
    comparison is replayable from one value.

    ``compact_every`` (when set) enables automatic snapshot compaction
    on both stores every that-many mutations, and the convergence
    verdict additionally requires cold starts from the two (differently)
    compacted stores to reconstruct identical state (see the module
    docstring).

    ``remote`` puts the *chaos* deployment's store behind a real
    :class:`~repro.net.StoreServer` and talks to it through a
    :class:`~repro.net.RemoteCloudStore`: injected crashes then kill
    the serving process mid-request (clients see dropped connections
    with unknown outcomes, not tidy exceptions) and recovery includes a
    server restart.  The reference stays in-process, so convergence is
    asserted *across the network boundary* — the remote chaos run must
    land on the byte-identical cloud state of the in-process fault-free
    run.

    ``traced`` (meaningful with ``remote``) runs the chaos side with
    distributed tracing enabled — a trace context on every request,
    server spans shipped back and stitched client-side — while the
    reference stays untraced.  The unchanged convergence verdict then
    doubles as proof that tracing never perturbs store state, even
    under faults and crash recovery.
    """
    if plan is None:
        plan = FaultPlan.store_faults(seed)
    initial_members, trace = make_membership_trace(ops, pool, initial, seed)
    report = ChaosReport(seed=seed, plan=plan, ops_total=len(trace))

    with tempfile.TemporaryDirectory(prefix="chaos-ref-") as ref_root, \
            tempfile.TemporaryDirectory(prefix="chaos-run-") as chaos_root:
        # Reference: same trace, no injector.
        install(None)
        reference = _ChaosRun(ref_root, seed, capacity, pool, None,
                              workers=workers, compact_every=compact_every)
        reference.bootstrap(initial_members, pool)
        for op in trace:
            reference.apply(op)
        report.reference_key_hash = reference.group_key_hash()
        (report.reference_cold_digest,
         report.reference_cold_key_hash) = reference.cold_start()
        report.reference_horizon = reference.inner.snapshot_horizon()
        report.reference_digest = reference.finish()
        report.revocation_checks += reference.revocation_checks
        report.revocation_failures += reference.revocation_failures

        # Chaos: identical seeds, faults on.
        injector = FaultInjector(plan)
        install(injector)
        if traced:
            from repro import obs

            obs.tracer().reset()
            obs.enable()
            report.traced = True
        try:
            chaos = _ChaosRun(chaos_root, seed, capacity, pool, injector,
                              workers=workers, compact_every=compact_every,
                              remote=remote)
            chaos.bootstrap(initial_members, pool)
            for op in trace:
                chaos.maybe_restart_enclave()
                chaos.apply(op)
                report.ops_applied += 1
        finally:
            # The trace is done: the final state checks below verify
            # convergence and should not themselves be perturbed.
            install(None)
            if traced:
                from repro import obs

                obs.disable()
                obs.tracer().reset()
        report.chaos_key_hash = chaos.group_key_hash()
        (report.chaos_cold_digest,
         report.chaos_cold_key_hash) = chaos.cold_start()
        report.chaos_horizon = chaos.inner.snapshot_horizon()
        (report.server_slo,
         report.request_log_tail) = chaos.server_observability()
        report.chaos_digest = chaos.finish()
        report.crashes_recovered = chaos.crashes_recovered
        report.enclave_restarts = chaos.enclave_restarts
        report.revocation_checks += chaos.revocation_checks
        report.revocation_failures += chaos.revocation_failures
        report.fault_history = injector.history()
        report.retry_backoff_ms = (
            chaos.system.admin.retry.slept_ms
            + sum(c.retry.slept_ms for c in chaos.clients.values())
        )
    return report


# ---------------------------------------------------------------------------
# Sharded multi-enclave chaos (kill-any-shard failover)
# ---------------------------------------------------------------------------

@dataclass
class ShardChaosReport:
    """Outcome of one :func:`run_shard_chaos` comparison."""

    seed: str
    nshards: int
    plan: FaultPlan
    groups: List[str] = field(default_factory=list)
    ops_total: int = 0
    ops_applied: int = 0
    scheduled_kills: int = 0
    injected_kills: int = 0
    respawns: int = 0
    attest_faults: int = 0
    revocation_checks: int = 0
    revocation_failures: int = 0
    reference_digest: str = ""
    chaos_digest: str = ""
    reference_membership_digest: str = ""
    chaos_membership_digest: str = ""
    reference_key_hashes: dict = field(default_factory=dict)
    chaos_key_hashes: dict = field(default_factory=dict)
    fault_history: List[Tuple[str, str]] = field(default_factory=list)
    final_health: dict = field(default_factory=dict)

    @property
    def converged(self) -> bool:
        """Byte-identical cloud state, identical per-group membership,
        the byte-identical group key at a surviving member of every
        group, every revoked user locked out whenever checked, and
        every shard back up (alive + re-attested) at the end."""
        shards_ok = self.final_health.get("status") == "ok"
        return (self.reference_digest == self.chaos_digest
                and (self.reference_membership_digest
                     == self.chaos_membership_digest)
                and self.reference_key_hashes == self.chaos_key_hashes
                and self.revocation_failures == 0
                and shards_ok)

    def summary(self) -> dict:
        return {
            "seed": self.seed,
            "nshards": self.nshards,
            "groups": self.groups,
            "ops_total": self.ops_total,
            "ops_applied": self.ops_applied,
            "scheduled_kills": self.scheduled_kills,
            "injected_kills": self.injected_kills,
            "respawns": self.respawns,
            "attest_faults": self.attest_faults,
            "revocation_checks": self.revocation_checks,
            "revocation_failures": self.revocation_failures,
            "faults_injected": len(self.fault_history),
            "reference_digest": self.reference_digest,
            "chaos_digest": self.chaos_digest,
            "reference_membership_digest": self.reference_membership_digest,
            "chaos_membership_digest": self.chaos_membership_digest,
            "reference_key_hashes": self.reference_key_hashes,
            "chaos_key_hashes": self.chaos_key_hashes,
            "final_health": self.final_health,
            "converged": self.converged,
        }


def make_shard_trace(groups: int, ops: int, pool: int, initial: int,
                     seed: str) -> Tuple[dict, List[Tuple[str, Operation]]]:
    """Deterministic multi-group churn: one membership trace per group
    (identities prefixed ``g<k>.u<i>`` so user pools are disjoint),
    interleaved round-robin.  Returns ``(initial_members_by_group,
    interleaved_trace)``."""
    initials: dict = {}
    per_group: dict = {}
    for k in range(groups):
        gid = f"g{k}"
        members, trace = make_membership_trace(
            ops, pool, initial, f"{seed}:{gid}")
        initials[gid] = [f"{gid}.{u}" for u in members]
        per_group[gid] = [
            Operation(op.kind, f"{gid}.{op.user}", op.timestamp)
            for op in trace
        ]
    interleaved: List[Tuple[str, Operation]] = []
    for index in range(ops):
        for k in range(groups):
            gid = f"g{k}"
            if index < len(per_group[gid]):
                interleaved.append((gid, per_group[gid][index]))
    return initials, interleaved


class _ShardRun:
    """One sharded deployment driven through an interleaved trace."""

    def __init__(self, nshards: int, seed: str, capacity: int) -> None:
        from repro.shard import ShardedSystem

        self.system = ShardedSystem(
            nshards=nshards, partition_capacity=capacity, params="toy64",
            seed=f"shard-chaos:{seed}",
        )
        self.clients = {}
        self.revocation_checks = 0
        self.revocation_failures = 0

    def bootstrap(self, initials: dict) -> None:
        for gid in sorted(initials):
            self.system.create_group(gid, initials[gid])

    def client(self, gid: str, user: str):
        # Client construction draws no deployment randomness (key
        # extraction is deterministic in the MSK), so lazy creation
        # cannot desynchronise the reference and chaos runs.
        if (gid, user) not in self.clients:
            self.clients[(gid, user)] = self.system.make_client(gid, user)
        return self.clients[(gid, user)]

    def apply(self, gid: str, op: Operation) -> None:
        if op.kind == OP_ADD:
            self.system.add_user(gid, op.user)
        else:
            self.system.remove_user(gid, op.user)
            self.check_revoked(gid, op.user)

    def check_revoked(self, gid: str, user: str) -> None:
        client = self.client(gid, user)
        self.revocation_checks += 1
        client.sync()
        try:
            client.current_group_key()
        except RevokedError:
            return
        self.revocation_failures += 1

    def membership_digest(self) -> str:
        digest = hashlib.sha256()
        for gid in self.system.group_ids():
            state = self.system.group_state(gid)
            digest.update(gid.encode("utf-8") + b"\x00")
            for member in sorted(state.table.all_members()):
                digest.update(member.encode("utf-8") + b"\x01")
        return digest.hexdigest()

    def key_hashes(self) -> dict:
        hashes = {}
        for gid in self.system.group_ids():
            state = self.system.group_state(gid)
            member = sorted(state.table.all_members())[0]
            client = self.client(gid, member)
            client.sync()
            key = client.current_group_key()
            hashes[gid] = hashlib.sha256(key).hexdigest()
        return hashes


def run_shard_chaos(plan: Optional[FaultPlan] = None, *, nshards: int = 2,
                    groups: int = 3, ops: int = 16, pool: int = 8,
                    initial: int = 4, capacity: int = 4,
                    seed: str = "shard-chaos") -> ShardChaosReport:
    """Kill-any-shard convergence: drive ``groups`` interleaved
    membership traces through a ``ShardedSystem(nshards)`` while killing
    *each shard in turn* mid-churn (plus any extra seeded ``shard.kill``
    faults from ``plan``), and compare the final cloud bytes, per-group
    membership and group keys against the fault-free single-enclave run
    of the same trace.

    Scheduled kills land at evenly spaced operation boundaries so every
    shard dies at least once while churn is still outstanding; the
    router respawns a dead shard on the next operation routed to it —
    sealed-MSK restore, journal roll-forward, mutual re-attestation to a
    live peer (itself under injected ``attest.fail`` faults, absorbed by
    the retry layer) — and any shard still down when the trace ends is
    respawned explicitly, so the final health probe must report every
    shard alive and re-attested.
    """
    if plan is None:
        plan = FaultPlan.shard_chaos(seed, nshards=nshards)
    initials, trace = make_shard_trace(groups, ops, pool, initial, seed)
    report = ShardChaosReport(seed=seed, nshards=nshards, plan=plan,
                              groups=sorted(initials),
                              ops_total=len(trace))

    # Reference: the same trace on a single enclave, fault-free.
    install(None)
    reference = _ShardRun(1, seed, capacity)
    reference.bootstrap(initials)
    for gid, op in trace:
        reference.apply(gid, op)
    report.reference_membership_digest = reference.membership_digest()
    report.reference_key_hashes = reference.key_hashes()
    report.reference_digest = cloud_digest(reference.system.cloud)
    report.revocation_checks += reference.revocation_checks
    report.revocation_failures += reference.revocation_failures
    reference.system.close()

    # Chaos: N shards, every one of them killed at least once mid-churn.
    injector = FaultInjector(plan)
    install(injector)
    try:
        chaos = _ShardRun(nshards, seed, capacity)
        chaos.bootstrap(initials)
        # Shard i dies just before operation (i+1)*len/(N+1): evenly
        # spaced, never at the very start or end, deterministic.
        kill_at = {
            ((index + 1) * len(trace)) // (nshards + 1): index
            for index in range(nshards)
        }
        for position, (gid, op) in enumerate(trace):
            victim = kill_at.get(position)
            if victim is not None:
                chaos.system.kill_shard(victim)
                report.scheduled_kills += 1
            extra = injector.take_shard_kill(nshards)
            if extra is not None and chaos.system.shards[extra].alive:
                chaos.system.kill_shard(extra)
                report.injected_kills += 1
            chaos.apply(gid, op)
            report.ops_applied += 1
        for shard in chaos.system.shards:
            if not shard.alive:
                chaos.system.respawn_shard(shard.index)
    finally:
        install(None)
    report.chaos_membership_digest = chaos.membership_digest()
    report.chaos_key_hashes = chaos.key_hashes()
    report.chaos_digest = cloud_digest(chaos.system.cloud)
    report.revocation_checks += chaos.revocation_checks
    report.revocation_failures += chaos.revocation_failures
    report.respawns = sum(s.respawns for s in chaos.system.shards)
    report.fault_history = injector.history()
    report.attest_faults = sum(
        1 for kind, _ in report.fault_history if kind == "attest.fail")
    report.final_health = chaos.system.health()
    chaos.system.close()
    return report


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.chaos",
        description="Chaos-equivalence smoke: replay a workload under a "
                    "seeded fault schedule and diff the final cloud bytes "
                    "against a fault-free run.",
    )
    parser.add_argument("--profile", choices=("store", "full", "shard"),
                        default="store",
                        help="store: transient store faults only; "
                             "full: adds crashes and enclave restarts; "
                             "shard: multi-enclave deployment with every "
                             "shard killed in turn mid-churn")
    parser.add_argument("--seed", default="chaos-ci")
    parser.add_argument("--ops", type=int, default=30)
    parser.add_argument("--pool", type=int, default=12)
    parser.add_argument("--capacity", type=int, default=4)
    parser.add_argument("--shards", type=int, default=2,
                        help="with --profile shard: enclave instance "
                             "count of the chaos deployment")
    parser.add_argument("--groups", type=int, default=3,
                        help="with --profile shard: interleaved group "
                             "count")
    parser.add_argument("--compact-every", type=int, default=None,
                        help="enable automatic snapshot compaction every "
                             "N mutations on both stores and verify "
                             "cold-start equivalence across them")
    parser.add_argument("--network", action="store_true",
                        help="serve the chaos run's store over a real "
                             "TCP StoreServer (repro.net) and converge "
                             "across the network boundary")
    parser.add_argument("--trace", action="store_true",
                        help="with --network: run the chaos side with "
                             "distributed tracing enabled, so the "
                             "convergence verdict also proves tracing "
                             "never perturbs store state")
    args = parser.parse_args(argv)

    if args.profile == "shard":
        shard_report = run_shard_chaos(
            FaultPlan.shard_chaos(args.seed, nshards=args.shards),
            nshards=args.shards, groups=args.groups,
            ops=max(4, args.ops // max(1, args.groups)),
            pool=args.pool, capacity=args.capacity, seed=args.seed,
        )
        print(json.dumps(shard_report.summary(), indent=2))
        return 0 if shard_report.converged else 1

    plan = (FaultPlan.store_faults(args.seed) if args.profile == "store"
            else FaultPlan.full_chaos(args.seed))
    report = run_chaos(plan, ops=args.ops, pool=args.pool,
                       capacity=args.capacity, seed=args.seed,
                       compact_every=args.compact_every,
                       remote=args.network,
                       traced=args.trace and args.network)
    print(json.dumps(report.summary(), indent=2))
    return 0 if report.converged else 1


if __name__ == "__main__":
    raise SystemExit(main())
