"""Million-user scale suite: Zipf groups, bursty churn, OCC, sync storms.

Every other workload in :mod:`repro.workloads` drives a few hundred
users through uniform groups; this module generates the traffic shape
the ROADMAP's "heavy traffic from millions of users" north star actually
implies, the way the SGX benchmark-suite literature argues wide-coverage
workload suites (not microbenchmarks) are what expose enclave-system
bottlenecks:

* **Zipfian group sizes** — a handful of very large groups and a long
  tail of small ones (:func:`zipf_group_sizes`), built rank-size style
  so the distribution is a pure function of ``(users, exponent)``;
* **bursty join/leave churn** — membership operations arrive in bursts
  aimed at size-weighted groups, with a configurable revocation mix and
  a decrypt-rate signal feeding the adaptive partition policy;
* **multi-admin OCC contention** — a second administrator (attested MSK
  migration, as in ``net_smoke``) deliberately races stale views through
  :class:`~repro.core.multiadmin.ConcurrentAdministrator`;
* **read-heavy sync/resume traffic** — a bounded fleet of clients syncs,
  derives keys, then re-syncs incrementally after more churn (the
  O(changes) resume path).

Everything is seeded and deterministic: two runs with the same
``(users, seed)`` — with or without ``--faults``, at any worker count —
finish on the byte-identical :attr:`ScaleReport.convergence_digest`.
The CI ``scale-smoke`` job and the nightly soak both rely on exactly
that property.

**Calibration mode** (``--calibrate``) measures the partition cost
model's coefficients from live runs instead of trusting the
microbenchmark defaults: ``c_rekey`` from revocation wall times across
partition counts, ``c_decrypt`` from decrypt wall times across partition
sizes (both via :func:`repro.core.adaptive.fit_linear_cost`), attributes
where the time goes with span aggregation and the sampling profiler, and
emits the recommended cutoff curve ``m*(n)`` for n ∈ {10⁴, 10⁵, 10⁶}
against the paper's ``sqrt(n)`` rule (§IV-C/§VIII).

Run headlessly::

    python -m repro.workloads.scale --users 1e5 --seed 7
    python -m repro.workloads.scale --users 1e5 --seed 7 --faults
    python -m repro.workloads.scale --calibrate --seed 7
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.adaptive import (
    AdaptiveAdministrator,
    AdaptivePolicy,
    CoefficientFit,
    CutoffPoint,
    fit_linear_cost,
)
from repro.crypto.rng import DeterministicRng
from repro.errors import ParameterError, ReproError, UnavailableError
from repro.obs.metrics import Histogram, MetricRegistry
from repro.workloads.chaos import cloud_digest

OP_JOIN = "join"
OP_LEAVE = "leave"

#: Group sizes the calibration cutoff curve is evaluated at — the regime
#: the paper's sqrt(n) rule targets (§VIII sizes groups up to 10⁶).
CURVE_SIZES = (10_000, 100_000, 1_000_000)

#: Deterministic churn-throughput estimate used to translate a
#: ``--duration`` budget into an op count *ahead of time* (wall-clock
#: truncation would break run-to-run byte-identity).
EST_CHURN_OPS_PER_SEC = 40


# ---------------------------------------------------------------------------
# Configuration and the deterministic generator
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScaleConfig:
    """One scale scenario; every field participates in determinism."""

    users: int = 100_000
    seed: str = "scale"
    #: Rank-size exponent of the group-size distribution; 1.0–1.3 spans
    #: "few huge groups" to "flatter tail".
    zipf_exponent: float = 1.1
    #: The largest group holds at most this fraction of all users.
    max_group_fraction: float = 0.2
    min_group_size: int = 3
    #: Membership operations in the churn phase (None: derived from
    #: ``users``, clamped to [200, 5000]).
    churn_ops: Optional[int] = None
    #: Mean burst length of the bursty arrival process.
    burst_mean: int = 6
    #: Fraction of churn operations that are revocations.
    revocation_mix: float = 0.35
    #: Decrypt observations recorded per membership operation (feeds the
    #: adaptive policy's rate window; may be fractional).
    decrypt_mix: float = 2.0
    #: Bounded client fleet for the read-heavy phase.
    sync_clients: int = 32
    sync_rounds: int = 2
    #: Churn ops replayed between sync rounds so re-syncs are
    #: incremental (the resume path), carved out of the main trace.
    resync_churn: int = 24
    #: Interleaved stale-view rounds in the OCC contention phase.
    contention_rounds: int = 3
    #: Partition capacity rule at creation: "sqrt" (the paper's cutoff)
    #: or "fixed:<k>".
    capacity_rule: str = "sqrt"
    review_every: int = 16
    workers: Optional[int] = 1
    faults: bool = False
    store_url: Optional[str] = None
    compact_every: Optional[int] = None
    #: Advisory wall budget: deterministically shrinks the churn-op
    #: count via EST_CHURN_OPS_PER_SEC (never truncates by wall clock).
    duration: Optional[float] = None

    def effective_churn_ops(self) -> int:
        ops = self.churn_ops
        if ops is None:
            ops = max(200, min(5000, self.users // 50))
        if self.duration is not None:
            ops = min(ops, max(50, int(self.duration
                                       * EST_CHURN_OPS_PER_SEC)))
        return ops


def zipf_group_sizes(users: int, exponent: float = 1.1,
                     max_group_fraction: float = 0.2,
                     min_group_size: int = 3) -> List[int]:
    """Rank-size (Zipf) partition of ``users`` into group sizes.

    Group ``k`` (1-based rank) gets ``head / k**exponent`` members,
    floored at ``min_group_size``, where ``head`` is the largest group's
    size (``users · max_group_fraction``).  The remainder fills a long
    tail of minimum-size groups, so the distribution has exactly the
    shape the suite needs — a few huge groups, many tiny ones — and is a
    pure function of its arguments (no sampling noise).
    """
    if users < min_group_size:
        raise ParameterError(
            f"need at least {min_group_size} users, got {users}")
    if exponent <= 0:
        raise ParameterError("zipf exponent must be positive")
    head = max(min_group_size, int(users * max_group_fraction))
    sizes: List[int] = []
    remaining = users
    rank = 1
    while remaining > 0:
        size = max(min_group_size, int(head / rank ** exponent))
        if remaining - size < min_group_size:
            size = remaining     # absorb the tail into the last group
        sizes.append(size)
        remaining -= size
        rank += 1
    return sizes


@dataclass(frozen=True)
class GroupSpec:
    """One group of the scenario: id, size and partition capacity."""

    rank: int
    group_id: str
    size: int
    capacity: int
    first_user: int     # global index of the first initial member

    def initial_members(self) -> List[str]:
        return [f"u{self.first_user + i:08d}" for i in range(self.size)]


def _capacity_for(size: int, rule: str) -> int:
    if rule == "sqrt":
        return max(2, min(512, int(round(math.sqrt(size)))))
    if rule.startswith("fixed:"):
        return max(1, int(rule.split(":", 1)[1]))
    raise ParameterError(f"unknown capacity rule {rule!r}")


def plan_groups(config: ScaleConfig) -> List[GroupSpec]:
    """The deterministic group roster for a configuration."""
    sizes = zipf_group_sizes(config.users, config.zipf_exponent,
                             config.max_group_fraction,
                             config.min_group_size)
    groups: List[GroupSpec] = []
    cursor = 0
    for rank, size in enumerate(sizes, start=1):
        groups.append(GroupSpec(
            rank=rank, group_id=f"g{rank:05d}", size=size,
            capacity=_capacity_for(size, config.capacity_rule),
            first_user=cursor,
        ))
        cursor += size
    return groups


@dataclass(frozen=True)
class ChurnEvent:
    """One generated membership operation plus its decrypt signal."""

    group_id: str
    kind: str       # OP_JOIN | OP_LEAVE
    user: str
    decrypts: int


def generate_churn(groups: Sequence[GroupSpec], ops: int,
                   config: ScaleConfig) -> List[ChurnEvent]:
    """Bursty, size-weighted churn trace over the group roster.

    Bursts target one group at a time (arrival bursts are what make
    churn hard: a rekey storm on one group, not a uniform trickle);
    group choice is weighted by ``sqrt(size)`` so large groups see most
    of the churn without starving the tail.  Membership is simulated so
    every event is valid against the state it will find, and leaves
    never drain a group below ``min_group_size`` members.  Departed
    users may rejoin (revocation followed by re-admission is the
    paper's hardest client path: the rejoiner must see the new key).
    """
    rng = DeterministicRng(f"scale-churn:{config.seed}:{ops}")
    members: Dict[str, List[str]] = {
        g.group_id: g.initial_members() for g in groups
    }
    departed: Dict[str, List[str]] = {g.group_id: [] for g in groups}
    weights = [max(1, int(round(math.sqrt(g.size)))) for g in groups]
    total_weight = sum(weights)
    cumulative: List[int] = []
    acc = 0
    for w in weights:
        acc += w
        cumulative.append(acc)

    def pick_group() -> GroupSpec:
        ticket = rng.randint_below(total_weight)
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] <= ticket:
                lo = mid + 1
            else:
                hi = mid
        return groups[lo]

    rev_threshold = int(config.revocation_mix * 1_000_000)
    dec_base = int(config.decrypt_mix)
    dec_extra = int((config.decrypt_mix - dec_base) * 1_000_000)
    fresh = 0
    events: List[ChurnEvent] = []
    while len(events) < ops:
        group = pick_group()
        gid = group.group_id
        burst = 1 + rng.randint_below(max(1, 2 * config.burst_mean - 1))
        for _ in range(min(burst, ops - len(events))):
            roster = members[gid]
            decrypts = dec_base
            if dec_extra and rng.randint_below(1_000_000) < dec_extra:
                decrypts += 1
            want_leave = rng.randint_below(1_000_000) < rev_threshold
            if want_leave and len(roster) > config.min_group_size:
                victim = roster.pop(rng.randint_below(len(roster)))
                departed[gid].append(victim)
                events.append(ChurnEvent(gid, OP_LEAVE, victim, decrypts))
            else:
                gone = departed[gid]
                if gone and rng.randint_below(2) == 0:
                    user = gone.pop(rng.randint_below(len(gone)))
                else:
                    user = f"j{fresh:07d}"
                    fresh += 1
                roster.append(user)
                events.append(ChurnEvent(gid, OP_JOIN, user, decrypts))
    return events


# ---------------------------------------------------------------------------
# The report
# ---------------------------------------------------------------------------

def _histogram_summary(histogram: Histogram) -> Dict[str, float]:
    """Millisecond quantile summary of a seconds histogram."""
    return {
        "count": float(histogram.count),
        "p50_ms": histogram.quantile(0.50) * 1e3,
        "p95_ms": histogram.quantile(0.95) * 1e3,
        "p99_ms": histogram.quantile(0.99) * 1e3,
        "max_ms": (histogram.max or 0.0) * 1e3,
        "mean_ms": histogram.mean * 1e3,
    }


@dataclass
class PhaseStat:
    """Throughput of one phase."""

    ops: int = 0
    seconds: float = 0.0

    def summary(self) -> Dict[str, float]:
        rate = self.ops / self.seconds if self.seconds > 0 else 0.0
        return {"ops": float(self.ops),
                "seconds": round(self.seconds, 3),
                "ops_per_sec": round(rate, 2)}


@dataclass
class ScaleReport:
    """Structured outcome of one :func:`run_scale` execution."""

    users: int
    seed: str
    faults: bool
    workers: int
    groups: int = 0
    largest_group: int = 0
    smallest_group: int = 0
    churn_ops: int = 0
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    trajectory: List[dict] = field(default_factory=list)
    resizes: int = 0
    occ_conflicts: int = 0
    occ_exhausted: int = 0
    faults_injected: int = 0
    retry_backoff_ms: float = 0.0
    revocation_checks: int = 0
    revocation_failures: int = 0
    cloud_objects: int = 0
    cloud_bytes: int = 0
    snapshot_horizon: int = 0
    key_hashes: Dict[str, str] = field(default_factory=dict)
    #: Full metric snapshot (runner registry + deployment telemetry) for
    #: the Prometheus exporter; not part of :meth:`summary`.
    metrics: Dict[str, float] = field(default_factory=dict)
    membership_digest: str = ""
    cloud_content_digest: str = ""
    convergence_digest: str = ""
    wall_seconds: float = 0.0
    #: Remote-store runs only: the live server's rolling per-method SLO
    #: windows and request-log tail, fetched over the wire (``ops.stats``).
    server_slo: Dict[str, Any] = field(default_factory=dict)
    request_log_tail: List[dict] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        """All sampled clients reached a key, every sampled revoked
        user is locked out, and the digests were computable."""
        return (self.revocation_failures == 0
                and bool(self.convergence_digest)
                and all(self.key_hashes.values()))

    def summary(self) -> Dict[str, Any]:
        return {
            "users": self.users,
            "seed": self.seed,
            "faults": self.faults,
            "workers": self.workers,
            "groups": self.groups,
            "largest_group": self.largest_group,
            "smallest_group": self.smallest_group,
            "churn_ops": self.churn_ops,
            "phases": self.phases,
            "latency": self.latency,
            "resizes": self.resizes,
            "trajectory_points": len(self.trajectory),
            "trajectory_tail": self.trajectory[-8:],
            "occ_conflicts": self.occ_conflicts,
            "occ_exhausted": self.occ_exhausted,
            "faults_injected": self.faults_injected,
            "retry_backoff_ms": round(self.retry_backoff_ms, 3),
            "revocation_checks": self.revocation_checks,
            "revocation_failures": self.revocation_failures,
            "cloud_objects": self.cloud_objects,
            "cloud_bytes": self.cloud_bytes,
            "snapshot_horizon": self.snapshot_horizon,
            "key_hashes": dict(self.key_hashes),
            "membership_digest": self.membership_digest,
            "cloud_content_digest": self.cloud_content_digest,
            "convergence_digest": self.convergence_digest,
            "converged": self.converged,
            "wall_seconds": round(self.wall_seconds, 3),
            "server_slo": self.server_slo,
            "request_log_tail": self.request_log_tail[-8:],
        }


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------

class ScaleRunner:
    """Drives one deployment through the scale scenario, phase by phase.

    Phases are public so the bench gate can time them individually:
    :meth:`provision` → :meth:`churn` → :meth:`contention` →
    :meth:`sync_storm` → :meth:`finish`.  ``run_scale`` strings them all
    together.
    """

    def __init__(self, config: ScaleConfig) -> None:
        from repro import quickstart_system

        self.config = config
        self.groups = plan_groups(config)
        max_capacity = max(g.capacity for g in self.groups)
        self.system_bound = max(16, 2 * max_capacity)
        self.rng = DeterministicRng(f"scale-system:{config.seed}")
        self._injector = None
        self.system = quickstart_system(
            partition_capacity=self.groups[0].capacity, params="toy64",
            rng=self.rng, auto_repartition=False,
            system_bound=self.system_bound, workers=config.workers,
        )
        self._wire_store()
        policy = AdaptivePolicy(
            min_capacity=2,
            max_capacity=self.system_bound,
        )
        self.adaptive = AdaptiveAdministrator(
            self.system.admin, policy, review_every=config.review_every)
        self.registry = MetricRegistry()
        self._provision_seconds = self.registry.histogram(
            "scale.provision.seconds")
        self._churn_seconds = self.registry.histogram("scale.churn.seconds")
        self._sync_seconds = self.registry.histogram("scale.sync.seconds")
        self._decrypt_seconds = self.registry.histogram(
            "scale.decrypt.seconds")
        self.phase_stats: Dict[str, PhaseStat] = {}
        self.trace: List[ChurnEvent] = []
        self._resync_slices: List[List[ChurnEvent]] = []
        self.clients: Dict[Tuple[str, str], Any] = {}
        self.revocation_checks = 0
        self.revocation_failures = 0
        self._removed: List[ChurnEvent] = []
        self._second_admin_metrics = None

    # -- plumbing ----------------------------------------------------------

    def _wire_store(self) -> None:
        from repro.cloud import CloudStore
        from repro.faults import FaultInjector, FaultPlan, FaultyCloudStore

        config = self.config
        if config.store_url:
            from repro.net import RemoteCloudStore

            inner = RemoteCloudStore(config.store_url)
        elif config.compact_every is not None:
            inner = CloudStore(compact_every=config.compact_every)
        else:
            # Keep the deployment's own store so the telemetry sources
            # captured at System creation keep reading the live one.
            inner = self.system.cloud
        self.inner_store = inner
        store = inner
        if config.faults:
            # Store-profile faults only: outages, read timeouts and
            # latency spikes, all absorbed by the RetryPolicy layers.
            # Crash/restart schedules need the chaos harness's recovery
            # driver and stay in repro.workloads.chaos.
            plan = FaultPlan.store_faults(f"scale:{config.seed}")
            self._injector = FaultInjector(plan)
            store = FaultyCloudStore(inner, self._injector)
        self.store = store
        self.system.cloud = store
        self.system.admin.cloud = store

    def _drive(self, action, redo_check) -> None:
        """Run one mutation to completion across exhausted retry
        budgets (rare even under the fault profile): reload the group,
        and redo from an RNG snapshot if the operation never landed —
        the same contract the chaos driver keeps, minus crashes."""
        snapshot = self.rng.getstate()
        while True:
            try:
                action()
                return
            except UnavailableError:
                gid = redo_check[0]
                admin = self.system.admin
                admin.cache.drop(gid)
                admin.load_group_from_cloud(gid)
                if redo_check[1]():
                    return
                self.rng.setstate(snapshot)

    def _phase(self, name: str) -> PhaseStat:
        stat = self.phase_stats.get(name)
        if stat is None:
            stat = self.phase_stats[name] = PhaseStat()
        return stat

    # -- phases ------------------------------------------------------------

    def provision(self) -> None:
        """Create the whole Zipf roster (one ``create_group`` each)."""
        stat = self._phase("provision")
        start = time.perf_counter()
        admin = self.system.admin
        for group in self.groups:
            admin.partition_capacity = group.capacity
            t0 = time.perf_counter()
            self.adaptive.create_group(group.group_id,
                                       group.initial_members())
            self._provision_seconds.observe(time.perf_counter() - t0)
            stat.ops += 1
        stat.seconds += time.perf_counter() - start
        ops = self.config.effective_churn_ops()
        full = generate_churn(self.groups, ops + self.config.resync_churn
                              * max(0, self.config.sync_rounds - 1),
                              self.config)
        self.trace = full[:ops]
        tail = full[ops:]
        step = self.config.resync_churn
        self._resync_slices = [tail[i:i + step]
                               for i in range(0, len(tail), step)]

    def _apply_event(self, event: ChurnEvent) -> None:
        adaptive = self.adaptive
        if event.kind == OP_JOIN:
            self._drive(
                lambda: adaptive.add_user(event.group_id, event.user),
                (event.group_id,
                 lambda: event.user in self.system.admin.group_state(
                     event.group_id).table),
            )
        else:
            self._drive(
                lambda: adaptive.remove_user(event.group_id, event.user),
                (event.group_id,
                 lambda: event.user not in self.system.admin.group_state(
                     event.group_id).table),
            )
            self._removed.append(event)
        if event.decrypts:
            adaptive.record_decrypt(event.group_id, count=event.decrypts)

    def churn(self) -> None:
        """Replay the bursty membership trace through the adaptive
        administrator (partition-size reviews happen inline)."""
        stat = self._phase("churn")
        start = time.perf_counter()
        for event in self.trace:
            t0 = time.perf_counter()
            self._apply_event(event)
            self._churn_seconds.observe(time.perf_counter() - t0)
            stat.ops += 1
        stat.seconds += time.perf_counter() - start

    def contention(self) -> None:
        """Two concurrent administrators race stale views on one
        mid-size group; OCC conflicts resolve through the shared
        retry/backoff policy."""
        from repro.core.multiadmin import ConcurrentAdministrator

        stat = self._phase("contention")
        start = time.perf_counter()
        target = self.groups[min(len(self.groups) - 1,
                                 max(1, len(self.groups) // 3))]
        gid = target.group_id
        admin1 = ConcurrentAdministrator(self.system.admin)
        second = self._make_second_admin()
        admin2 = ConcurrentAdministrator(second)
        self._second_admin_metrics = second.metrics.registry
        for round_index in range(self.config.contention_rounds):
            tag = f"occ{round_index:03d}"
            admin2.refresh(gid)
            admin2.add_user(gid, f"{tag}-a")
            # Stale view on purpose: admin1 last refreshed before
            # admin2's mutation, so its conditional put loses and the
            # conflict loop re-syncs and retries.
            admin1.add_user(gid, f"{tag}-b")
            admin2.refresh(gid)
            admin2.remove_user(gid, f"{tag}-a")
            admin1.rekey(gid)
            stat.ops += 4
        self.system.admin.sync_group(gid)
        stat.seconds += time.perf_counter() - start

    def _make_second_admin(self):
        """A second administrator: own enclave on its own device,
        attested MSK migration, shared organisational signing key (the
        net_smoke idiom)."""
        from repro.core.admin import GroupAdministrator
        from repro.core.multiadmin import join_administration
        from repro.enclave_app import IbbeEnclave
        from repro.sgx.device import SgxDevice

        system = self.system
        device = SgxDevice(
            rng=DeterministicRng(f"scale-admin2:{self.config.seed}"))
        system.ias.register_device(device.device_id,
                                   device.attestation_public_key)
        enclave = IbbeEnclave.load(device, dict(system.enclave.config))
        join_administration(system, enclave)
        return GroupAdministrator(
            enclave=enclave,
            cloud=self.store,
            signing_key=system.admin._signing_key,
            partition_capacity=system.admin.partition_capacity,
            rng=DeterministicRng(f"scale-admin2-ops:{self.config.seed}"),
        )

    def _sample_clients(self) -> List[Tuple[str, str]]:
        """Deterministic bounded client fleet: the biggest groups get
        two members each (first and middle), then tail groups get one,
        until the budget is spent."""
        picks: List[Tuple[str, str]] = []
        budget = self.config.sync_clients
        head = self.groups[:max(1, budget // 4)]
        for group in head:
            if len(picks) + 2 > budget:
                break
            roster = self.system.admin.members(group.group_id)
            if not roster:
                continue
            picks.append((group.group_id, roster[0]))
            if len(roster) > 2:
                picks.append((group.group_id, roster[len(roster) // 2]))
        tail = self.groups[len(head):]
        stride = max(1, len(tail) // max(1, budget - len(picks)))
        for group in tail[::stride]:
            if len(picks) >= budget:
                break
            roster = self.system.admin.members(group.group_id)
            if roster:
                picks.append((group.group_id, roster[0]))
        return picks

    def sync_storm(self) -> None:
        """Read-heavy traffic: the client fleet syncs and derives keys;
        between rounds a reserved churn slice lands so later rounds
        exercise the incremental (O(changes)) resume path."""
        stat = self._phase("sync")
        start = time.perf_counter()
        picks = self._sample_clients()
        for round_index in range(self.config.sync_rounds):
            if round_index > 0:
                slice_index = round_index - 1
                if slice_index < len(self._resync_slices):
                    for event in self._resync_slices[slice_index]:
                        self._apply_event(event)
            for gid, member in picks:
                key = (gid, member)
                client = self.clients.get(key)
                if client is None:
                    client = self.system.make_client(gid, member)
                    self.clients[key] = client
                t0 = time.perf_counter()
                try:
                    client.sync()
                    client.current_group_key()
                except ReproError:
                    # Removed by an interleaved churn slice — that is
                    # the revocation invariant working, not a failure.
                    pass
                self._sync_seconds.observe(time.perf_counter() - t0)
                stat.ops += 1
        stat.seconds += time.perf_counter() - start

    def check_revocations(self, sample: int = 8) -> None:
        """The revocation invariant at scale: the most recently revoked
        users (still absent at the end of the trace) must not reach a
        group key through a fresh client."""
        from repro.errors import ReproError as AnyError

        current: Dict[str, set] = {}
        for event in reversed(self._removed):
            gid = event.group_id
            if len(current) > 64:
                break
            roster = current.get(gid)
            if roster is None:
                roster = current[gid] = set(
                    self.system.admin.members(gid))
            if event.user in roster:
                continue    # rejoined later; not a revocation any more
            self.revocation_checks += 1
            try:
                client = self.system.make_client(gid, event.user)
                client.sync()
                client.current_group_key()
            except AnyError:
                pass        # locked out — the invariant holds
            else:
                self.revocation_failures += 1
            if self.revocation_checks >= sample:
                break

    # -- the verdict -------------------------------------------------------

    def membership_digest(self) -> str:
        """SHA-256 over every group's sorted member list — the semantic
        state two equal-seed runs must agree on."""
        digest = hashlib.sha256()
        for group in self.groups:
            digest.update(group.group_id.encode("utf-8"))
            digest.update(b"\x00")
            for member in sorted(
                    self.system.admin.members(group.group_id)):
                digest.update(member.encode("utf-8"))
                digest.update(b"\x01")
        return digest.hexdigest()

    def key_hashes(self, sample: int = 6) -> Dict[str, str]:
        """Group-key hashes at one surviving member of the largest
        ``sample`` groups (the semantic stand-in for sealed-key bytes,
        as in the chaos harness)."""
        hashes: Dict[str, str] = {}
        for group in self.groups[:sample]:
            gid = group.group_id
            member = sorted(self.system.admin.members(gid))[0]
            client = self.clients.get((gid, member))
            if client is None:
                client = self.system.make_client(gid, member)
                self.clients[(gid, member)] = client
            client.sync()
            key = client.current_group_key()
            hashes[gid] = hashlib.sha256(key).hexdigest()
        return hashes

    def finish(self) -> ScaleReport:
        """Digest the final state and assemble the report."""
        config = self.config
        report = ScaleReport(
            users=config.users, seed=config.seed, faults=config.faults,
            workers=self.system.workers,
        )
        report.groups = len(self.groups)
        report.largest_group = self.groups[0].size
        report.smallest_group = self.groups[-1].size
        report.churn_ops = len(self.trace)
        report.revocation_checks = self.revocation_checks
        report.revocation_failures = self.revocation_failures
        report.resizes = self.adaptive.resizes
        report.trajectory = [p.summary() for p in self.adaptive.trajectory]
        registry = self.system.admin.metrics.registry
        report.occ_conflicts = int(
            registry.counter("admin.conflict.retries").value)
        report.occ_exhausted = int(
            registry.counter("admin.conflict.exhausted").value)
        if self._second_admin_metrics is not None:
            report.occ_conflicts += int(self._second_admin_metrics.counter(
                "admin.conflict.retries").value)
        if self._injector is not None:
            report.faults_injected = len(self._injector.log)
        report.retry_backoff_ms = (
            self.system.admin.retry.slept_ms
            + sum(c.retry.slept_ms for c in self.clients.values()))

        # Fleet-wide latency distributions.
        for client in self.clients.values():
            self._decrypt_seconds.merge(
                client.registry.histogram("client.decrypt.seconds"))
        admin_ops = Histogram("scale.admin.op.seconds")
        admin_ops.merge(registry.histogram("admin.op.seconds"))
        report.latency = {
            "provision": _histogram_summary(self._provision_seconds),
            "churn_op": _histogram_summary(self._churn_seconds),
            "client_sync": _histogram_summary(self._sync_seconds),
            "client_decrypt": _histogram_summary(self._decrypt_seconds),
            "admin_op": _histogram_summary(admin_ops),
        }
        report.phases = {name: stat.summary()
                         for name, stat in self.phase_stats.items()}
        report.metrics = dict(self.registry.snapshot())
        report.metrics.update(self.system.telemetry()["metrics"])

        # Convergence digest: semantic membership + cloud content +
        # sampled group keys.  Pure state, no wall-clock anywhere.
        report.key_hashes = self.key_hashes()
        report.membership_digest = self.membership_digest()
        report.cloud_content_digest = cloud_digest(self.inner_store)
        objects = list(self.inner_store.adversary_view())
        report.cloud_objects = len(objects)
        report.cloud_bytes = sum(len(o.data) for o in objects)
        report.snapshot_horizon = self.inner_store.snapshot_horizon()
        digest = hashlib.sha256()
        digest.update(report.membership_digest.encode("ascii"))
        digest.update(report.cloud_content_digest.encode("ascii"))
        for gid in sorted(report.key_hashes):
            digest.update(gid.encode("utf-8"))
            digest.update(report.key_hashes[gid].encode("ascii"))
        report.convergence_digest = digest.hexdigest()

        # Remote-store runs: pull the server's own view of the run —
        # rolling SLO windows and the request-log tail — over the wire.
        store = self.inner_store
        if (hasattr(store, "server_stats")
                and "ops" in getattr(store, "server_features", ())):
            try:
                stats = store.server_stats()
            except ReproError:
                pass
            else:
                report.server_slo = stats.get("slo", {})
                report.request_log_tail = stats.get(
                    "request_log", {}).get("tail", [])
        return report

    def close(self) -> None:
        self.system.close()
        closer = getattr(self.inner_store, "close", None)
        if closer is not None:
            closer()


def run_scale(config: Optional[ScaleConfig] = None, **overrides
              ) -> ScaleReport:
    """Run the full scenario; returns the :class:`ScaleReport`.

    Keyword overrides build a config when none is given:
    ``run_scale(users=100_000, seed="7", faults=True)``.
    """
    if config is None:
        config = ScaleConfig(**overrides)
    elif overrides:
        raise ParameterError("pass either a config or overrides, not both")
    start = time.perf_counter()
    runner = ScaleRunner(config)
    try:
        runner.provision()
        runner.churn()
        runner.contention()
        runner.sync_storm()
        runner.check_revocations()
        report = runner.finish()
    finally:
        runner.close()
    report.wall_seconds = time.perf_counter() - start
    return report


# ---------------------------------------------------------------------------
# Calibration: measure the cost model, re-derive the cutoff
# ---------------------------------------------------------------------------

@dataclass
class CalibrationReport:
    """Empirically measured partition cost model and the cutoff it
    implies, next to the paper's sqrt(n) rule."""

    seed: str
    rekey_fit: CoefficientFit
    decrypt_fit: CoefficientFit
    revocation_rate: float
    decrypt_rate: float
    curve: List[CutoffPoint] = field(default_factory=list)
    default_c_rekey: float = 0.0
    default_c_decrypt: float = 0.0
    span_breakdown: List[Dict[str, Any]] = field(default_factory=list)
    profile_top: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    def summary(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "c_rekey": self.rekey_fit.coefficient,
            "c_rekey_fit": self.rekey_fit.describe(),
            "c_decrypt": self.decrypt_fit.coefficient,
            "c_decrypt_fit": self.decrypt_fit.describe(),
            "default_c_rekey": self.default_c_rekey,
            "default_c_decrypt": self.default_c_decrypt,
            "revocation_rate": self.revocation_rate,
            "decrypt_rate": self.decrypt_rate,
            "cutoff_curve": [
                {"n": p.group_size, "optimal_m": p.optimal,
                 "sqrt_n": p.sqrt_rule,
                 "optimal_over_sqrt": round(p.ratio, 3)}
                for p in self.curve
            ],
            "span_breakdown": self.span_breakdown,
            "profile_top": self.profile_top,
            "wall_seconds": round(self.wall_seconds, 3),
        }


def run_calibration(seed: str = "scale-cal",
                    rekey_sizes: Sequence[int] = (256, 512, 1024, 2048),
                    rekey_capacity: int = 16,
                    decrypt_sizes: Sequence[int] = (8, 16, 32, 64),
                    repeats: int = 3,
                    revocation_rate: float = 0.35,
                    decrypt_rate: float = 2.0,
                    curve_sizes: Sequence[int] = CURVE_SIZES,
                    profile_hz: int = 97) -> CalibrationReport:
    """Measure ``c_rekey`` and ``c_decrypt`` from live operations.

    * ``c_rekey``: revoke one member from groups of ``rekey_sizes``
      members at a fixed capacity — the revocation re-keys every
      partition, so wall time is linear in the partition count and the
      slope of the fit is the per-partition re-key cost.
    * ``c_decrypt``: a member decrypts its partition record at each of
      ``decrypt_sizes`` (one partition per group, a fresh client per
      measurement so the hint cache never amortizes the quadratic
      work); the slope against m² is the per-member² cost.

    Span aggregation (``repro.obs``) and the sampling profiler both run
    across the measurement so the report can attribute *where* the time
    goes, then the recommended cutoff curve is evaluated at
    ``curve_sizes`` (defaults 10⁴–10⁶, the paper's regime) for the given
    workload mix and compared against sqrt(n).
    """
    from repro import obs, quickstart_system
    from repro.obs.profile import SamplingProfiler

    start = time.perf_counter()
    bound = max(max(decrypt_sizes), rekey_capacity) * 2
    system = quickstart_system(
        partition_capacity=rekey_capacity, params="toy64",
        rng=DeterministicRng(f"scale-cal:{seed}"),
        auto_repartition=False, system_bound=bound, workers=1,
    )
    tracer = obs.tracer()
    tracer.reset()
    obs.enable()
    profiler = SamplingProfiler(hz=profile_hz)
    rekey_samples: List[Tuple[float, float]] = []
    decrypt_samples: List[Tuple[float, float]] = []
    try:
        profiler.start()
        admin = system.admin
        for size in rekey_sizes:
            gid = f"cal-r{size}"
            admin.partition_capacity = rekey_capacity
            members = [f"r{size}-{i:06d}" for i in range(size)]
            admin.create_group(gid, members)
            partitions = len(admin.group_state(gid).table.partition_ids)
            for repeat in range(repeats):
                victim = members[repeat]
                t0 = time.perf_counter()
                admin.remove_user(gid, victim)
                rekey_samples.append(
                    (float(partitions), time.perf_counter() - t0))
                admin.add_user(gid, victim)     # restore for the next lap
        for m in decrypt_sizes:
            gid = f"cal-d{m}"
            admin.partition_capacity = m
            members = [f"d{m}-{i:04d}" for i in range(m)]
            admin.create_group(gid, members)
            state = admin.group_state(gid)
            record = next(iter(state.records.values()))
            for _ in range(repeats):
                client = system.make_client(gid, members[0])
                client.sync()
                t0 = time.perf_counter()
                client.decrypt_partition(record)
                decrypt_samples.append(
                    (float(m) ** 2, time.perf_counter() - t0))
    finally:
        profiler.stop()
        obs.disable()
    spans = tracer.spans()
    aggregated = obs.aggregate_spans(spans) if spans else {"names": {}}
    tracer.reset()
    system.close()

    rekey_fit = fit_linear_cost(rekey_samples)
    decrypt_fit = fit_linear_cost(decrypt_samples)
    defaults = AdaptivePolicy()
    policy = AdaptivePolicy.calibrated(
        rekey_fit, decrypt_fit, min_capacity=1, max_capacity=10 ** 9)
    breakdown = sorted(
        ({"name": name, "count": int(row["count"]),
          "self_s": round(row["self_s"], 6)}
         for name, row in aggregated["names"].items()),
        key=lambda row: -row["self_s"])[:12]
    report = CalibrationReport(
        seed=seed, rekey_fit=rekey_fit, decrypt_fit=decrypt_fit,
        revocation_rate=revocation_rate, decrypt_rate=decrypt_rate,
        curve=policy.cutoff_curve(list(curve_sizes), revocation_rate,
                                  decrypt_rate),
        default_c_rekey=defaults.c_rekey,
        default_c_decrypt=defaults.c_decrypt,
        span_breakdown=breakdown,
        profile_top=profiler.report_lines(10),
    )
    report.wall_seconds = time.perf_counter() - start
    return report


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def add_scale_arguments(parser) -> None:
    """Scale-suite options, shared with ``repro scale`` in the CLI."""
    parser.add_argument("--users", default="100000",
                        help="total users across all groups "
                             "(accepts 1e5 notation)")
    parser.add_argument("--seed", default="scale")
    parser.add_argument("--churn-ops", type=int, default=None,
                        help="membership operations in the churn phase "
                             "(default: derived from --users)")
    parser.add_argument("--duration", type=float, default=None,
                        help="advisory wall budget in seconds; shrinks "
                             "the churn-op count deterministically "
                             "(never truncates by wall clock)")
    parser.add_argument("--revocation-mix", type=float, default=0.35)
    parser.add_argument("--decrypt-mix", type=float, default=2.0)
    parser.add_argument("--sync-clients", type=int, default=32)
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel-engine workers (None: "
                             "REPRO_WORKERS, else serial); any count is "
                             "byte-identical")
    parser.add_argument("--faults", action="store_true",
                        help="inject the seeded store-fault profile "
                             "(outages/timeouts/latency spikes); the "
                             "convergence digest must not change")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="run the sharded-deployment convergence "
                             "scenario instead: an N-enclave "
                             "ShardedSystem under kill-any-shard chaos "
                             "(sized from --users/--churn-ops) must "
                             "match the single-enclave run byte for "
                             "byte")
    parser.add_argument("--store-url", default=None, metavar="URL",
                        help="run against a live repro serve endpoint "
                             "instead of the in-memory store")
    parser.add_argument("--compact-every", type=int, default=None,
                        help="auto-compact the store every N mutations")
    parser.add_argument("--calibrate", action="store_true",
                        help="measure c_rekey/c_decrypt and emit the "
                             "recommended cutoff curve instead of "
                             "running the traffic scenario")
    parser.add_argument("--json-out", default=None,
                        help="write the full report as JSON here")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="trace the run and write a Chrome "
                             "trace_event JSON here")
    parser.add_argument("--prom-out", default=None, metavar="PATH",
                        help="write the final metric snapshot as "
                             "Prometheus text exposition here")
    parser.add_argument("--profile-out", default=None, metavar="PATH",
                        help="run the sampling profiler across the "
                             "scenario; write top-lines + collapsed "
                             "stacks here")


def config_from_args(args) -> ScaleConfig:
    users = int(float(args.users))
    return ScaleConfig(
        users=users, seed=args.seed, churn_ops=args.churn_ops,
        duration=args.duration, revocation_mix=args.revocation_mix,
        decrypt_mix=args.decrypt_mix, sync_clients=args.sync_clients,
        workers=args.workers, faults=args.faults,
        store_url=args.store_url, compact_every=args.compact_every,
    )


def run_shard_scale(args, nshards: int) -> int:
    """The sharded-deployment convergence scenario at scale-suite sizing.

    Derives a bounded multi-group churn workload from ``--users`` /
    ``--churn-ops`` and hands it to
    :func:`repro.workloads.chaos.run_shard_chaos`: every shard of an
    ``N``-enclave deployment is killed in turn mid-churn and the final
    cloud bytes, memberships and group keys must match the fault-free
    single-enclave run.  Exit 0 on convergence, 1 otherwise.
    """
    import json

    from repro.workloads.chaos import run_shard_chaos

    users = int(float(args.users))
    groups = max(2, min(8, round(users ** (1.0 / 3.0))))
    pool = max(6, min(32, users // groups))
    churn = args.churn_ops if args.churn_ops else max(12, min(96, users // 8))
    report = run_shard_chaos(
        nshards=nshards,
        groups=groups,
        ops=max(4, churn // groups),
        pool=pool,
        initial=max(3, pool // 2),
        seed=args.seed,
    )
    payload = report.summary()
    print(json.dumps(payload, indent=2))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
    return 0 if report.converged else 1


def run_from_args(args) -> int:
    """Shared driver behind ``python -m repro.workloads.scale`` and the
    ``repro scale`` CLI subcommand: run the scenario (or calibration),
    print the JSON summary, and emit the requested artifacts."""
    import json
    import os

    from repro import obs

    if getattr(args, "shards", None):
        return run_shard_scale(args, args.shards)

    trace_out = getattr(args, "trace_out", None)
    prom_out = getattr(args, "prom_out", None)
    profile_out = getattr(args, "profile_out", None)
    for path in (args.json_out, trace_out, prom_out, profile_out):
        if path and os.path.dirname(path):
            os.makedirs(os.path.dirname(path), exist_ok=True)
    profiler = None
    if profile_out:
        from repro.obs.profile import SamplingProfiler

        profiler = SamplingProfiler().start()
    tracing = bool(trace_out)
    if tracing:
        obs.tracer().reset()
        obs.enable()
    try:
        if args.calibrate:
            report = run_calibration(
                seed=args.seed,
                revocation_rate=args.revocation_mix,
                decrypt_rate=args.decrypt_mix)
        else:
            report = run_scale(config_from_args(args))
    finally:
        if profiler is not None:
            profiler.stop()
        if tracing:
            obs.disable()
    payload = report.summary()
    print(json.dumps(payload, indent=2))
    if not args.calibrate:
        print(f"convergence digest: {report.convergence_digest}")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
    if trace_out:
        obs.write_chrome_trace(obs.tracer().spans(), trace_out)
        obs.tracer().reset()
    if prom_out:
        metrics = getattr(report, "metrics", None) or {}
        obs.write_prometheus(metrics, prom_out)
    if profile_out:
        with open(profile_out, "w", encoding="utf-8") as fh:
            fh.write("\n".join(profiler.report_lines(25)))
            fh.write("\n\n# collapsed stacks\n")
            fh.write("\n".join(profiler.collapsed()))
            fh.write("\n")
    if args.calibrate:
        return 0
    return 0 if report.converged else 1


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.scale",
        description="million-user scale suite: Zipf groups, bursty "
                    "churn, OCC contention, read-heavy sync — seeded "
                    "and byte-reproducible",
    )
    add_scale_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
