"""IBBE-SGX — cryptographic group access control using trusted execution
environments.

A from-scratch Python reproduction of Contiu et al., DSN 2018.

Quickstart::

    from repro import quickstart_system

    system = quickstart_system(partition_capacity=4)
    admin, cloud = system.admin, system.cloud
    admin.create_group("team", ["alice", "bob", "carol"])
    alice = system.make_client("team", "alice")
    alice.sync()
    gk = alice.current_group_key()   # 32-byte shared group key

See the ``examples/`` directory for end-to-end scenarios and ``DESIGN.md``
for the architecture and experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cloud import CloudStore, CloudStoreProtocol, LatencyModel
from repro.core import GroupAdministrator, GroupClient
from repro.crypto import DeterministicRng, Rng, SystemRng
from repro.crypto import ecdsa
from repro.enclave_app import IbbeEnclave
from repro.errors import ReproError
from repro.net import RemoteCloudStore, StoreServer, connect_store
from repro.obs import (
    MetricRegistry,
    MetricSource,
    Span,
    Tracer,
    merge_snapshots,
    telemetry_snapshot,
    tracer,
)
from repro.pairing import PairingGroup, preset, std160, toy64
from repro.sgx import (
    Auditor,
    IntelAttestationService,
    SgxDevice,
    provision_user_key,
    setup_trust,
)
from repro.shard import ShardedSystem

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "CloudStore",
    "CloudStoreProtocol",
    "RemoteCloudStore",
    "StoreServer",
    "connect_store",
    "LatencyModel",
    "GroupAdministrator",
    "GroupClient",
    "IbbeEnclave",
    "PairingGroup",
    "preset",
    "toy64",
    "std160",
    "SgxDevice",
    "IntelAttestationService",
    "Auditor",
    "System",
    "quickstart_system",
    "ShardedSystem",
    "MetricRegistry",
    "MetricSource",
    "Span",
    "Tracer",
    "merge_snapshots",
    "telemetry_snapshot",
    "tracer",
]


@dataclass
class System:
    """A fully wired IBBE-SGX deployment (device, enclave, trust chain,
    administrator, cloud) — the paper's Fig. 5 in one object.

    Convenience for examples, tests and benchmarks; production-style code
    can compose the parts directly.
    """

    group: PairingGroup
    device: SgxDevice
    enclave: IbbeEnclave
    ias: IntelAttestationService
    auditor: Auditor
    cloud: CloudStore
    admin: GroupAdministrator
    certificate: object
    public_key: object
    sealed_msk: bytes
    rng: Rng
    #: Parallel-engine worker count the enclave was configured with
    #: (``repro.par``; 1 = serial).  Results are byte-identical for any
    #: value — this changes wall-clock only.
    workers: int = 1
    #: The enclave's load-time configuration, kept so the deployment can
    #: survive a full enclave restart (:meth:`restart_enclave`).
    enclave_config: Optional[Dict[str, Any]] = None
    _user_keys: Dict[str, object] = field(default_factory=dict)
    _clients: List[GroupClient] = field(default_factory=list)

    def user_key(self, identity: str):
        """Provision (and cache) a user's IBBE secret key via the attested
        channel of Fig. 3."""
        if identity not in self._user_keys:
            from repro import ibbe as _ibbe
            from repro.pairing.group import G1Element

            raw = provision_user_key(
                self.enclave, self.certificate, self.auditor.ca_public_key,
                identity, self.rng,
            )
            self._user_keys[identity] = _ibbe.IbbeUserKey(
                identity=identity,
                element=G1Element.decode(self.group, raw),
            )
        return self._user_keys[identity]

    def make_client(self, group_id: str, identity: str) -> GroupClient:
        client = GroupClient(
            group_id=group_id,
            identity=identity,
            user_key=self.user_key(identity),
            public_key=self.public_key,
            cloud=self.cloud,
            admin_verification_key=self.admin.verification_key,
        )
        self._clients.append(client)
        return client

    # -- observability ----------------------------------------------------------

    def metric_sources(self) -> List[MetricSource]:
        """Every :class:`~repro.obs.MetricSource` in this deployment:
        the enclave's ``sgx.*`` meter, the cloud's ``cloud.*`` metrics,
        the administrator's ``admin.*`` registry (which includes its
        cache accounting) and each client's ``client.*`` registry."""
        sources: List[MetricSource] = [
            self.enclave.meter.registry,
            self.cloud.metrics.registry,
            self.admin.metrics.registry,
        ]
        from repro.ec import precomp_registry
        sources.append(precomp_registry)
        sources.extend(client.registry for client in self._clients)
        return sources

    def set_workers(self, workers: int) -> int:
        """Reconfigure the enclave's parallel-engine worker count at
        runtime (the pool restarts lazily).  Returns the new count."""
        count = self.enclave.call("set_workers", workers)
        self.workers = count
        return count

    def restart_enclave(self) -> None:
        """Full enclave restart: destroy → fresh load → unseal → reload.

        Models the recovery a real deployment runs after an enclave
        crash, host reboot, or migration (the seamless-restart story of
        ReplicaTEE): the running enclave is torn down, a new one is
        loaded with the *same measured configuration*, the sealed MSK is
        unsealed back into it, and the administrator's cached group
        state is rebuilt from cloud metadata.  Sealing and the attested
        identity key are bound to the measurement, not the instance, so
        the existing certificate remains valid and no re-attestation is
        needed.
        """
        from repro.errors import EnclaveError

        if self.enclave_config is None:
            raise EnclaveError(
                "this System does not carry its enclave configuration; "
                "build it via quickstart_system() to enable restarts"
            )
        group_ids = self.admin.cache.group_ids()
        self.enclave.destroy()
        enclave = IbbeEnclave.load(self.device, self.enclave_config)
        enclave.call("restore_system", self.sealed_msk, self.public_key)
        self.enclave = enclave
        self.admin.enclave = enclave
        for group_id in group_ids:
            self.admin.cache.drop(group_id)
            self.admin.load_group_from_cloud(group_id)

    def close(self) -> None:
        """Tear the deployment down: destroys the enclave, which shuts
        down its worker pool and scrubs tracked secrets.  Idempotent."""
        for client in self._clients:
            closer = getattr(client, "close", None)
            if closer is not None:
                closer()
        self.enclave.destroy()

    def telemetry(self) -> Dict[str, Any]:
        """Aggregated observability snapshot of the whole deployment.

        Returns ``{"metrics": {dotted name: value}, "trace": {...}}`` —
        the merged :meth:`metric_sources` plus a summary of the spans the
        global tracer has collected (empty unless tracing is enabled via
        ``repro.obs.enable()`` or ``REPRO_TELEMETRY=1``).  Client
        registries share the ``client.*`` names, so with several clients
        the merged view reflects the most recently created one; read
        ``client.registry`` directly for per-client numbers.
        """
        return telemetry_snapshot(self.metric_sources())

    def reset_metrics(self) -> None:
        """Zero every metric source (spans are left to the tracer)."""
        for source in self.metric_sources():
            source.reset()


def quickstart_system(partition_capacity: int = 1000,
                      params: str = "std160",
                      rng: Optional[Rng] = None,
                      latency: Optional[LatencyModel] = None,
                      auto_repartition: bool = True,
                      system_bound: Optional[int] = None,
                      pipeline: bool = True,
                      workers: Optional[int] = None,
                      precompute: bool = False) -> System:
    """Stand up a complete single-admin deployment.

    Performs manufacturing (device + IAS registration), enclave load,
    system setup (Fig. 6a), auditing and certification (Fig. 3), and wires
    an administrator to a fresh cloud store.

    ``system_bound`` is the enclave's maximal partition size ``m`` (the
    IBBE public key is linear in it); it defaults to ``partition_capacity``
    and must be raised at setup time if partitions may later grow (e.g.
    under the adaptive-sizing extension).

    ``pipeline`` selects the administrator's batched operation pipeline
    (one enclave crossing + one cloud commit per mutation, the default);
    ``pipeline=False`` replays the sequential call-per-ecall,
    request-per-object behaviour for comparison.

    ``workers`` configures the enclave's parallel engine (:mod:`repro.par`)
    for partition-independent work — ``None`` defers to ``REPRO_WORKERS``,
    else serial.  Any worker count produces byte-identical results.
    ``precompute`` additionally builds fixed-base wNAF tables for the
    public-key bases in the enclave and in every worker process.
    """
    rng = rng or SystemRng()
    pairing_group = PairingGroup(preset(params))
    device = SgxDevice(rng=rng)
    ias = IntelAttestationService(rng=rng)
    ias.register_device(device.device_id, device.attestation_public_key)
    auditor = Auditor(ias, rng=rng)
    # The CA key is pinned in the enclave configuration (hence in its
    # measurement): the enclave will release its master secret only to
    # peers certified under this exact CA (see core.multiadmin).
    from repro.par import resolve_workers
    worker_count = resolve_workers(workers)
    enclave_config = {
        "pairing_group": pairing_group,
        "ca_public_key": auditor.ca_public_key.encode().hex(),
        "workers": worker_count,
        "precompute": precompute,
    }
    enclave = IbbeEnclave.load(device, enclave_config)
    auditor.approve_measurement(enclave.measurement)
    certificate = setup_trust(enclave, auditor)
    public_key, sealed_msk = enclave.call(
        "setup_system", system_bound or partition_capacity
    )
    cloud = CloudStore(latency=latency)
    admin = GroupAdministrator(
        enclave=enclave,
        cloud=cloud,
        signing_key=ecdsa.generate_keypair(rng),
        partition_capacity=partition_capacity,
        rng=rng,
        auto_repartition=auto_repartition,
        pipeline=pipeline,
    )
    return System(
        group=pairing_group, device=device, enclave=enclave, ias=ias,
        auditor=auditor, cloud=cloud, admin=admin, certificate=certificate,
        public_key=public_key, sealed_msk=sealed_msk, rng=rng,
        workers=worker_count, enclave_config=enclave_config,
    )
