"""The Delerablée IBBE scheme and its IBBE-SGX accelerations.

Notation follows the paper's Appendix A (all group operations are written
multiplicatively; in the symmetric type-A setting, ``g`` and ``h`` live in
the same group G1):

* **System setup** (A-A): ``MSK = (g, γ)``;
  ``PK = (w = g^γ, v = e(g, h), h, h^γ, …, h^(γ^m))``.
* **Extract** (A-B): ``USK_u = g^(1/(γ + H(u)))``.
* **Encrypt** (A-C): ``bk = v^k``, ``C1 = w^(-k)``,
  ``C2 = h^(k·∏_{u∈S}(γ + H(u)))``, plus the auxiliary
  ``C3 = h^(∏_{u∈S}(γ + H(u)))`` enabling O(1) membership updates.
  - :func:`encrypt_pk` computes C2/C3 from the public key by polynomial
    expansion — **O(|S|²)** (classic IBBE, eq. 4).
  - :func:`encrypt_msk` computes the exponent directly with γ — **O(|S|)**
    (IBBE-SGX, eq. 3; only callable with the master secret, i.e. inside the
    enclave).
* **Decrypt** (A-D): quadratic polynomial expansion + multi-exponentiation,
  identical under both usage models.
* **Add / Remove / Re-key** (A-E/F/G): O(1) ciphertext updates using γ
  (add, remove) or C3 alone (re-key).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.crypto.rng import Rng
from repro.errors import ParameterError, SchemeError
from repro.mathutils.modular import modinv
from repro.mathutils.poly import monic_linear_product
from repro.pairing.group import G1Element, GTElement, PairingGroup


@dataclass(frozen=True)
class IbbePublicKey:
    """System-wide IBBE public key.

    ``h_powers[t]`` is ``h^(γ^t)``; the list has ``m + 1`` entries so that
    broadcast sets of up to ``m`` identities can be encrypted without the
    master secret and decrypted by any member.
    """

    group: PairingGroup
    m: int
    w: G1Element                 # g^γ
    v: GTElement                 # e(g, h)
    h_powers: Tuple[G1Element, ...]

    @property
    def h(self) -> G1Element:
        return self.h_powers[0]

    def hash_identity(self, identity: str) -> int:
        """H: identity string → Z_q* (paper's H(u))."""
        return self.group.hash_to_scalar(identity, domain=b"repro:ibbe-h")

    def enable_precomputation(self) -> "IbbePublicKey":
        """Build fixed-base wNAF tables for the hot bases ``w``, ``v`` and
        ``h`` (idempotent; tables are cached on the elements, so every
        holder of this key object shares them).

        These three are the only bases ``encrypt_msk`` / ``rekey_from_c3``
        exponentiate with fresh scalars, so this turns the per-partition
        cost of Algorithms 1-3 from three full ladders into sparse
        table lookups.  The parallel engine enables it per worker process.
        """
        self.h.enable_precomputation()
        self.w.enable_precomputation()
        self.v.enable_precomputation()
        return self

    def size_bytes(self) -> int:
        """Wire size of the public key — linear in m (paper §IV-C)."""
        return len(self.encode())

    def encode(self) -> bytes:
        """Self-contained wire encoding (pairing preset + key material).

        Used to persist the system public key so administrators and
        clients can be started from state directories (see
        :mod:`repro.cli`).
        """
        from repro.core.serialize import Writer

        writer = Writer()
        writer.bytes_field(b"IBBEPK1")
        writer.str_field(self.group.params.name)
        writer.u32(self.m)
        writer.bytes_field(self.w.encode())
        writer.bytes_field(self.v.encode())
        writer.u32(len(self.h_powers))
        for element in self.h_powers:
            writer.bytes_field(element.encode())
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes,
               group: "PairingGroup | None" = None) -> "IbbePublicKey":
        """Decode a public key; the pairing group is reconstructed from the
        named preset unless supplied."""
        from repro.core.serialize import Reader
        from repro.pairing.group import GTElement
        from repro.pairing.params import preset

        reader = Reader(data)
        if reader.bytes_field() != b"IBBEPK1":
            raise SchemeError("not an IBBE public key encoding")
        preset_name = reader.str_field()
        if group is None:
            from repro.pairing.group import PairingGroup
            group = PairingGroup(preset(preset_name))
        elif group.params.name != preset_name:
            raise SchemeError(
                f"public key was generated for preset {preset_name!r}, "
                f"got group {group.params.name!r}"
            )
        m = reader.u32()
        w = G1Element.decode(group, reader.bytes_field())
        v = GTElement.decode(group, reader.bytes_field())
        count = reader.u32()
        h_powers = tuple(
            G1Element.decode(group, reader.bytes_field())
            for _ in range(count)
        )
        reader.expect_end()
        if count != m + 1:
            raise SchemeError("inconsistent public key (h-power count)")
        return cls(group=group, m=m, w=w, v=v, h_powers=h_powers)


@dataclass(frozen=True)
class IbbeMasterSecret:
    """``MSK = (g, γ)`` — confined to the enclave in IBBE-SGX."""

    g: G1Element
    gamma: int


@dataclass(frozen=True)
class IbbeUserKey:
    identity: str
    element: G1Element  # g^(1/(γ + H(u)))

    def encode(self) -> bytes:
        return self.element.encode()


@dataclass(frozen=True)
class IbbeCiphertext:
    """Broadcast ciphertext ``(C1, C2)`` plus the auxiliary ``C3``.

    ``C3`` carries no secret (it is computable from PK alone, paper eq. 5)
    and enables the constant-time membership updates of A-E/F/G.
    """

    c1: G1Element  # w^(-k)
    c2: G1Element  # h^(k·∏(γ+H(u)))
    c3: G1Element  # h^(∏(γ+H(u)))

    def encode(self) -> bytes:
        return self.c1.encode() + self.c2.encode() + self.c3.encode()

    def size_bytes(self) -> int:
        return len(self.encode())

    @classmethod
    def decode(cls, group: PairingGroup, data: bytes) -> "IbbeCiphertext":
        point_size = 1 + (group.p.bit_length() + 7) // 8
        if len(data) != 3 * point_size:
            raise SchemeError("malformed IBBE ciphertext encoding")
        return cls(
            G1Element.decode(group, data[:point_size]),
            G1Element.decode(group, data[point_size:2 * point_size]),
            G1Element.decode(group, data[2 * point_size:]),
        )

    @classmethod
    def decode_c3(cls, group: PairingGroup, data: bytes) -> G1Element:
        """Decode only the aggregate C3 component.

        The O(1) re-key and remove operations rebuild C1/C2 from scratch,
        so decompressing them (a modular square root each) is wasted work
        on the paper's hottest path — the per-partition re-key loop of
        Algorithm 3.
        """
        return G1Element.decode(group, cls.encoded_c3(group, data))

    @classmethod
    def encoded_c3(cls, group: PairingGroup, data: bytes) -> bytes:
        """The still-encoded C3 component of an encoded ciphertext.

        Lets dispatchers (the parallel re-key engine) validate and slice
        ciphertexts without decompressing any point; the worker that
        executes the task performs the single C3 decode."""
        point_size = 1 + (group.p.bit_length() + 7) // 8
        if len(data) != 3 * point_size:
            raise SchemeError("malformed IBBE ciphertext encoding")
        return data[2 * point_size:]


# ---------------------------------------------------------------------------
# Setup and key extraction (identical for IBBE and IBBE-SGX)
# ---------------------------------------------------------------------------

def setup(group: PairingGroup, m: int, rng: Rng,
          precompute: bool = False) -> Tuple[IbbeMasterSecret, IbbePublicKey]:
    """System setup for maximal broadcast-set size ``m`` — O(m).

    Under IBBE-SGX the bound applies per *partition*, which is why the
    partitioning mechanism shrinks both this setup cost and the public key
    size (paper §IV-C).

    ``precompute=True`` builds fixed-base window tables for the long-lived
    elements ``w``, ``v`` and ``h`` that every membership operation
    exponentiates, speeding those operations by 2-3×.  Off by default to
    keep the cost profile faithful to the paper's PBC implementation
    (which exponentiates without precomputation); the ablation benchmark
    quantifies the difference.
    """
    if m < 1:
        raise ParameterError("maximal broadcast size m must be >= 1")
    g = group.g1 ** group.random_scalar(rng)
    gamma = group.random_scalar(rng)
    h = group.g1 ** group.random_scalar(rng)
    w = g ** gamma
    v = group.pair(g, h)
    if precompute:
        h.enable_precomputation()
        w.enable_precomputation()
        v.enable_precomputation()
        g.enable_precomputation()   # extract exponentiates g per user
    h_powers: List[G1Element] = [h]
    acc = 1
    for _ in range(m):
        acc = (acc * gamma) % group.q
        h_powers.append(h ** acc)
    return (
        IbbeMasterSecret(g=g, gamma=gamma),
        IbbePublicKey(group=group, m=m, w=w, v=v, h_powers=tuple(h_powers)),
    )


def extract(msk: IbbeMasterSecret, pk: IbbePublicKey,
            identity: str) -> IbbeUserKey:
    """Extract ``USK_u = g^(1/(γ+H(u)))`` — O(1)."""
    h_u = pk.hash_identity(identity)
    exponent = modinv((msk.gamma + h_u) % pk.group.q, pk.group.q)
    return IbbeUserKey(identity=identity, element=msk.g ** exponent)


# ---------------------------------------------------------------------------
# Encryption — the two usage models
# ---------------------------------------------------------------------------

def encrypt_pk(pk: IbbePublicKey, identities: Sequence[str],
               rng: Rng,
               use_multi_exp: bool = False) -> Tuple[GTElement, IbbeCiphertext]:
    """Classic IBBE encryption using only the public key — **O(|S|²)**.

    Expands ``∏(γ + H(u))`` into coefficients of γ (the E_i of eq. 4) and
    assembles C2/C3 from the published ``h^(γ^t)``.

    With ``use_multi_exp=False`` (default) the assembly performs one
    sequential exponentiation per coefficient, matching the cost profile of
    PBC-based implementations like the paper's (PBC has no general
    multi-exponentiation).  ``use_multi_exp=True`` enables an interleaved
    multi-exponentiation that shares doublings across terms — an
    optimization the ablation benchmark quantifies.
    """
    _check_set(pk, identities)
    q = pk.group.q
    k = pk.group.random_scalar(rng)
    coeffs = _expansion_coefficients(pk, identities)   # O(n²)
    if use_multi_exp:
        c2 = pk.group.multi_mul_g1(
            ((k * coeff) % q, pk.h_powers[t])
            for t, coeff in enumerate(coeffs)
        )
        c3 = pk.group.multi_mul_g1(
            (coeff, pk.h_powers[t]) for t, coeff in enumerate(coeffs)
        )
    else:
        c2 = pk.group.g1_identity()
        c3 = pk.group.g1_identity()
        for t, coeff in enumerate(coeffs):
            if coeff == 0:
                continue
            c2 = c2 * (pk.h_powers[t] ** ((k * coeff) % q))
            c3 = c3 * (pk.h_powers[t] ** coeff)
    bk = pk.v ** k
    c1 = pk.w ** (q - k)   # w^(-k)
    return bk, IbbeCiphertext(c1=c1, c2=c2, c3=c3)


def encrypt_msk(msk: IbbeMasterSecret, pk: IbbePublicKey,
                identities: Sequence[str],
                rng: Rng) -> Tuple[GTElement, IbbeCiphertext]:
    """IBBE-SGX encryption using the master secret — **O(|S|)** (eq. 3).

    Having γ collapses the polynomial expansion into a single product in
    Z_q, the complexity cut that makes the scheme practical (paper §IV-B).
    """
    _check_set(pk, identities)
    q = pk.group.q
    k = pk.group.random_scalar(rng)
    product = 1
    for identity in identities:
        product = (product * ((msk.gamma + pk.hash_identity(identity)) % q)) % q
    c3 = pk.h ** product
    c2 = c3 ** k
    c1 = pk.w ** (q - k)
    bk = pk.v ** k
    return bk, IbbeCiphertext(c1=c1, c2=c2, c3=c3)


def reencrypt_pk(pk: IbbePublicKey, identities: Sequence[str],
                 rng: Rng) -> Tuple[GTElement, IbbeCiphertext]:
    """Raw-IBBE membership change: no γ, no stored k — full re-encryption.

    This is what the classic scheme must do on add/remove and is the
    baseline cost the paper's Fig. 2 measures; alias kept separate from
    :func:`encrypt_pk` so call sites document intent.
    """
    return encrypt_pk(pk, identities, rng)


# ---------------------------------------------------------------------------
# Decryption (identical for IBBE and IBBE-SGX) — O(|S|²)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DecryptionHint:
    """The member-set-dependent precomputation of A-D decryption.

    ``h^{p_i(γ)}`` and ``Δ⁻¹`` depend only on (user, broadcast set) — not
    on the ciphertext.  Since re-keying (Algorithm 3 runs one per partition
    per revocation) changes the ciphertext but *not* the set, a client that
    caches this hint pays the quadratic expansion once per membership
    change and only two pairings per re-key — an optimization on top of
    the paper quantified by the ablation benchmarks.
    """

    identity: str
    member_fingerprint: Tuple[str, ...]
    h_pi: G1Element
    delta_inverse: int


def prepare_decryption_public(pk: IbbePublicKey, identity: str,
                              identities: Sequence[str]) -> DecryptionHint:
    """:func:`prepare_decryption` from the identity alone.

    The hint depends only on public material (the public key and the
    member identities), never on the user's secret key — which is what
    lets clients farm the quadratic expansion out to untrusted worker
    processes (:meth:`repro.core.client.GroupClient.prewarm_hints`).
    """
    if identity not in identities:
        raise SchemeError(
            f"user {identity!r} is not in the broadcast set"
        )
    q = pk.group.q
    others = [u for u in identities if u != identity]
    if len(others) > pk.m:
        raise ParameterError("broadcast set exceeds the system bound m")
    hashes = [pk.hash_identity(u) for u in others]
    coeffs = monic_linear_product(hashes, q)  # O(n²); [Δ, a1, ..., 1]
    delta = coeffs[0]
    # h^{p_i(γ)} = ∏_{t>=1} (h^{γ^(t-1)})^{a_t}
    h_pi = pk.group.multi_mul_g1(
        (coeffs[t], pk.h_powers[t - 1]) for t in range(1, len(coeffs))
    )
    return DecryptionHint(
        identity=identity,
        member_fingerprint=tuple(identities),
        h_pi=h_pi,
        delta_inverse=modinv(delta, q),
    )


def prepare_decryption(pk: IbbePublicKey, user_key: IbbeUserKey,
                       identities: Sequence[str]) -> DecryptionHint:
    """The O(|S|²) part of decryption, reusable across re-keys."""
    return prepare_decryption_public(pk, user_key.identity, identities)


def decrypt_with_hint(pk: IbbePublicKey, user_key: IbbeUserKey,
                      hint: DecryptionHint,
                      ciphertext: IbbeCiphertext) -> GTElement:
    """The O(1) part of decryption: two pairings and one GT exponent."""
    if hint.identity != user_key.identity:
        raise SchemeError("decryption hint belongs to a different user")
    paired = pk.group.pair(ciphertext.c1, hint.h_pi) * pk.group.pair(
        user_key.element, ciphertext.c2
    )
    return paired ** hint.delta_inverse


def decrypt(pk: IbbePublicKey, user_key: IbbeUserKey,
            identities: Sequence[str],
            ciphertext: IbbeCiphertext) -> GTElement:
    """Recover ``bk`` as a member of the broadcast set (paper A-D).

    Computes ``bk = (e(C1, h^{p_i(γ)}) · e(USK_i, C2))^{1/Δ}`` where
    ``p_i(γ) = (∏_{j≠i}(γ+H_j) − Δ)/γ`` and ``Δ = ∏_{j≠i} H_j``.  The
    polynomial expansion is quadratic in ``|S|`` — the cost the paper's
    partitioning mechanism bounds by the partition size.  (Callers that
    decrypt the same set repeatedly should use :func:`prepare_decryption`
    + :func:`decrypt_with_hint`.)
    """
    hint = prepare_decryption(pk, user_key, identities)
    return decrypt_with_hint(pk, user_key, hint, ciphertext)


# ---------------------------------------------------------------------------
# O(1) membership updates (require γ — enclave only) and re-keying
# ---------------------------------------------------------------------------

def add_user_msk(msk: IbbeMasterSecret, pk: IbbePublicKey,
                 ciphertext: IbbeCiphertext,
                 identity: str) -> IbbeCiphertext:
    """Add ``identity`` to the broadcast set — **O(1)** (paper A-E).

    The broadcast key is unchanged (joining users may read prior secrets by
    design); only C2 and C3 absorb the new factor ``γ + H(u)``.
    """
    factor = (msk.gamma + pk.hash_identity(identity)) % pk.group.q
    return IbbeCiphertext(
        c1=ciphertext.c1,
        c2=ciphertext.c2 ** factor,
        c3=ciphertext.c3 ** factor,
    )


def remove_user_msk(msk: IbbeMasterSecret, pk: IbbePublicKey,
                    ciphertext: IbbeCiphertext, identity: str,
                    rng: Rng) -> Tuple[GTElement, IbbeCiphertext]:
    """Remove ``identity`` and re-key — **O(1)** (paper A-F, eqs. 6-7).

    ``C3 ← C3^(1/(γ+H(u)))`` divides the removed user out of the aggregate,
    then a fresh ``k`` rebuilds ``(bk, C1, C2)``.
    """
    return remove_user_from_c3(msk, pk, ciphertext.c3, identity, rng)


def remove_user_from_c3(msk: IbbeMasterSecret, pk: IbbePublicKey,
                        c3: G1Element, identity: str,
                        rng: Rng) -> Tuple[GTElement, IbbeCiphertext]:
    """C3-only variant of :func:`remove_user_msk` (C1/C2 are rebuilt, so
    callers holding encoded ciphertexts need not decompress them)."""
    q = pk.group.q
    factor_inv = modinv((msk.gamma + pk.hash_identity(identity)) % q, q)
    new_c3 = c3 ** factor_inv
    k = pk.group.random_scalar(rng)
    return pk.v ** k, IbbeCiphertext(
        c1=pk.w ** (q - k), c2=new_c3 ** k, c3=new_c3
    )


def rekey(pk: IbbePublicKey, ciphertext: IbbeCiphertext,
          rng: Rng) -> Tuple[GTElement, IbbeCiphertext]:
    """Refresh ``bk`` without membership change — **O(1)** (paper A-G).

    Needs only C3 and the public key, so it is valid under both usage
    models; IBBE-SGX uses it to re-key every untouched partition after a
    revocation (Algorithm 3, lines 6-8).
    """
    return rekey_from_c3(pk, ciphertext.c3, rng)


def rekey_from_c3(pk: IbbePublicKey, c3: G1Element,
                  rng: Rng) -> Tuple[GTElement, IbbeCiphertext]:
    """C3-only variant of :func:`rekey`."""
    q = pk.group.q
    k = pk.group.random_scalar(rng)
    return pk.v ** k, IbbeCiphertext(
        c1=pk.w ** (q - k), c2=c3 ** k, c3=c3
    )


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------

def check_broadcast_set(pk: IbbePublicKey,
                        identities: Sequence[str]) -> None:
    """Validate a broadcast set against the public key (non-empty, within
    the system bound ``m``, duplicate-free).  Raises on violation.

    The same checks :func:`encrypt_pk` / :func:`encrypt_msk` apply; public
    so callers that assemble ciphertexts through the parallel engine's
    kernels can validate before dispatching work."""
    if not identities:
        raise SchemeError("broadcast set must not be empty")
    if len(identities) > pk.m:
        raise ParameterError(
            f"broadcast set of {len(identities)} exceeds system bound m={pk.m}"
        )
    if len(set(identities)) != len(identities):
        raise SchemeError("broadcast set contains duplicate identities")


_check_set = check_broadcast_set


def _expansion_coefficients(pk: IbbePublicKey,
                            identities: Sequence[str]) -> List[int]:
    hashes = [pk.hash_identity(u) for u in identities]
    return monic_linear_product(hashes, pk.group.q)
