"""Identity-Based Broadcast Encryption (Delerablée, ASIACRYPT'07) and the
IBBE-SGX fast paths of the paper's Appendix A."""

from repro.ibbe.scheme import (
    DecryptionHint,
    IbbeCiphertext,
    IbbeMasterSecret,
    IbbePublicKey,
    IbbeUserKey,
    add_user_msk,
    decrypt,
    decrypt_with_hint,
    encrypt_msk,
    encrypt_pk,
    extract,
    prepare_decryption,
    reencrypt_pk,
    rekey,
    rekey_from_c3,
    remove_user_from_c3,
    remove_user_msk,
    setup,
)

__all__ = [
    "IbbePublicKey",
    "IbbeMasterSecret",
    "IbbeUserKey",
    "IbbeCiphertext",
    "setup",
    "extract",
    "encrypt_pk",
    "encrypt_msk",
    "reencrypt_pk",
    "decrypt",
    "prepare_decryption",
    "decrypt_with_hint",
    "DecryptionHint",
    "add_user_msk",
    "remove_user_msk",
    "rekey",
    "rekey_from_c3",
    "remove_user_from_c3",
]
