"""Number-theoretic building blocks.

The package name is ``mathutils`` (not ``math``) to avoid shadowing the
standard library module.
"""

from repro.mathutils.modular import (
    crt_pair,
    jacobi_symbol,
    modinv,
    modsqrt,
)
from repro.mathutils.primes import (
    gen_prime,
    gen_safe_prime,
    is_probable_prime,
    next_prime,
)
from repro.mathutils.poly import (
    monic_linear_product,
    poly_div_linear,
    poly_eval,
    poly_mul,
)

__all__ = [
    "crt_pair",
    "jacobi_symbol",
    "modinv",
    "modsqrt",
    "gen_prime",
    "gen_safe_prime",
    "is_probable_prime",
    "next_prime",
    "monic_linear_product",
    "poly_div_linear",
    "poly_eval",
    "poly_mul",
]
