"""Primality testing and prime generation (Miller-Rabin based)."""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import MathError

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
    233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313,
    317, 331, 337, 347, 349,
]

# Deterministic Miller-Rabin witness sets (Sorenson & Webster) — exact for
# n < 3,317,044,064,679,887,385,961,981.
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)


def _miller_rabin_witness(n: int, a: int) -> bool:
    """Return True when ``a`` witnesses the compositeness of odd ``n > 2``."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int, rounds: int = 40,
                      rand: Optional[Callable[[int], int]] = None) -> bool:
    """Miller-Rabin primality test.

    Deterministic (exact) for ``n`` below ~3.3e24; otherwise probabilistic
    with error probability at most ``4**-rounds``.

    ``rand(k)`` must return a uniform integer in ``[0, k)``; defaults to a
    fixed-stride derandomized choice of bases, which is adequate for the
    adversary-free parameter-generation use in this package.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if n < _DETERMINISTIC_BOUND:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n - 1]
        return not any(_miller_rabin_witness(n, a) for a in witnesses)
    for i in range(rounds):
        if rand is not None:
            a = 2 + rand(n - 3)
        else:
            a = _SMALL_PRIMES[i % len(_SMALL_PRIMES)] + i // len(_SMALL_PRIMES)
        if _miller_rabin_witness(n, a % (n - 2) or 2):
            return False
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


def gen_prime(bits: int, rand: Callable[[int], int],
              condition: Optional[Callable[[int], bool]] = None,
              max_tries: int = 100_000) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    ``rand(k)`` returns a uniform integer in ``[0, k)``.  ``condition`` may
    impose an extra predicate (e.g. ``p % 4 == 3``).
    """
    if bits < 2:
        raise MathError("cannot generate a prime below 2 bits")
    for _ in range(max_tries):
        candidate = rand(1 << (bits - 1)) | (1 << (bits - 1)) | 1
        if condition is not None and not condition(candidate):
            continue
        if is_probable_prime(candidate):
            return candidate
    raise MathError(f"failed to find a {bits}-bit prime in {max_tries} tries")


def gen_safe_prime(bits: int, rand: Callable[[int], int],
                   max_tries: int = 200_000) -> int:
    """Generate a safe prime ``p = 2q + 1`` with ``p`` having ``bits`` bits."""
    for _ in range(max_tries):
        q = gen_prime(bits - 1, rand)
        p = 2 * q + 1
        if is_probable_prime(p):
            return p
    raise MathError(f"failed to find a {bits}-bit safe prime")
