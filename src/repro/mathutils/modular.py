"""Modular arithmetic helpers: inverses, CRT, Jacobi symbol, square roots."""

from __future__ import annotations

from repro.errors import MathError


def modinv(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``.

    Raises :class:`~repro.errors.MathError` when ``gcd(a, m) != 1``.
    """
    if m <= 0:
        raise MathError(f"modulus must be positive, got {m}")
    a %= m
    try:
        return pow(a, -1, m)
    except ValueError as exc:
        raise MathError(f"{a} is not invertible modulo {m}") from exc


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Combine ``x ≡ r1 (mod m1)`` and ``x ≡ r2 (mod m2)`` for coprime moduli.

    Returns the unique solution in ``[0, m1*m2)``.
    """
    inv = modinv(m1 % m2, m2)
    t = ((r2 - r1) * inv) % m2
    return (r1 + m1 * t) % (m1 * m2)


def jacobi_symbol(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd positive ``n``."""
    if n <= 0 or n % 2 == 0:
        raise MathError(f"Jacobi symbol requires odd positive n, got {n}")
    a %= n
    result = 1
    while a != 0:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def modsqrt(a: int, p: int) -> int:
    """Square root of ``a`` modulo an odd prime ``p`` (Tonelli-Shanks).

    Returns a root ``r`` with ``r*r ≡ a (mod p)``; the other root is ``p-r``.
    Raises :class:`~repro.errors.MathError` when ``a`` is a non-residue.
    """
    a %= p
    if a == 0:
        return 0
    if p == 2:
        return a
    if jacobi_symbol(a, p) != 1:
        raise MathError(f"{a} is not a quadratic residue modulo {p}")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Tonelli-Shanks for p ≡ 1 (mod 4).
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while jacobi_symbol(z, p) != -1:
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    r = pow(a, (q + 1) // 2, p)
    while t != 1:
        # Find the least i in (0, m) with t^(2^i) == 1.
        i = 0
        t2 = t
        while t2 != 1:
            t2 = (t2 * t2) % p
            i += 1
            if i == m:
                raise MathError("Tonelli-Shanks failed; modulus not prime?")
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = (b * b) % p
        t = (t * c) % p
        r = (r * b) % p
    return r
