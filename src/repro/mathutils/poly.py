"""Polynomial arithmetic over Z_q.

These routines are the computational kernel of the Delerablée IBBE scheme:

* IBBE *encryption under the public key* expands ``∏ (γ + H(u))`` into
  coefficients of γ (the ``E_i`` values of eq. 4 in the paper) — quadratic in
  the number of members.
* IBBE *decryption* expands the same product excluding the decryptor, then
  divides out the constant term (the polynomial ``p_i(γ)``).

Polynomials are represented as lists of coefficients, lowest degree first:
``[a0, a1, a2]`` is ``a0 + a1·x + a2·x²``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import MathError
from repro.obs.spans import span as _span


def poly_mul(a: Sequence[int], b: Sequence[int], q: int) -> List[int]:
    """Product of two polynomials with coefficients reduced modulo ``q``."""
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            out[i + j] = (out[i + j] + ai * bj) % q
    return out


def monic_linear_product(roots: Sequence[int], q: int) -> List[int]:
    """Expand ``∏_r (x + r)`` over Z_q, lowest-degree coefficient first.

    This is the O(n²) polynomial expansion at the heart of IBBE encryption
    and decryption (paper Appendix A-C/A-D).  The returned list has length
    ``len(roots) + 1`` and its last coefficient is 1.
    """
    with _span("crypto.poly_expand", roots=len(roots)):
        coeffs = [1]
        for r in roots:
            r %= q
            nxt = [0] * (len(coeffs) + 1)
            for i, c in enumerate(coeffs):
                nxt[i] = (nxt[i] + c * r) % q
                nxt[i + 1] = (nxt[i + 1] + c) % q
            coeffs = nxt
        return coeffs


def poly_eval(coeffs: Sequence[int], x: int, q: int) -> int:
    """Evaluate a polynomial at ``x`` modulo ``q`` (Horner's rule)."""
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * x + c) % q
    return acc


def poly_div_linear(coeffs: Sequence[int], r: int, q: int) -> List[int]:
    """Divide a polynomial by ``(x + r)`` over Z_q, requiring exactness.

    Used by the O(1)-remove bookkeeping tests: removing a user ``u`` from the
    aggregate exponent divides the product polynomial by ``(x + H(u))``.
    Raises :class:`~repro.errors.MathError` when the division has a remainder.
    """
    if not coeffs:
        return []
    # Synthetic division by (x - root) with root = -r.
    root = (-r) % q
    quotient_high_first = []
    acc = 0
    for c in reversed(list(coeffs)):
        acc = (c + acc * root) % q
        quotient_high_first.append(acc)
    remainder = quotient_high_first.pop()  # final accumulator is p(root)
    if remainder != 0:
        raise MathError("polynomial is not divisible by the given linear factor")
    quotient_high_first.reverse()
    return quotient_high_first
