"""The IBBE-SGX group access control system (paper §V).

* :mod:`repro.core.envelope` — AES-GCM wrapping of the group key under the
  hashed partition broadcast key.
* :mod:`repro.core.partitions` — the partitioning mechanism (§IV-C).
* :mod:`repro.core.metadata` — group metadata records and binary codecs.
* :mod:`repro.core.admin` — administrator API (Algorithms 1-3 + heuristics).
* :mod:`repro.core.client` — user API (listen, decrypt).
* :mod:`repro.core.cache` — admin/client local metadata caches.
* :mod:`repro.core.adaptive` — dynamic partition sizing (paper future work).
* :mod:`repro.core.oplog` — hash-chained membership operation log (paper
  future work, simplified blockchain-like certification).
"""

from repro.core.admin import GroupAdministrator
from repro.core.client import GroupClient
from repro.core.partitions import PartitionTable

__all__ = ["GroupAdministrator", "GroupClient", "PartitionTable"]
