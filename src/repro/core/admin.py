"""The administrator API (paper §V, Algorithms 1-3).

An administrator is honest-but-curious: this class is *untrusted* code.  It
orchestrates partition bookkeeping, drives the IBBE-SGX enclave for every
cryptographic step, signs the resulting metadata, and pushes it to the
cloud.  At no point does it see a plaintext group or broadcast key — the
zero-knowledge tests run these exact code paths.

Every mutation is expressed as an :class:`~repro.core.pipeline.OpPlan`
(enclave batch + ordered cloud effects) executed by one shared
:meth:`GroupAdministrator._commit_plan` path.  With ``pipeline=True`` (the
default) the enclave work runs in a single
:meth:`~repro.sgx.enclave.Enclave.call_batch` crossing and the cloud
writes land in a single atomic :meth:`~repro.cloud.store.CloudStore.commit`
round trip; ``pipeline=False`` replays the plan with per-ecall calls and
per-object requests — the seed behaviour, kept as the reference for the
equivalence tests and the before/after boundary-cost benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cloud.store import CloudBatch, CloudStore
from repro.core.cache import AdminCache, AdminGroupState
from repro.core.metadata import (
    GroupDescriptor,
    PartitionRecord,
    descriptor_path,
    group_dir,
    partition_path,
    sealed_key_path,
)
from repro.core.partitions import PartitionTable
from repro.core.pipeline import (
    DropPartition,
    EcallOp,
    InstallPartition,
    OpPlan,
    PlanEffects,
    PushSealedKey,
)
from repro.crypto import ecdsa
from repro.crypto.rng import Rng, SystemRng
from repro.enclave_app.ibbe_enclave import IbbeEnclave, PartitionBlob
from repro.errors import AccessControlError, MembershipError, SealingError
from repro.faults.plan import crash_point
from repro.faults.retry import RetryPolicy
from repro.obs.metrics import CounterField, MetricRegistry
from repro.obs.spans import span as _span
from repro.sgx.enclave import ResultRef, resolve_batch_args


class AdminMetrics:
    """Operation counters for the macrobenchmarks.

    Backed by a ``repro.obs`` registry under the ``admin.*`` namespace;
    the attributes and flat :meth:`snapshot` are the compatibility shim
    (see :class:`~repro.obs.CounterField`).
    """

    _FIELDS = ("groups_created", "users_added", "users_removed", "rekeys",
               "repartitions", "partitions_written", "bytes_pushed",
               "plans_committed")

    groups_created = CounterField("admin.groups_created")
    users_added = CounterField("admin.users_added")
    users_removed = CounterField("admin.users_removed")
    rekeys = CounterField("admin.rekeys")
    repartitions = CounterField("admin.repartitions")
    partitions_written = CounterField("admin.partitions_written")
    bytes_pushed = CounterField("admin.bytes_pushed")
    plans_committed = CounterField("admin.plans_committed")

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        for field in self._FIELDS:
            self.registry.counter(f"admin.{field}")
        #: Per-mutation latency distribution (one observation per
        #: committed plan); ``snapshot()`` reports p50/p95/p99.
        self.op_seconds = self.registry.histogram("admin.op.seconds")

    def snapshot(self) -> Dict[str, int]:
        """Flat legacy view; prefer ``metrics.registry.snapshot()`` (dotted)."""
        return {field: getattr(self, field) for field in self._FIELDS}

    def reset(self) -> None:
        self.registry.reset()


@dataclass
class _Placement:
    """Where a batch-add routed users: one entry per touched partition."""

    fresh: bool
    users: List[str]


class GroupAdministrator:
    """Drives group membership through the enclave and the cloud."""

    def __init__(self, enclave: IbbeEnclave, cloud: CloudStore,
                 signing_key: ecdsa.EcdsaPrivateKey,
                 partition_capacity: int,
                 rng: Optional[Rng] = None,
                 auto_repartition: bool = True,
                 pipeline: bool = True,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        if partition_capacity < 1:
            raise AccessControlError("partition capacity must be >= 1")
        self.enclave = enclave
        self.cloud = cloud
        self.partition_capacity = partition_capacity
        self.auto_repartition = auto_repartition
        self.pipeline = pipeline
        self._signing_key = signing_key
        self._rng = rng or SystemRng()
        self.metrics = AdminMetrics()
        # Transient-outage retries (UnavailableError only — requests that
        # never reached the store); version conflicts are the multi-admin
        # layer's business and pass straight through.
        self.retry = retry_policy or RetryPolicy(
            seed="admin-retry", registry=self.metrics.registry)
        # One registry per administrator: operation counters and cache
        # hit/miss accounting share the admin.* namespace.
        self.cache = AdminCache(registry=self.metrics.registry)

    @property
    def verification_key(self) -> ecdsa.EcdsaPublicKey:
        """Clients pin this key to authenticate metadata."""
        return self._signing_key.public_key()

    # -- Algorithm 1: create group --------------------------------------------------

    def create_group(self, group_id: str, members: Sequence[str],
                     ) -> AdminGroupState:
        """Create a group: partition, run the enclaved region, push."""
        if group_id in self.cache:
            raise AccessControlError(f"group {group_id!r} already exists")
        if not members:
            raise AccessControlError("cannot create an empty group")
        state = self._build_group(group_id, members)
        self.cache.put(state)
        self.metrics.groups_created += 1
        return state

    def _build_group(self, group_id: str, members: Sequence[str],
                     epoch: int = 0,
                     descriptor_version: int = 0,
                     drop_pids: Sequence[int] = ()) -> AdminGroupState:
        """Shared by creation and re-partitioning: one ``create_group``
        ecall emits every partition blob; the commit installs them all
        (and, for re-partitioning, drops the stale partition objects) in
        one batch."""
        table = PartitionTable.build(members, self.partition_capacity)
        pids = table.partition_ids
        partition_members = [table.members_of(pid) for pid in pids]
        state = AdminGroupState(group_id=group_id, table=table, epoch=epoch,
                                descriptor_version=descriptor_version)

        def make_plan() -> OpPlan:
            def effects(results: Sequence[Any]) -> PlanEffects:
                blobs, sealed_gk = results[0]
                actions = [
                    InstallPartition(pid, blob)
                    for pid, blob in zip(pids, blobs)
                ]
                actions.append(PushSealedKey())
                actions.extend(DropPartition(pid) for pid in drop_pids)
                return PlanEffects(actions=actions, sealed_gk=sealed_gk)

            return OpPlan(
                ecalls=[EcallOp("create_group", (group_id, partition_members))],
                effects=effects,
                bump_epoch=False,
            )

        self._commit_plan(state, make_plan)
        return state

    # -- Algorithm 2: add user ---------------------------------------------------------

    def add_user(self, group_id: str, user: str) -> None:
        """Add ``user``: random open partition, or a fresh one when all are
        full (the two CDF modes of Fig. 8a)."""
        state = self._require_group(group_id)
        if user in state.table:
            raise MembershipError(f"user {user!r} is already a member")
        pid = state.table.pick_open_partition(self._rng)
        if pid is None:
            pid = state.table.add_new_partition(user)
            fresh_pid = pid

            def make_plan() -> OpPlan:
                return OpPlan(
                    ecalls=[EcallOp("create_partition",
                                    (group_id, [user],
                                     state.sealed_group_key))],
                    effects=lambda results: PlanEffects(
                        actions=[InstallPartition(fresh_pid, results[0])]
                    ),
                )
        else:
            state.table.add_to_partition(pid, user)
            record = state.records[pid]
            host_pid = pid

            def make_plan() -> OpPlan:
                # The broadcast key is unchanged: y_p is carried over
                # verbatim (Algorithm 2 pushes only members + ciphertext).
                return OpPlan(
                    ecalls=[EcallOp("add_user_to_partition",
                                    (record.ciphertext, user))],
                    effects=lambda results: PlanEffects(actions=[
                        InstallPartition(host_pid, PartitionBlob(
                            ciphertext=results[0],
                            envelope=record.envelope,
                        ))
                    ]),
                )

        self._commit_plan(state, make_plan)
        self.metrics.users_added += 1

    def add_users(self, group_id: str, users: Sequence[str]) -> None:
        """Batch addition: one crossing + one commit for the whole batch.

        Amortizes the enclave crossing and the cloud round trip over many
        joins (administrators "perform membership changes for multiple
        groups at a time", §II — bulk on-boarding is the common case this
        serves).  The broadcast keys are unchanged throughout, exactly as
        in repeated single adds; ciphertext extension inside the enclave
        is deterministic, so the result is byte-identical to the
        one-call-per-user sequence.
        """
        state = self._require_group(group_id)
        users = list(users)
        seen: set = set()
        for user in users:
            if user in state.table or user in seen:
                raise MembershipError(
                    f"user {user!r} is already a member or duplicated"
                )
            seen.add(user)

        # Placement phase: route every user (mutating the table and
        # drawing placement randomness) before any enclave work, so the
        # pipeline and sequential modes consume the RNG identically.
        placements: Dict[int, _Placement] = {}
        for user in users:
            pid = state.table.pick_open_partition(self._rng)
            if pid is None:
                pid = state.table.add_new_partition(user)
                placements[pid] = _Placement(fresh=True, users=[user])
            else:
                state.table.add_to_partition(pid, user)
                placement = placements.setdefault(
                    pid, _Placement(fresh=False, users=[])
                )
                placement.users.append(user)

        def make_plan() -> OpPlan:
            ecalls: List[EcallOp] = []
            # (pid, envelope_source, ciphertext_index) where the envelope
            # source is either a create-partition result index (fresh) or
            # the existing record's envelope bytes.
            spec: List[Tuple[int, Any, int]] = []
            for pid, placement in placements.items():
                if placement.fresh:
                    create_index = len(ecalls)
                    ecalls.append(EcallOp(
                        "create_partition",
                        (group_id, [placement.users[0]],
                         state.sealed_group_key),
                    ))
                    ct_index = create_index
                    if len(placement.users) > 1:
                        ct_index = len(ecalls)
                        ecalls.append(EcallOp(
                            "add_users_to_partition",
                            (ResultRef(create_index, "ciphertext"),
                             placement.users[1:]),
                        ))
                    spec.append((pid, create_index, ct_index))
                else:
                    record = state.records[pid]
                    index = len(ecalls)
                    ecalls.append(EcallOp(
                        "add_users_to_partition",
                        (record.ciphertext, list(placement.users)),
                    ))
                    spec.append((pid, record.envelope, index))

            def effects(results: Sequence[Any]) -> PlanEffects:
                actions = []
                for pid, envelope_source, ct_index in spec:
                    if isinstance(envelope_source, int):
                        envelope = results[envelope_source].envelope
                        if ct_index == envelope_source:
                            ciphertext = results[ct_index].ciphertext
                        else:
                            ciphertext = results[ct_index]
                    else:
                        envelope = envelope_source
                        ciphertext = results[ct_index]
                    actions.append(InstallPartition(pid, PartitionBlob(
                        ciphertext=ciphertext, envelope=envelope,
                    )))
                return PlanEffects(actions=actions)

            return OpPlan(ecalls=ecalls, effects=effects)

        self._commit_plan(state, make_plan)
        self.metrics.users_added += len(users)

    def delete_group(self, group_id: str) -> None:
        """Remove a group and all of its cloud metadata.

        Multi-admin safe: the teardown first *claims* the descriptor with
        a conditional tombstone put (a signed empty-membership descriptor
        at the next epoch), so a concurrent administrator's conditional
        commit loses the race cleanly (:class:`ConflictError`) instead of
        interleaving writes with a half-deleted group.  Only then are the
        partitions, the sealed key and finally the descriptor removed.
        """
        state = self._require_group(group_id)
        pids = list(state.table.partition_ids)
        dpath = descriptor_path(group_id)
        spath = sealed_key_path(group_id)
        tombstone = GroupDescriptor(
            group_id=group_id,
            partition_capacity=state.table.capacity,
            user_to_partition={},
            epoch=state.epoch + 1,
            next_partition_id=state.table.next_partition_id,
        ).signed(self._signing_key)
        if self.pipeline:
            batch = CloudBatch()
            batch.put(dpath, tombstone,
                      expected_version=state.descriptor_version)
            for pid in pids:
                batch.delete(partition_path(group_id, pid),
                             ignore_missing=True)
            batch.delete(spath, ignore_missing=True)
            batch.delete(dpath)
            self.retry.run(lambda: self.cloud.commit(batch),
                           label="admin.delete_group")
        else:
            self.retry.run(
                lambda: self.cloud.put(
                    dpath, tombstone,
                    expected_version=state.descriptor_version),
                label="admin.delete_group.tombstone",
            )
            for pid in pids:
                path = partition_path(group_id, pid)
                if self.retry.run(lambda p=path: self.cloud.exists(p),
                                  label="admin.exists"):
                    self.retry.run(lambda p=path: self.cloud.delete(p),
                                   label="admin.delete")
            if self.retry.run(lambda: self.cloud.exists(spath),
                              label="admin.exists"):
                self.retry.run(lambda: self.cloud.delete(spath),
                               label="admin.delete")
            self.retry.run(lambda: self.cloud.delete(dpath),
                           label="admin.delete")
        self.cache.drop(group_id)

    # -- Algorithm 3: remove user --------------------------------------------------------

    def remove_user(self, group_id: str, user: str) -> None:
        """Revoke ``user``: fresh group key, O(1) update of the hosting
        partition, O(1) re-key of every other partition — all partition
        blobs emitted by a single enclave entry."""
        state = self._require_group(group_id)
        host_pid = state.table.partition_of(user)
        host_record = state.records[host_pid]
        state.table.remove(user)
        other_pids = [pid for pid in state.table.partition_ids
                      if pid != host_pid]

        if len(state.table) == 0:
            # Last member left: drop all metadata; no re-key needed since
            # nobody may read the group any longer.
            def make_plan() -> OpPlan:
                return OpPlan(
                    ecalls=[],
                    effects=lambda results: PlanEffects(
                        actions=[DropPartition(host_pid)]
                    ),
                )
        elif host_pid in state.table.partition_ids:
            def make_plan() -> OpPlan:
                def effects(results: Sequence[Any]) -> PlanEffects:
                    host_blob, other_blobs, sealed_gk = results[0]
                    actions = [InstallPartition(host_pid, host_blob)]
                    actions.extend(
                        InstallPartition(pid, blob)
                        for pid, blob in zip(other_pids, other_blobs)
                    )
                    actions.append(PushSealedKey())
                    return PlanEffects(actions=actions, sealed_gk=sealed_gk)

                return OpPlan(
                    ecalls=[EcallOp("remove_user", (
                        group_id, user, host_record.ciphertext,
                        [state.records[pid].ciphertext for pid in other_pids],
                    ))],
                    effects=effects,
                )
        else:
            # Hosting partition became empty: drop it and re-key the rest.
            def make_plan() -> OpPlan:
                def effects(results: Sequence[Any]) -> PlanEffects:
                    other_blobs, sealed_gk = results[0]
                    actions: List[Any] = [DropPartition(host_pid)]
                    actions.extend(
                        InstallPartition(pid, blob)
                        for pid, blob in zip(other_pids, other_blobs)
                    )
                    actions.append(PushSealedKey())
                    return PlanEffects(actions=actions, sealed_gk=sealed_gk)

                return OpPlan(
                    ecalls=[EcallOp("rekey_group", (
                        group_id,
                        [state.records[pid].ciphertext for pid in other_pids],
                    ))],
                    effects=effects,
                )

        self._commit_plan(state, make_plan)
        self.metrics.users_removed += 1

        if self.auto_repartition and state.table.needs_repartition():
            self.repartition(group_id)

    # -- parallel engine ------------------------------------------------------------------

    def warm_enclave_workers(self) -> int:
        """Pre-start the enclave's parallel worker pool (:mod:`repro.par`)
        so pool start-up never lands inside a measured group operation.
        Returns the worker count (1 = serial, nothing to start)."""
        return self.enclave.call("prepare_workers")

    # -- re-keying and re-partitioning ----------------------------------------------------

    def rekey(self, group_id: str) -> None:
        """Refresh the group key without membership changes (A-G)."""
        state = self._require_group(group_id)
        pids = state.table.partition_ids

        def make_plan() -> OpPlan:
            def effects(results: Sequence[Any]) -> PlanEffects:
                blobs, sealed_gk = results[0]
                actions = [
                    InstallPartition(pid, blob)
                    for pid, blob in zip(pids, blobs)
                ]
                actions.append(PushSealedKey())
                return PlanEffects(actions=actions, sealed_gk=sealed_gk)

            return OpPlan(
                ecalls=[EcallOp("rekey_group", (
                    group_id,
                    [state.records[pid].ciphertext for pid in pids],
                ))],
                effects=effects,
            )

        self._commit_plan(state, make_plan)
        self.metrics.rekeys += 1

    def repartition(self, group_id: str,
                    new_capacity: Optional[int] = None) -> None:
        """Re-create the group from its current member list (§V-A:
        "re-partitioning consists in simply re-creating the group").

        ``new_capacity`` switches the group to a different partition size —
        the hook used by the adaptive-partitioning extension
        (:mod:`repro.core.adaptive`).  It must not exceed the enclave's
        system bound ``m`` fixed at setup.
        """
        state = self._require_group(group_id)
        if new_capacity is not None:
            if new_capacity < 1:
                raise AccessControlError("partition capacity must be >= 1")
            bound = self.enclave.call("get_system_bound")
            if new_capacity > bound:
                raise AccessControlError(
                    f"partition capacity {new_capacity} exceeds the "
                    f"enclave's system bound m={bound} fixed at setup"
                )
            self.partition_capacity = new_capacity
        members = state.table.all_members()
        old_pids = set(state.table.partition_ids)
        # The new layout's descriptor put claims the next version (the
        # commit point); stale partition objects from the old layout are
        # dropped in the same batch.
        new_table_pids = set(
            PartitionTable.build(members, self.partition_capacity).partition_ids
        )
        new_state = self._build_group(
            group_id, members, epoch=state.epoch + 1,
            descriptor_version=state.descriptor_version,
            drop_pids=sorted(old_pids - new_table_pids),
        )
        self.cache.put(new_state)
        self.metrics.repartitions += 1

    # -- queries -------------------------------------------------------------------------

    def group_state(self, group_id: str) -> AdminGroupState:
        return self._require_group(group_id)

    def members(self, group_id: str) -> List[str]:
        return self._require_group(group_id).table.all_members()

    # -- the shared plan executor ---------------------------------------------------------

    def _commit_plan(self, state: AdminGroupState,
                     make_plan: Callable[[], OpPlan]) -> None:
        """Run one mutation end to end: enclave phase, then cloud commit.

        ``make_plan`` must be a pure function of the (already mutated)
        bookkeeping state: on a :class:`SealingError` — the cached sealed
        group key was produced by another admin's enclave — the group key
        is recovered and re-sealed and the plan is rebuilt against the
        fresh ``state.sealed_group_key``, then re-run.
        """
        plan = make_plan()
        start = time.perf_counter()
        with _span("admin.plan", group=state.group_id,
                   op=plan.describe()):
            crash_point("admin.plan.pre_ecalls")
            try:
                results = self._run_ecalls(plan.ecalls)
            except SealingError:
                state.sealed_group_key = self._recover_sealed_gk(state)
                plan = make_plan()
                results = self._run_ecalls(plan.ecalls)
            effects = plan.effects(results)
            if effects.sealed_gk is not None:
                state.sealed_group_key = effects.sealed_gk
            if plan.bump_epoch:
                state.epoch += 1
            crash_point("admin.plan.pre_commit")
            self._commit_effects(state, effects)
            crash_point("admin.plan.post_commit")
            self.metrics.plans_committed += 1
        self.metrics.op_seconds.observe(time.perf_counter() - start)

    def _run_ecalls(self, ecalls: Sequence[EcallOp]) -> List[Any]:
        if not ecalls:
            return []
        if self.pipeline:
            return self.enclave.call_batch(
                [(op.name, op.args) for op in ecalls]
            )
        results: List[Any] = []
        for op in ecalls:
            args = resolve_batch_args(op.args, results)
            results.append(self.enclave.call(op.name, *args))
        return results

    def _commit_effects(self, state: AdminGroupState,
                        effects: PlanEffects) -> None:
        """Apply a plan's cloud actions.

        The descriptor put always goes first and is conditional on the
        version this administrator last observed: it is the commit point —
        a lost multi-admin race raises :class:`ConflictError` before any
        object is touched (atomically so in pipeline mode).
        """
        descriptor_data = self._encode_descriptor(state)
        dpath = descriptor_path(state.group_id)
        # Sign the records up front so both modes do identical work.
        staged: List[Tuple[str, Any]] = []
        installed: Dict[int, PartitionRecord] = {}
        dropped: List[int] = []
        for action in effects.actions:
            if isinstance(action, InstallPartition):
                record = PartitionRecord(
                    group_id=state.group_id,
                    partition_id=action.pid,
                    members=tuple(state.table.members_of(action.pid)),
                    ciphertext=action.blob.ciphertext,
                    envelope=action.blob.envelope,
                )
                installed[action.pid] = record
                staged.append(("put", (
                    partition_path(state.group_id, action.pid),
                    record.signed(self._signing_key),
                )))
            elif isinstance(action, DropPartition):
                dropped.append(action.pid)
                staged.append(("delete",
                               partition_path(state.group_id, action.pid)))
            elif isinstance(action, PushSealedKey):
                if state.sealed_group_key:
                    staged.append(("put", (
                        sealed_key_path(state.group_id),
                        state.sealed_group_key,
                    )))
            else:  # pragma: no cover - defensive
                raise AccessControlError(f"unknown plan action {action!r}")

        if self.pipeline:
            batch = CloudBatch()
            batch.put(dpath, descriptor_data,
                      expected_version=state.descriptor_version)
            for kind, payload in staged:
                if kind == "put":
                    batch.put(*payload)
                else:
                    batch.delete(payload, ignore_missing=True)
            versions = self.retry.run(lambda: self.cloud.commit(batch),
                                      label="admin.commit")
            state.descriptor_version = versions[dpath]
        else:
            state.descriptor_version = self.retry.run(
                lambda: self.cloud.put(
                    dpath, descriptor_data,
                    expected_version=state.descriptor_version,
                ),
                label="admin.put.descriptor",
            )
            for kind, payload in staged:
                if kind == "put":
                    self.retry.run(lambda p=payload: self.cloud.put(*p),
                                   label="admin.put")
                elif self.retry.run(lambda p=payload: self.cloud.exists(p),
                                    label="admin.exists"):
                    self.retry.run(lambda p=payload: self.cloud.delete(p),
                                   label="admin.delete")

        # Bookkeeping + metrics (identical in both modes).
        for pid, record in installed.items():
            state.records[pid] = record
        for pid in dropped:
            state.records.pop(pid, None)
        self.metrics.bytes_pushed += len(descriptor_data)
        for kind, payload in staged:
            if kind == "put":
                self.metrics.bytes_pushed += len(payload[1])
        self.metrics.partitions_written += len(installed)
        # Our own writes are already reflected in the cached state; move
        # the sync cursor past them so the next sync_group polls only
        # changes made by *other* administrators.  (Reading the head here
        # is race-free in this in-process simulation — commits are
        # synchronous; a distributed store would need the commit call to
        # return its own event sequences instead.)
        state.sync_cursor = max(state.sync_cursor, self._head_sequence())

    def _encode_descriptor(self, state: AdminGroupState) -> bytes:
        return GroupDescriptor(
            group_id=state.group_id,
            partition_capacity=state.table.capacity,
            user_to_partition={
                user: state.table.partition_of(user)
                for user in state.table.all_members()
            },
            epoch=state.epoch,
            next_partition_id=state.table.next_partition_id,
        ).signed(self._signing_key)

    # -- persistence / recovery ------------------------------------------------

    def load_group_from_cloud(self, group_id: str) -> AdminGroupState:
        """Rebuild a group's administrative state from cloud metadata.

        Allows a (new) administrator process to take over management of an
        existing group: the descriptor provides the partition map, the
        partition records the ciphertexts, and the sealed group key is the
        opaque blob only the enclave can open.  All records are
        signature-checked against this administrator's verification key.
        In pipeline mode the partition records and the sealed key arrive
        in one ``get_many`` round trip.

        The load reads *objects*, never the event log, so its cost is
        O(state) regardless of how much history the store has compacted
        away; :meth:`sync_group` then keeps the loaded state current for
        O(changes) per refresh.
        """
        with _span("admin.load_group", group=group_id):
            # Read the head first: anything committed after this point
            # will be re-observed by the next sync_group poll, which is
            # idempotent; anything at or below it is covered by the
            # object reads that follow.
            sync_cursor = self._head_sequence()
            descriptor_obj = self.retry.run(
                lambda: self.cloud.get(descriptor_path(group_id)),
                label="admin.load.descriptor",
            )
            descriptor = GroupDescriptor.verify_and_decode(
                descriptor_obj.data, self.verification_key
            )
            state = self._assemble_state(
                group_id, descriptor, descriptor_obj.version,
                cached_records={}, sync_cursor=sync_cursor,
            )
            self.cache.put(state)
            return state

    def sync_group(self, group_id: str) -> bool:
        """Incrementally refresh an already-loaded group: one poll from
        the state's cursor, then refetch only what changed (unchanged
        partition records are reused from the cache, so the cost is
        O(changes since the last load/sync), not O(group)).

        The sealed group key is always refetched when anything changed:
        the cached copy may be a *locally staged* value from an operation
        that lost an optimistic-concurrency race and never committed.

        Returns True when the state changed.  Raises
        :class:`~repro.errors.NotFoundError` (after dropping the cached
        state) when the group's descriptor was deleted — the same outcome
        a full reload of a deleted group produces.
        """
        state = self._require_group(group_id)
        with _span("admin.sync_group", group=group_id) as sp:
            events, cursor = self.retry.run(
                lambda: self.cloud.poll_dir(group_dir(group_id),
                                            state.sync_cursor),
                label="admin.sync.poll",
            )
            sp.set(events=len(events))
            if not events:
                state.sync_cursor = cursor
                return False
            # Last event per path decides the outcome; intermediate
            # states within the window are dead.
            final = {event.path: event for event in events}
            dpath = descriptor_path(group_id)
            descriptor_event = final.get(dpath)
            if (descriptor_event is not None
                    and descriptor_event.kind == "delete"):
                self.cache.drop(group_id)
                from repro.errors import NotFoundError
                raise NotFoundError(f"no object at {dpath}")
            descriptor_obj = self.retry.run(
                lambda: self.cloud.get(dpath),
                label="admin.load.descriptor",
            )
            descriptor = GroupDescriptor.verify_and_decode(
                descriptor_obj.data, self.verification_key
            )
            cached = {
                pid: record for pid, record in state.records.items()
                if partition_path(group_id, pid) not in final
            }
            sp.set(reused=len(cached))
            fresh = self._assemble_state(
                group_id, descriptor, descriptor_obj.version,
                cached_records=cached, sync_cursor=cursor,
            )
            self.cache.put(fresh)
            return True

    def _head_sequence(self) -> int:
        """The store's newest committed sequence (0 for stores without
        the inspection accessor)."""
        accessor = getattr(self.cloud, "head_sequence", None)
        return accessor() if callable(accessor) else 0

    def _assemble_state(self, group_id: str, descriptor: GroupDescriptor,
                        descriptor_version: int,
                        cached_records: Dict[int, PartitionRecord],
                        sync_cursor: int) -> AdminGroupState:
        """Materialize an :class:`AdminGroupState` from a verified
        descriptor, fetching every partition record not supplied in
        ``cached_records`` (plus, always, the sealed group key).  The
        partition table is rebuilt from the authoritative record member
        order, so assembly from any mix of cached and fetched records is
        byte-identical to a full replay of the event history."""
        table = PartitionTable(capacity=descriptor.partition_capacity)
        by_partition: Dict[int, List[str]] = {}
        for user, pid in descriptor.user_to_partition.items():
            by_partition.setdefault(pid, []).append(user)
        state = AdminGroupState(group_id=group_id, table=table,
                                epoch=descriptor.epoch,
                                descriptor_version=descriptor_version,
                                sync_cursor=sync_cursor)
        pids = sorted(by_partition)
        record_paths = {
            pid: partition_path(group_id, pid)
            for pid in pids if pid not in cached_records
        }
        skey_path = sealed_key_path(group_id)
        if self.pipeline:
            objects = self.retry.run(
                lambda: self.cloud.get_many(
                    list(record_paths.values()) + [skey_path]
                ),
                label="admin.load.get_many",
            )
            fetch = objects.get
        else:
            def fetch(path: str):
                from repro.errors import NotFoundError
                try:
                    return self.retry.run(lambda: self.cloud.get(path),
                                          label="admin.load.get")
                except NotFoundError:
                    return None
        for pid in pids:
            if pid in cached_records:
                record = cached_records[pid]
            else:
                record_obj = fetch(record_paths[pid])
                if record_obj is None:
                    from repro.errors import NotFoundError
                    raise NotFoundError(
                        f"no object at {record_paths[pid]}")
                record = PartitionRecord.verify_and_decode(
                    record_obj.data, self.verification_key
                )
            # Rebuild bookkeeping from the authoritative record order.
            created = table._create_partition(list(record.members))
            if created != pid:
                # Partition ids on the cloud are sparse after deletions;
                # remap the freshly created id to the stored one.
                table._partitions[pid] = table._partitions.pop(created)
                for user in record.members:
                    table._user_to_partition[user] = pid
                table._next_id = max(table._next_id, pid + 1)
            state.records[pid] = record
        # Restore the allocation cursor from the descriptor: surviving
        # partitions alone under-estimate it when the top partition was
        # deleted, and ids must never be reused.
        table._next_id = max(table._next_id, descriptor.next_partition_id)
        sealed_obj = fetch(skey_path)
        if sealed_obj is not None:
            state.sealed_group_key = sealed_obj.data
        return state

    def _recover_sealed_gk(self, state: AdminGroupState) -> bytes:
        """Multi-admin recovery: the cached sealed group key may have been
        sealed by *another* admin's enclave (sealed blobs are platform-
        bound).  Holding the MSK, our enclave recovers ``gk`` from a
        current partition record and re-seals it for itself."""
        reference = next(
            (record for record in state.records.values() if record.members),
            None,
        )
        if reference is None:
            raise SealingError(
                "cannot recover the group key: no populated partition "
                "records are available"
            )
        return self.enclave.call(
            "recover_and_reseal", state.group_id,
            list(reference.members), reference.ciphertext,
            reference.envelope,
        )

    def _require_group(self, group_id: str) -> AdminGroupState:
        state = self.cache.get(group_id)
        if state is None:
            raise AccessControlError(f"unknown group {group_id!r}")
        return state
