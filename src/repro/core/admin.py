"""The administrator API (paper §V, Algorithms 1-3).

An administrator is honest-but-curious: this class is *untrusted* code.  It
orchestrates partition bookkeeping, drives the IBBE-SGX enclave for every
cryptographic step, signs the resulting metadata, and pushes it to the
cloud.  At no point does it see a plaintext group or broadcast key — the
zero-knowledge tests run these exact code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cloud.store import CloudStore
from repro.core.cache import AdminCache, AdminGroupState
from repro.core.metadata import (
    GroupDescriptor,
    PartitionRecord,
    descriptor_path,
    partition_path,
    sealed_key_path,
)
from repro.core.partitions import PartitionTable
from repro.crypto import ecdsa
from repro.crypto.rng import Rng, SystemRng
from repro.enclave_app.ibbe_enclave import IbbeEnclave, PartitionBlob
from repro.errors import AccessControlError, MembershipError, SealingError


@dataclass
class AdminMetrics:
    """Operation counters for the macrobenchmarks."""

    groups_created: int = 0
    users_added: int = 0
    users_removed: int = 0
    rekeys: int = 0
    repartitions: int = 0
    partitions_written: int = 0
    bytes_pushed: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(vars(self))


class GroupAdministrator:
    """Drives group membership through the enclave and the cloud."""

    def __init__(self, enclave: IbbeEnclave, cloud: CloudStore,
                 signing_key: ecdsa.EcdsaPrivateKey,
                 partition_capacity: int,
                 rng: Optional[Rng] = None,
                 auto_repartition: bool = True) -> None:
        if partition_capacity < 1:
            raise AccessControlError("partition capacity must be >= 1")
        self.enclave = enclave
        self.cloud = cloud
        self.partition_capacity = partition_capacity
        self.auto_repartition = auto_repartition
        self._signing_key = signing_key
        self._rng = rng or SystemRng()
        self.cache = AdminCache()
        self.metrics = AdminMetrics()

    @property
    def verification_key(self) -> ecdsa.EcdsaPublicKey:
        """Clients pin this key to authenticate metadata."""
        return self._signing_key.public_key()

    # -- Algorithm 1: create group --------------------------------------------------

    def create_group(self, group_id: str, members: Sequence[str],
                     ) -> AdminGroupState:
        """Create a group: partition, run the enclaved region, push."""
        if group_id in self.cache:
            raise AccessControlError(f"group {group_id!r} already exists")
        if not members:
            raise AccessControlError("cannot create an empty group")
        state = self._build_group(group_id, members)
        self.cache.put(state)
        self.metrics.groups_created += 1
        return state

    def _build_group(self, group_id: str, members: Sequence[str],
                     epoch: int = 0,
                     descriptor_version: int = 0) -> AdminGroupState:
        table = PartitionTable.build(members, self.partition_capacity)
        partition_members = [table.members_of(pid) for pid in table.partition_ids]
        blobs, sealed_gk = self.enclave.call(
            "create_group", group_id, partition_members
        )
        state = AdminGroupState(group_id=group_id, table=table,
                                sealed_group_key=sealed_gk, epoch=epoch,
                                descriptor_version=descriptor_version)
        # The descriptor is the commit point: its conditional put claims
        # the next version *before* any other object is touched, so a
        # lost multi-admin race leaves no partial writes behind.
        self._push_descriptor(state)
        for pid, blob in zip(table.partition_ids, blobs):
            self._install_partition(state, pid, blob)
        self._push_sealed_gk(state)
        return state

    # -- Algorithm 2: add user ---------------------------------------------------------

    def add_user(self, group_id: str, user: str) -> None:
        """Add ``user``: random open partition, or a fresh one when all are
        full (the two CDF modes of Fig. 8a)."""
        state = self._require_group(group_id)
        if user in state.table:
            raise MembershipError(f"user {user!r} is already a member")
        pid = state.table.pick_open_partition(self._rng)
        if pid is None:
            pid = state.table.add_new_partition(user)
            blob = self._create_partition_blob(state, [user])
        else:
            state.table.add_to_partition(pid, user)
            old_record = state.records[pid]
            new_ciphertext = self.enclave.call(
                "add_user_to_partition", old_record.ciphertext, user
            )
            # The broadcast key is unchanged: y_p is carried over verbatim
            # (Algorithm 2 pushes only members and ciphertext).
            blob = PartitionBlob(ciphertext=new_ciphertext,
                                 envelope=old_record.envelope)
        state.epoch += 1
        self._push_descriptor(state)  # commit point (may raise Conflict)
        self._install_partition(state, pid, blob)
        self.metrics.users_added += 1

    def add_users(self, group_id: str, users: Sequence[str]) -> None:
        """Batch addition: one descriptor commit for the whole batch.

        Amortizes the commit/record pushes over many joins (administrators
        "perform membership changes for multiple groups at a time", §II —
        bulk on-boarding is the common case this serves).  The broadcast
        keys are unchanged throughout, exactly as in repeated single adds.
        """
        state = self._require_group(group_id)
        users = list(users)
        for user in users:
            if user in state.table or users.count(user) > 1:
                raise MembershipError(
                    f"user {user!r} is already a member or duplicated"
                )
        touched: Dict[int, PartitionBlob] = {}
        for user in users:
            pid = state.table.pick_open_partition(self._rng)
            if pid is None:
                pid = state.table.add_new_partition(user)
                touched[pid] = self._create_partition_blob(state, [user])
            else:
                state.table.add_to_partition(pid, user)
                previous = touched.get(pid)
                base_ciphertext = (
                    previous.ciphertext if previous
                    else state.records[pid].ciphertext
                )
                envelope = (
                    previous.envelope if previous
                    else state.records[pid].envelope
                )
                new_ciphertext = self.enclave.call(
                    "add_user_to_partition", base_ciphertext, user
                )
                touched[pid] = PartitionBlob(ciphertext=new_ciphertext,
                                             envelope=envelope)
        state.epoch += 1
        self._push_descriptor(state)  # commit point
        for pid, blob in touched.items():
            self._install_partition(state, pid, blob)
        self.metrics.users_added += len(users)

    def delete_group(self, group_id: str) -> None:
        """Remove a group and all of its cloud metadata."""
        state = self._require_group(group_id)
        for pid in list(state.table.partition_ids):
            self._delete_partition(state, pid)
        for path in (descriptor_path(group_id), sealed_key_path(group_id)):
            if self.cloud.exists(path):
                self.cloud.delete(path)
        self.cache.drop(group_id)

    # -- Algorithm 3: remove user --------------------------------------------------------

    def remove_user(self, group_id: str, user: str) -> None:
        """Revoke ``user``: fresh group key, O(1) update of the hosting
        partition, O(1) re-key of every other partition."""
        state = self._require_group(group_id)
        host_pid = state.table.partition_of(user)
        host_record = state.records[host_pid]
        state.table.remove(user)
        other_pids = [pid for pid in state.table.partition_ids
                      if pid != host_pid]

        if len(state.table) == 0:
            # Last member left: drop all metadata; no re-key needed since
            # nobody may read the group any longer.
            state.epoch += 1
            self._push_descriptor(state)  # commit point
            self._delete_partition(state, host_pid)
            self.metrics.users_removed += 1
            return

        host_survives = host_pid in state.table.partition_ids
        if host_survives:
            host_blob, other_blobs, sealed_gk = self.enclave.call(
                "remove_user", group_id, user, host_record.ciphertext,
                [state.records[pid].ciphertext for pid in other_pids],
            )
        else:
            # Hosting partition became empty: drop it and re-key the rest.
            host_blob = None
            other_blobs, sealed_gk = self.enclave.call(
                "rekey_group", group_id,
                [state.records[pid].ciphertext for pid in other_pids],
            )
        state.sealed_group_key = sealed_gk
        state.epoch += 1
        self._push_descriptor(state)  # commit point (may raise Conflict)
        if host_blob is not None:
            self._install_partition(state, host_pid, host_blob)
        else:
            self._delete_partition(state, host_pid)
        for pid, blob in zip(other_pids, other_blobs):
            self._install_partition(state, pid, blob)
        self._push_sealed_gk(state)
        self.metrics.users_removed += 1

        if self.auto_repartition and state.table.needs_repartition():
            self.repartition(group_id)

    # -- re-keying and re-partitioning ----------------------------------------------------

    def rekey(self, group_id: str) -> None:
        """Refresh the group key without membership changes (A-G)."""
        state = self._require_group(group_id)
        pids = state.table.partition_ids
        blobs, sealed_gk = self.enclave.call(
            "rekey_group", group_id,
            [state.records[pid].ciphertext for pid in pids],
        )
        state.sealed_group_key = sealed_gk
        state.epoch += 1
        self._push_descriptor(state)  # commit point (may raise Conflict)
        for pid, blob in zip(pids, blobs):
            self._install_partition(state, pid, blob)
        self._push_sealed_gk(state)
        self.metrics.rekeys += 1

    def repartition(self, group_id: str,
                    new_capacity: Optional[int] = None) -> None:
        """Re-create the group from its current member list (§V-A:
        "re-partitioning consists in simply re-creating the group").

        ``new_capacity`` switches the group to a different partition size —
        the hook used by the adaptive-partitioning extension
        (:mod:`repro.core.adaptive`).  It must not exceed the enclave's
        system bound ``m`` fixed at setup.
        """
        state = self._require_group(group_id)
        if new_capacity is not None:
            if new_capacity < 1:
                raise AccessControlError("partition capacity must be >= 1")
            bound = self.enclave.call("get_system_bound")
            if new_capacity > bound:
                raise AccessControlError(
                    f"partition capacity {new_capacity} exceeds the "
                    f"enclave's system bound m={bound} fixed at setup"
                )
            self.partition_capacity = new_capacity
        members = state.table.all_members()
        old_pids = set(state.table.partition_ids)
        # _build_group claims the descriptor first (the commit point) and
        # pushes the new layout; stale partition objects from the old
        # layout are deleted afterwards.
        new_state = self._build_group(
            group_id, members, epoch=state.epoch + 1,
            descriptor_version=state.descriptor_version,
        )
        for pid in old_pids - set(new_state.table.partition_ids):
            if self.cloud.exists(partition_path(group_id, pid)):
                self.cloud.delete(partition_path(group_id, pid))
        self.cache.put(new_state)
        self.metrics.repartitions += 1

    # -- queries -------------------------------------------------------------------------

    def group_state(self, group_id: str) -> AdminGroupState:
        return self._require_group(group_id)

    def members(self, group_id: str) -> List[str]:
        return self._require_group(group_id).table.all_members()

    # -- internals -----------------------------------------------------------------------

    def _install_partition(self, state: AdminGroupState, pid: int,
                           blob: PartitionBlob) -> None:
        record = PartitionRecord(
            group_id=state.group_id,
            partition_id=pid,
            members=tuple(state.table.members_of(pid)),
            ciphertext=blob.ciphertext,
            envelope=blob.envelope,
        )
        state.records[pid] = record
        data = record.signed(self._signing_key)
        self.cloud.put(partition_path(state.group_id, pid), data)
        self.metrics.partitions_written += 1
        self.metrics.bytes_pushed += len(data)

    def _delete_partition(self, state: AdminGroupState, pid: int) -> None:
        state.records.pop(pid, None)
        path = partition_path(state.group_id, pid)
        if self.cloud.exists(path):
            self.cloud.delete(path)

    # -- persistence / recovery ------------------------------------------------

    def load_group_from_cloud(self, group_id: str) -> AdminGroupState:
        """Rebuild a group's administrative state from cloud metadata.

        Allows a (new) administrator process to take over management of an
        existing group: the descriptor provides the partition map, the
        partition records the ciphertexts, and the sealed group key is the
        opaque blob only the enclave can open.  All records are
        signature-checked against this administrator's verification key.
        """
        descriptor_obj = self.cloud.get(descriptor_path(group_id))
        descriptor = GroupDescriptor.verify_and_decode(
            descriptor_obj.data, self.verification_key
        )
        table = PartitionTable(capacity=descriptor.partition_capacity)
        by_partition: Dict[int, List[str]] = {}
        for user, pid in descriptor.user_to_partition.items():
            by_partition.setdefault(pid, []).append(user)
        state = AdminGroupState(group_id=group_id, table=table,
                                epoch=descriptor.epoch,
                                descriptor_version=descriptor_obj.version)
        for pid in sorted(by_partition):
            record_obj = self.cloud.get(partition_path(group_id, pid))
            record = PartitionRecord.verify_and_decode(
                record_obj.data, self.verification_key
            )
            # Rebuild bookkeeping from the authoritative record order.
            created = table._create_partition(list(record.members))
            if created != pid:
                # Partition ids on the cloud are sparse after deletions;
                # remap the freshly created id to the stored one.
                table._partitions[pid] = table._partitions.pop(created)
                for user in record.members:
                    table._user_to_partition[user] = pid
                table._next_id = max(table._next_id, pid + 1)
            state.records[pid] = record
        if self.cloud.exists(sealed_key_path(group_id)):
            state.sealed_group_key = self.cloud.get(
                sealed_key_path(group_id)
            ).data
        self.cache.put(state)
        return state

    def _create_partition_blob(self, state: AdminGroupState,
                               members: List[str]) -> PartitionBlob:
        """Algorithm 2's new-partition path, multi-admin-safe.

        In a multi-administrator deployment the cached sealed group key
        may have been sealed by *another* admin's enclave (sealed blobs
        are platform-bound).  On a sealing failure the enclave recovers
        ``gk`` from a current partition record (it holds the MSK) and
        re-seals it for itself, after which the operation proceeds.
        """
        try:
            return self.enclave.call(
                "create_partition", state.group_id, members,
                state.sealed_group_key,
            )
        except SealingError:
            state.sealed_group_key = self._recover_sealed_gk(state)
            return self.enclave.call(
                "create_partition", state.group_id, members,
                state.sealed_group_key,
            )

    def _recover_sealed_gk(self, state: AdminGroupState) -> bytes:
        reference = next(
            (record for record in state.records.values() if record.members),
            None,
        )
        if reference is None:
            raise SealingError(
                "cannot recover the group key: no populated partition "
                "records are available"
            )
        return self.enclave.call(
            "recover_and_reseal", state.group_id,
            list(reference.members), reference.ciphertext,
            reference.envelope,
        )

    def _push_sealed_gk(self, state: AdminGroupState) -> None:
        if state.sealed_group_key:
            self.cloud.put(sealed_key_path(state.group_id),
                           state.sealed_group_key)
            self.metrics.bytes_pushed += len(state.sealed_group_key)

    def _push_descriptor(self, state: AdminGroupState) -> None:
        descriptor = GroupDescriptor(
            group_id=state.group_id,
            partition_capacity=state.table.capacity,
            user_to_partition={
                user: state.table.partition_of(user)
                for user in state.table.all_members()
            },
            epoch=state.epoch,
        )
        data = descriptor.signed(self._signing_key)
        # Conditional put: the descriptor is the serialization point for
        # concurrent administrators — a stale local view raises
        # ConflictError (handled by core.multiadmin's retry loop).
        state.descriptor_version = self.cloud.put(
            descriptor_path(state.group_id), data,
            expected_version=state.descriptor_version,
        )
        self.metrics.bytes_pushed += len(data)

    def _require_group(self, group_id: str) -> AdminGroupState:
        state = self.cache.get(group_id)
        if state is None:
            raise AccessControlError(f"unknown group {group_id!r}")
        return state
