"""The partitioning mechanism (paper §IV-C).

Groups are split into fixed-capacity partitions; each partition carries its
own IBBE broadcast key wrapping the shared group key, which bounds the
user-side decryption cost to the partition size instead of the group size.

:class:`PartitionTable` is pure bookkeeping (no cryptography): membership
of partitions, user→partition lookup, capacity queries, and the occupancy
heuristic that triggers re-partitioning ("if less than half of the
partitions are two-thirds full, re-partition", §V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.crypto.rng import Rng
from repro.errors import MembershipError, ParameterError


@dataclass
class PartitionTable:
    """Mutable membership state of one group."""

    capacity: int
    _partitions: Dict[int, List[str]] = field(default_factory=dict)
    _user_to_partition: Dict[str, int] = field(default_factory=dict)
    _next_id: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ParameterError("partition capacity must be >= 1")

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(cls, members: Sequence[str], capacity: int) -> "PartitionTable":
        """Split ``members`` into fixed-size partitions (Algorithm 1 line 1)."""
        table = cls(capacity=capacity)
        unique = list(dict.fromkeys(members))
        if len(unique) != len(members):
            raise MembershipError("duplicate members in group definition")
        for start in range(0, len(unique), capacity):
            table._create_partition(unique[start:start + capacity])
        return table

    def _create_partition(self, members: List[str]) -> int:
        pid = self._next_id
        self._next_id += 1
        self._partitions[pid] = list(members)
        for user in members:
            self._user_to_partition[user] = pid
        return pid

    # -- queries ------------------------------------------------------------------

    @property
    def partition_ids(self) -> List[int]:
        return sorted(self._partitions)

    @property
    def next_partition_id(self) -> int:
        """The allocation cursor: the id the next new partition will get.
        Ids are never reused (deleting the top partition does not rewind
        it), and it is persisted in the group descriptor so a state
        reload allocates exactly as the in-memory table would have."""
        return self._next_id

    def members_of(self, partition_id: int) -> List[str]:
        if partition_id not in self._partitions:
            raise MembershipError(f"unknown partition {partition_id}")
        return list(self._partitions[partition_id])

    def partition_of(self, user: str) -> int:
        pid = self._user_to_partition.get(user)
        if pid is None:
            raise MembershipError(f"user {user!r} is not a group member")
        return pid

    def __contains__(self, user: str) -> bool:
        return user in self._user_to_partition

    def __len__(self) -> int:
        return len(self._user_to_partition)

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    def all_members(self) -> List[str]:
        return [
            user
            for pid in self.partition_ids
            for user in self._partitions[pid]
        ]

    def partitions_with_capacity(self) -> List[int]:
        """P′ of Algorithm 2 line 1: partitions below capacity."""
        return [
            pid for pid in self.partition_ids
            if len(self._partitions[pid]) < self.capacity
        ]

    def pick_open_partition(self, rng: Rng) -> Optional[int]:
        """RandomItem(P′) of Algorithm 2 line 9; None when all are full."""
        open_partitions = self.partitions_with_capacity()
        if not open_partitions:
            return None
        return open_partitions[rng.randint_below(len(open_partitions))]

    # -- mutation -------------------------------------------------------------------

    def add_to_partition(self, partition_id: int, user: str) -> None:
        if user in self._user_to_partition:
            raise MembershipError(f"user {user!r} is already a member")
        members = self._partitions.get(partition_id)
        if members is None:
            raise MembershipError(f"unknown partition {partition_id}")
        if len(members) >= self.capacity:
            raise MembershipError(f"partition {partition_id} is full")
        members.append(user)
        self._user_to_partition[user] = partition_id

    def add_new_partition(self, user: str) -> int:
        if user in self._user_to_partition:
            raise MembershipError(f"user {user!r} is already a member")
        return self._create_partition([user])

    def remove(self, user: str) -> int:
        """Remove a member; returns the partition that hosted them.

        Empty partitions are dropped from the table (the administrator also
        deletes their cloud object)."""
        pid = self.partition_of(user)
        self._partitions[pid].remove(user)
        del self._user_to_partition[user]
        if not self._partitions[pid]:
            del self._partitions[pid]
        return pid

    # -- occupancy heuristic -----------------------------------------------------------

    def occupancy(self) -> float:
        """Mean fill ratio across partitions (1.0 = all full)."""
        if not self._partitions:
            return 1.0
        return len(self._user_to_partition) / (
            self.partition_count * self.capacity
        )

    def needs_repartition(self) -> bool:
        """Low-occupancy detector of §V-A.

        Triggers when fewer than half of the partitions are at least
        two-thirds full (and merging could actually reduce the partition
        count)."""
        if self.partition_count < 2:
            return False
        threshold = 2 * self.capacity / 3
        well_filled = sum(
            1 for members in self._partitions.values()
            if len(members) >= threshold
        )
        if well_filled >= self.partition_count / 2:
            return False
        # Only worth re-partitioning if it would shrink the table.
        minimal = -(-len(self._user_to_partition) // self.capacity)
        return minimal < self.partition_count
