"""Declarative operation plans: one enclave batch + one cloud batch.

Every :class:`~repro.core.admin.GroupAdministrator` mutation follows the
same macro-shape — run some ecalls, then push descriptor + partition
records + sealed group key to the cloud.  The seed implementation
hand-duplicated that sequence across six mutation paths, paying one
boundary crossing per ecall and one round trip per object.  An
:class:`OpPlan` makes the shape explicit:

* ``ecalls`` — the enclave work, expressed as :class:`EcallOp` entries.
  Arguments may be :class:`~repro.sgx.enclave.ResultRef` placeholders
  referencing earlier results, so dependent calls (extend the ciphertext
  a previous entry created) batch into the same crossing.
* ``effects`` — a callable mapping the ecall results to
  :class:`PlanEffects`: the ordered cloud actions (install partition,
  drop partition, push sealed key) plus the new sealed group key, if the
  operation rotated it.

``GroupAdministrator._commit_plan`` is the single executor: in pipeline
mode the ecalls run through ``call_batch`` (ONE crossing) and the cloud
actions through ``CloudStore.commit`` (ONE round trip, descriptor
conditional-put first); in sequential mode the same plan replays the
seed's call-per-ecall / request-per-object behaviour, which the
equivalence tests and before/after benchmarks rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class EcallOp:
    """One enclave entry in a plan (positional args only; args may contain
    :class:`~repro.sgx.enclave.ResultRef` placeholders)."""

    name: str
    args: Tuple[Any, ...]


@dataclass(frozen=True)
class InstallPartition:
    """Sign and push the record for partition ``pid`` holding ``blob``."""

    pid: int
    blob: Any  # PartitionBlob (kept untyped to avoid an import cycle)


@dataclass(frozen=True)
class DropPartition:
    """Delete partition ``pid``'s cloud object (tolerating absence)."""

    pid: int


@dataclass(frozen=True)
class PushSealedKey:
    """Push the state's (possibly freshly rotated) sealed group key."""


PlanAction = Union[InstallPartition, DropPartition, PushSealedKey]


@dataclass
class PlanEffects:
    """Cloud-visible outcome of a plan's enclave phase, in commit order."""

    actions: List[PlanAction] = field(default_factory=list)
    #: New sealed group key (``None`` when the operation kept the old one).
    sealed_gk: Optional[bytes] = None


@dataclass
class OpPlan:
    """One group mutation: enclave batch + cloud effects.

    ``effects`` receives the ecall results in request order.  Plans are
    produced by zero-argument builder closures so the executor can rebuild
    them after recovering a foreign sealed group key (multi-admin
    :class:`~repro.errors.SealingError` path) — the builder re-reads the
    refreshed ``state.sealed_group_key``.

    ``bump_epoch`` is False for operations that preset the epoch on a
    fresh state object (group creation, re-partitioning).
    """

    ecalls: List[EcallOp]
    effects: Callable[[Sequence[Any]], PlanEffects]
    bump_epoch: bool = True
    #: Telemetry label; defaults to the ecall names (see :meth:`describe`).
    label: Optional[str] = None

    def describe(self) -> str:
        """Short human/trace label for this plan (``admin.plan`` spans)."""
        if self.label:
            return self.label
        if not self.ecalls:
            return "noop"
        return "+".join(op.name for op in self.ecalls)
