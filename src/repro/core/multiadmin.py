"""Concurrent administrators (paper §VIII, second future-work avenue).

The paper suggests adapting the construction "to a distributed set of
administrators that would perform membership changes concurrently on the
same group or partition, by using lock-free techniques".  This extension
realizes that with optimistic concurrency control:

* the group *descriptor* object is the serialization point — every
  administrator pushes it with a conditional PUT carrying the version it
  last observed;
* a lost race raises :class:`~repro.errors.ConflictError`, upon which the
  losing administrator refreshes its state from the cloud — incrementally
  via :meth:`GroupAdministrator.sync_group` (one poll from its cursor plus
  refetches of only the objects the winner changed), falling back to
  :meth:`GroupAdministrator.load_group_from_cloud` for a group it has
  never loaded — and re-applies the operation — the classic lock-free
  retry loop;
* administrators share the IBBE master secret by *attested migration*
  between their enclaves (see
  :meth:`repro.enclave_app.IbbeEnclave.export_master_secret`) and sign
  metadata with a shared organisational role key so clients keep a single
  verification anchor.

The retry loop re-validates the operation against the refreshed state, so
semantically-conflicting operations (e.g. both admins removing the same
user) surface as :class:`MembershipError` rather than clobbering state.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, TypeVar

from repro.core.admin import GroupAdministrator
from repro.errors import AccessControlError, ConflictError
from repro.faults.retry import RetryPolicy

T = TypeVar("T")


class ConcurrentAdministrator:
    """Retry-on-conflict façade over a :class:`GroupAdministrator`.

    Conflict resolution runs through a shared
    :class:`~repro.faults.RetryPolicy` (capped exponential backoff with
    deterministic jitter, accounted-not-slept) instead of an immediate
    hot loop: under contention the colliding administrators back off for
    different simulated durations instead of re-racing in lock-step.
    ``admin.conflict.retries`` and ``admin.conflict.exhausted`` in the
    administrator's registry count resolved and abandoned races.
    """

    def __init__(self, admin: GroupAdministrator,
                 max_retries: int = 8,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        if max_retries < 1:
            raise AccessControlError("max_retries must be >= 1")
        self.admin = admin
        self.max_retries = max_retries
        self.conflicts_resolved = 0
        registry = admin.metrics.registry
        # max_retries counts *retries* (the historical contract: the
        # budget is on re-attempts after the first try).
        self.retry = retry_policy or RetryPolicy(
            max_attempts=max_retries + 1, base_ms=25.0,
            seed="admin-conflict", registry=registry)
        self._conflict_retries = registry.counter("admin.conflict.retries")
        self._conflict_exhausted = registry.counter(
            "admin.conflict.exhausted")

    # -- operations -------------------------------------------------------------

    def create_group(self, group_id: str, members: Sequence[str]) -> None:
        # Creation races are genuine conflicts (two admins creating the
        # same group) and are surfaced, not retried.
        self.admin.create_group(group_id, members)

    def add_user(self, group_id: str, user: str) -> None:
        self._with_retry(group_id,
                         lambda: self.admin.add_user(group_id, user))

    def remove_user(self, group_id: str, user: str) -> None:
        self._with_retry(group_id,
                         lambda: self.admin.remove_user(group_id, user))

    def rekey(self, group_id: str) -> None:
        self._with_retry(group_id, lambda: self.admin.rekey(group_id))

    def refresh(self, group_id: str) -> None:
        """Explicitly resynchronize from the cloud — incrementally when
        the group is already loaded (O(changes)), with a full object load
        otherwise."""
        self._resync(group_id)

    # -- the lock-free loop --------------------------------------------------------

    def _resync(self, group_id: str) -> None:
        if group_id in self.admin.cache:
            self.admin.sync_group(group_id)
        else:
            self.admin.load_group_from_cloud(group_id)

    def _with_retry(self, group_id: str, operation: Callable[[], T]) -> T:
        def on_conflict(exc: BaseException, attempt: int) -> None:
            # Lost the race: adopt the winner's state and re-apply.
            # sync_group polls from the state's cursor, so adopting the
            # winner's changes costs O(their changes), not O(group).
            self.conflicts_resolved += 1
            self._conflict_retries.add()
            self._resync(group_id)

        try:
            return self.retry.run(operation, retry_on=(ConflictError,),
                                  label=f"admin.conflict:{group_id}",
                                  on_retry=on_conflict)
        except ConflictError as exc:
            self._conflict_exhausted.add()
            raise ConflictError(
                f"operation on {group_id!r} kept conflicting after "
                f"{self.max_retries} retries"
            ) from exc


def join_administration(source_system, target_enclave) -> None:
    """Bring a second enclave into the administration set.

    Runs the attested MSK migration: the target is certified by the
    deployment's Auditor (Fig. 3), the source enclave verifies that
    certificate against its *pinned* CA key and releases the MSK only to
    an identically-measured enclave.

    ``source_system`` is a :class:`repro.System`; ``target_enclave`` an
    :class:`~repro.enclave_app.IbbeEnclave` loaded with the same
    configuration (including the pinned CA key).
    """
    from repro.sgx.attestation import setup_trust

    source_system.auditor.approve_measurement(target_enclave.measurement)
    target_certificate = setup_trust(target_enclave, source_system.auditor)
    blob = source_system.enclave.call(
        "export_master_secret", target_certificate
    )
    target_enclave.call("import_master_secret", blob,
                        source_system.public_key)
