"""Group metadata records stored on the cloud.

Two record types implement the paper's bi-level hierarchy (§V-A):

* :class:`PartitionRecord` — one per partition at ``/<group>/p<id>``:
  member identities, the IBBE ciphertext ``c_p`` and the group-key envelope
  ``y_p``.  Identities are stored in the clear — the model explicitly does
  not hide membership (§II).
* :class:`GroupDescriptor` — at ``/<group>/descriptor``: partition size and
  the user→partition mapping ("a metadata structure that keeps the mapping
  between users and partitions", §IV-C).

Records are signed by the administrator (the model authenticates
membership operations, §II); clients refuse unsigned or mis-signed
metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.serialize import Reader, Writer, join_signed, split_signed
from repro.crypto import ecdsa
from repro.errors import AuthenticationError, StorageError

_PARTITION_MAGIC = b"PREC1"
_DESCRIPTOR_MAGIC = b"GDSC1"


@dataclass(frozen=True)
class PartitionRecord:
    group_id: str
    partition_id: int
    members: Tuple[str, ...]
    ciphertext: bytes     # IbbeCiphertext encoding
    envelope: bytes       # y_p

    def crypto_bytes(self) -> int:
        """Size of the cryptographic payload only (the paper's
        'group metadata expansion' metric: ciphertext + wrapped key)."""
        return len(self.ciphertext) + len(self.envelope)

    def payload(self) -> bytes:
        writer = Writer()
        writer.bytes_field(_PARTITION_MAGIC)
        writer.str_field(self.group_id)
        writer.u32(self.partition_id)
        writer.str_list(self.members)
        writer.bytes_field(self.ciphertext)
        writer.bytes_field(self.envelope)
        return writer.getvalue()

    def signed(self, key: ecdsa.EcdsaPrivateKey) -> bytes:
        payload = self.payload()
        return join_signed(payload, key.sign(payload))

    @classmethod
    def verify_and_decode(cls, data: bytes,
                          admin_key: ecdsa.EcdsaPublicKey,
                          ) -> "PartitionRecord":
        payload, signature = split_signed(data)
        try:
            admin_key.verify(payload, signature)
        except AuthenticationError as exc:
            raise AuthenticationError(
                "partition record not signed by a trusted administrator"
            ) from exc
        return cls.decode_payload(payload)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "PartitionRecord":
        reader = Reader(payload)
        if reader.bytes_field() != _PARTITION_MAGIC:
            raise StorageError("not a partition record")
        record = cls(
            group_id=reader.str_field(),
            partition_id=reader.u32(),
            members=tuple(reader.str_list()),
            ciphertext=reader.bytes_field(),
            envelope=reader.bytes_field(),
        )
        reader.expect_end()
        return record


@dataclass(frozen=True)
class GroupDescriptor:
    group_id: str
    partition_capacity: int
    user_to_partition: Dict[str, int]
    epoch: int    # bumped on every membership operation
    #: Partition-id allocation cursor.  Ids are never reused, so the
    #: cursor must survive an administrator rebuilding its state from
    #: the cloud — deriving it from the *surviving* partitions would
    #: re-issue the id of a deleted top partition after a crash.
    next_partition_id: int = 0

    def payload(self) -> bytes:
        writer = Writer()
        writer.bytes_field(_DESCRIPTOR_MAGIC)
        writer.str_field(self.group_id)
        writer.u32(self.partition_capacity)
        writer.u64(self.epoch)
        writer.u32(self.next_partition_id)
        writer.u32(len(self.user_to_partition))
        for user in sorted(self.user_to_partition):
            writer.str_field(user)
            writer.u32(self.user_to_partition[user])
        return writer.getvalue()

    def signed(self, key: ecdsa.EcdsaPrivateKey) -> bytes:
        payload = self.payload()
        return join_signed(payload, key.sign(payload))

    @classmethod
    def verify_and_decode(cls, data: bytes,
                          admin_key: ecdsa.EcdsaPublicKey,
                          ) -> "GroupDescriptor":
        payload, signature = split_signed(data)
        try:
            admin_key.verify(payload, signature)
        except AuthenticationError as exc:
            raise AuthenticationError(
                "group descriptor not signed by a trusted administrator"
            ) from exc
        reader = Reader(payload)
        if reader.bytes_field() != _DESCRIPTOR_MAGIC:
            raise StorageError("not a group descriptor")
        group_id = reader.str_field()
        capacity = reader.u32()
        epoch = reader.u64()
        next_pid = reader.u32()
        count = reader.u32()
        mapping = {}
        for _ in range(count):
            user = reader.str_field()
            mapping[user] = reader.u32()
        reader.expect_end()
        return cls(
            group_id=group_id, partition_capacity=capacity,
            user_to_partition=mapping, epoch=epoch,
            next_partition_id=next_pid,
        )


def partition_path(group_id: str, partition_id: int) -> str:
    return f"/{group_id}/p{partition_id}"


def sealed_key_path(group_id: str) -> str:
    """Where the sealed group key is stored (Algorithm 1 stores
    ``sealed_gk`` alongside the partition metadata; the blob is opaque to
    everyone but the enclave that sealed it)."""
    return f"/{group_id}/sealed-gk"


def descriptor_path(group_id: str) -> str:
    return f"/{group_id}/descriptor"


def group_dir(group_id: str) -> str:
    return f"/{group_id}"
