"""The client (regular user) API (paper §V).

Clients never touch an enclave.  They long-poll the group directory for
partition updates, authenticate records against the pinned administrator
key, run the plain IBBE decrypt (quadratic in the partition size — the
cost Fig. 8b measures) and unwrap the group key envelope.

Two hardening extensions beyond the paper:

* **Decrypt-hint caching** — the quadratic part of IBBE decryption depends
  only on the partition member set, so it is cached and re-keys cost two
  pairings instead of an O(|p|²) expansion (quantified by
  ``bench_ablation_client_cache``).
* **Freshness tracking** — the client remembers the highest group epoch it
  has observed (from the signed descriptor); a cloud serving older
  metadata raises :class:`~repro.errors.StaleMetadataError` instead of
  silently rolling the client back to a pre-revocation key.

Two scaling extensions ride on the store's snapshot compaction:

* **Snapshot bootstrap** — when the poll cursor predates the store's
  snapshot horizon (first connect, or a reconnect after the history the
  client missed was compacted away), :meth:`GroupClient.sync` skips the
  per-event replay entirely: it fetches the signed descriptor, looks up
  its *own* partition in the user→partition map, and fetches only that
  partition's record — O(1) round trips and O(|p|) bytes instead of
  O(history) — then resumes normal suffix polling from the horizon.
* **Persistent resume cursor** — pass ``resume_path`` and the client
  saves ``(cursor, epoch, partition record)`` after every sync and
  reloads it on construction, so a restarted client process replays only
  the changes since its last sync.  The saved record is re-verified
  against the pinned administrator key on load; a corrupt or foreign
  file is ignored (cold start).
"""

from __future__ import annotations

import base64
import json
import os
import time
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro import ibbe
from repro.cloud.store import CloudStore
from repro.core.cache import ClientGroupState
from repro.core.envelope import unwrap_group_key
from repro.core.metadata import (
    GroupDescriptor,
    PartitionRecord,
    descriptor_path,
    group_dir,
    partition_path,
)
from repro.crypto import ecdsa
from repro.errors import (
    AccessControlError,
    NotFoundError,
    RevokedError,
    StaleMetadataError,
)
from repro.faults.retry import RetryPolicy
from repro.obs.metrics import CounterField, MetricRegistry
from repro.obs.spans import span as _span
from repro.pairing.group import PairingGroup


class GroupClient:
    """One user's view of one group."""

    #: Registry-backed counters (``client.*`` namespace); the attribute
    #: names are the historical API, kept working via the descriptors.
    decrypt_count = CounterField("client.decrypts")
    expansion_count = CounterField("client.expansions")

    #: Default hint-cache capacity: one partition's member set per epoch
    #: is live; a tiny window covers moves between partitions without
    #: unbounded growth.  :meth:`prewarm_hints` raises it as needed.
    HINT_CACHE_CAP = 4

    def __init__(self, group_id: str, identity: str,
                 user_key: ibbe.IbbeUserKey,
                 public_key: ibbe.IbbePublicKey,
                 cloud: CloudStore,
                 admin_verification_key: ecdsa.EcdsaPublicKey,
                 enforce_freshness: bool = True,
                 workers: Optional[int] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 resume_path: Optional[Union[str, Path]] = None) -> None:
        if user_key.identity != identity:
            raise AccessControlError("user key does not match the identity")
        self.group_id = group_id
        self.identity = identity
        self.enforce_freshness = enforce_freshness
        self._user_key = user_key
        self._pk = public_key
        self._cloud = cloud
        self._admin_key = admin_verification_key
        self.state = ClientGroupState(group_id=group_id)
        self.registry = MetricRegistry()
        # Long-poll rounds retry through the shared policy: both the poll
        # and the snapshot fetch are reads, so UnavailableError *and*
        # injected read timeouts are safe to reissue.
        self.retry = retry_policy or RetryPolicy(
            seed=f"client-retry:{identity}", registry=self.registry)
        self.decrypt_count = 0
        #: Expansions actually computed (cache misses) — the hint cache
        #: keeps this far below :attr:`decrypt_count` under re-key churn.
        self.expansion_count = 0
        self._hints: Dict[Tuple[str, ...], ibbe.DecryptionHint] = {}
        self.hint_cache_cap = self.HINT_CACHE_CAP
        self.registry.gauge("client.hint_cache_size",
                            lambda: len(self._hints))
        #: Per-decrypt latency distribution (Fig. 8b's measured path);
        #: ``snapshot()`` reports p50/p95/p99.
        self._decrypt_seconds = self.registry.histogram(
            "client.decrypt.seconds"
        )
        self._highest_epoch = -1
        # Parallel hint preparation (repro.par).  The hint never involves
        # the user secret key, so the quadratic expansion can run on
        # untrusted worker processes; 1 keeps everything in-process.
        self.workers = workers
        self._pool = None
        self._bootstraps = self.registry.counter(
            "client.snapshot_bootstraps")
        self._resume_loads = self.registry.counter("client.resume_loads")
        self.resume_path = Path(resume_path) if resume_path else None
        if self.resume_path is not None:
            self._load_resume()

    @property
    def group(self) -> PairingGroup:
        return self._pk.group

    # -- synchronisation ---------------------------------------------------------

    def sync(self) -> bool:
        """One long-poll round: ingest directory events, refresh our
        partition record.  Returns True when our partition changed.

        All objects advertised by the poll round are fetched in a single
        ``get_many`` round trip (the client-side counterpart of the
        administrator's batched commit); events are then processed in
        log order against that snapshot.
        """
        with _span("client.sync", group=self.group_id,
                   identity=self.identity):
            changed = self._sync()
            if self.resume_path is not None:
                self._save_resume()
            return changed

    def _sync(self) -> bool:
        bootstrapped = False
        horizon = self._snapshot_horizon()
        if self.state.poll_cursor < horizon:
            # Our cursor points into a compacted (truncated) prefix; the
            # per-event history it references no longer exists.  Load the
            # materialized state directly instead of replaying.
            bootstrapped = self._bootstrap_from_snapshot(horizon)
        events, cursor = self.retry.run(
            lambda: self._cloud.poll_dir(
                group_dir(self.group_id), self.state.poll_cursor
            ),
            label="client.poll",
        )
        self.state.poll_cursor = cursor
        fetch_paths = list(dict.fromkeys(
            event.path for event in events
            if event.kind != "delete"
            and not event.path.endswith("/sealed-gk")
        ))
        objects = self.retry.run(
            lambda: self._cloud.get_many(fetch_paths),
            label="client.fetch",
        ) if fetch_paths else {}
        changed = False
        for event in events:
            if event.kind == "delete":
                if self._is_our_partition_path(event.path):
                    self._clear_membership()
                    changed = True
                continue
            if event.path.endswith("/sealed-gk"):
                # Opaque to everyone but the enclave.
                continue
            obj = objects.get(event.path)
            if obj is None:
                # The object was deleted by a later operation (e.g. a
                # re-partitioning); its delete event follows in the batch.
                continue
            if event.path.endswith("/descriptor"):
                self._ingest_descriptor(obj.data)
                continue
            record = PartitionRecord.verify_and_decode(
                obj.data, self._admin_key
            )
            if self.identity in record.members:
                self.state.record = record
                self.state.record_signed = obj.data
                self.state.partition_id = record.partition_id
                self.state.record_version = obj.version
                self.state.group_key = None  # force re-derivation
                changed = True
            elif (self.state.partition_id == record.partition_id
                  and self.state.record is not None):
                # Our old partition no longer lists us: revoked (or moved —
                # a later event will bring the new partition if moved).
                self._clear_membership()
                changed = True
        return changed or bootstrapped

    def _snapshot_horizon(self) -> int:
        """The store's compaction horizon (0 for stores without one)."""
        accessor = getattr(self._cloud, "snapshot_horizon", None)
        return accessor() if callable(accessor) else 0

    def _bootstrap_from_snapshot(self, horizon: int) -> bool:
        """O(changes) cold start: materialize our view at ``horizon``
        from the descriptor plus *our own* partition record only, instead
        of replaying the compacted event prefix.  Returns True when our
        membership state changed."""
        with _span("client.snapshot_bootstrap", group=self.group_id,
                   identity=self.identity, horizon=horizon):
            self._bootstraps.add()
            try:
                obj = self.retry.run(
                    lambda: self._cloud.get(descriptor_path(self.group_id)),
                    label="client.bootstrap",
                )
            except NotFoundError:
                # The group does not exist at the horizon (deleted, or
                # never created); any membership we remember is stale.
                changed = self.state.record is not None
                self._clear_membership()
                self.state.poll_cursor = max(self.state.poll_cursor,
                                             horizon)
                return changed
            descriptor = self._ingest_descriptor(obj.data)
            pid = descriptor.user_to_partition.get(self.identity)
            if pid is None:
                changed = self.state.record is not None
                self._clear_membership()
                self.state.poll_cursor = max(self.state.poll_cursor,
                                             horizon)
                return changed
            changed = self._install_partition(pid)
            self.state.poll_cursor = max(self.state.poll_cursor, horizon)
            return changed

    def _install_partition(self, pid: int) -> bool:
        """Fetch and install the record for partition ``pid``; a no-op
        when the stored record is byte-identical to the cached one (the
        derived group key then stays valid)."""
        try:
            obj = self.retry.run(
                lambda: self._cloud.get(partition_path(self.group_id, pid)),
                label="client.bootstrap",
            )
        except NotFoundError:
            # Raced with a concurrent commit; its events are past the
            # horizon and the regular poll that follows will catch up.
            return False
        record = PartitionRecord.verify_and_decode(obj.data, self._admin_key)
        if self.identity not in record.members:
            return False
        if (self.state.record is not None
                and self.state.record.payload() == record.payload()):
            self.state.record_version = obj.version
            self.state.record_signed = obj.data
            return False
        self.state.record = record
        self.state.record_signed = obj.data
        self.state.partition_id = record.partition_id
        self.state.record_version = obj.version
        self.state.group_key = None  # force re-derivation
        return True

    def _clear_membership(self) -> None:
        self.state.record = None
        self.state.record_signed = None
        self.state.partition_id = None
        self.state.group_key = None

    def _ingest_descriptor(self, data: bytes) -> GroupDescriptor:
        """Track the signed group epoch for rollback detection."""
        descriptor = GroupDescriptor.verify_and_decode(data, self._admin_key)
        if descriptor.group_id != self.group_id:
            raise AccessControlError("descriptor for a different group")
        if (self.enforce_freshness
                and descriptor.epoch < self._highest_epoch):
            raise StaleMetadataError(
                f"cloud served group epoch {descriptor.epoch} after epoch "
                f"{self._highest_epoch} was observed — possible rollback"
            )
        self._highest_epoch = max(self._highest_epoch, descriptor.epoch)
        return descriptor

    # -- key derivation ------------------------------------------------------------

    def current_group_key(self) -> bytes:
        """Return ``gk``, deriving it from the cached partition record.

        Raises :class:`RevokedError` when the user is in no partition —
        which is exactly the state after a revocation has propagated.
        """
        if self.state.group_key is not None:
            return self.state.group_key
        record = self.state.record
        if record is None:
            raise RevokedError(
                f"user {self.identity!r} has no partition in group "
                f"{self.group_id!r} (revoked or never added)"
            )
        self.state.group_key = self.decrypt_partition(record)
        return self.state.group_key

    def decrypt_partition(self, record: PartitionRecord) -> bytes:
        """The client-side cryptographic path, benchmarked by Fig. 8b:
        IBBE decrypt (quadratic in |p|, amortized by the hint cache) then
        AES envelope unwrap."""
        start = time.perf_counter()
        with _span("client.decrypt", group=self.group_id,
                   partition_size=len(record.members)):
            ciphertext = ibbe.IbbeCiphertext.decode(self.group,
                                                    record.ciphertext)
            hint = self._hint_for(record.members)
            bk = ibbe.decrypt_with_hint(self._pk, self._user_key, hint,
                                        ciphertext)
            self.decrypt_count += 1
            group_key = unwrap_group_key(
                bk.digest(), record.envelope,
                aad=self.group_id.encode("utf-8"),
            )
        self._decrypt_seconds.observe(time.perf_counter() - start)
        return group_key

    def _hint_for(self, members: Tuple[str, ...]) -> ibbe.DecryptionHint:
        key = tuple(members)
        hint = self._hints.get(key)
        if hint is None:
            hint = ibbe.prepare_decryption(
                self._pk, self._user_key, list(members)
            )
            self.expansion_count += 1
            self._cache_hint(key, hint)
        return hint

    def _cache_hint(self, key: Tuple[str, ...],
                    hint: ibbe.DecryptionHint) -> None:
        if len(self._hints) >= self.hint_cache_cap:
            self._hints.pop(next(iter(self._hints)))
        self._hints[key] = hint

    # -- parallel hint preparation (repro.par) -----------------------------------

    def prewarm_hints(self, member_sets) -> int:
        """Precompute decryption hints for many member sets at once.

        A user appearing in several groups (or anticipating partition
        moves) pays one O(|S|²) expansion per set; with ``workers > 1``
        the expansions run on a process pool.  The hint is a function of
        *public* material only (:func:`repro.ibbe.prepare_decryption_public`),
        so no secret ever reaches a worker.  Sets not containing this
        client's identity are skipped.  Returns the number of hints added;
        the cache capacity grows to hold them all.
        """
        from repro.par import WorkerPool
        from repro.par import kernels as par_kernels

        todo = []
        for members in member_sets:
            key = tuple(members)
            if self.identity in key and key not in self._hints:
                todo.append(key)
        if not todo:
            return 0
        if self._pool is None:
            pk, group = self._pk, self.group
            self._pool = WorkerPool(
                self.workers,
                initializer=par_kernels.init_worker,
                initargs=(group.params.name, pk.encode(), True, False),
                inline_initializer=lambda: par_kernels.set_context(group, pk),
                registry=self.registry,
            )
        results = self._pool.run(
            par_kernels.prepare_hint_task,
            [(self.identity, key) for key in todo],
        )
        self.hint_cache_cap = max(self.hint_cache_cap,
                                  len(self._hints) + len(todo))
        from repro.pairing.group import G1Element
        for key, (h_pi_bytes, delta_inverse) in zip(todo, results):
            self._cache_hint(key, ibbe.DecryptionHint(
                identity=self.identity,
                member_fingerprint=key,
                h_pi=G1Element.decode(self.group, h_pi_bytes),
                delta_inverse=delta_inverse,
            ))
        return len(todo)

    def close(self) -> None:
        """Shut down the hint-preparation worker pool, if any."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # -- resume persistence --------------------------------------------------------

    def _save_resume(self) -> None:
        """Persist the sync position atomically (temp + ``os.replace``),
        so a restarted client process resumes in O(changes since last
        sync) instead of replaying from sequence zero."""
        state = self.state
        payload = {
            "group_id": self.group_id,
            "identity": self.identity,
            "poll_cursor": state.poll_cursor,
            "highest_epoch": self._highest_epoch,
            "partition_id": state.partition_id,
            "record_version": state.record_version,
            "record": (
                base64.b64encode(state.record_signed).decode("ascii")
                if state.record_signed is not None else None
            ),
        }
        tmp = self.resume_path.with_name(self.resume_path.name + ".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, self.resume_path)

    def _load_resume(self) -> None:
        """Restore a saved sync position.  The record is re-verified
        against the pinned administrator key, so the resume file is a
        cache, never a trust root; anything malformed, mis-signed or
        belonging to another (group, identity) is discarded and the
        client cold-starts."""
        try:
            payload = json.loads(self.resume_path.read_text("utf-8"))
            if (payload["group_id"] != self.group_id
                    or payload["identity"] != self.identity):
                return
            cursor = int(payload["poll_cursor"])
            epoch = int(payload["highest_epoch"])
            record = None
            version = 0
            if payload.get("record") is not None:
                blob = base64.b64decode(payload["record"].encode("ascii"))
                record = PartitionRecord.verify_and_decode(
                    blob, self._admin_key)
                if (record.group_id != self.group_id
                        or self.identity not in record.members):
                    return
                version = int(payload["record_version"])
        except Exception:
            return
        self.state.poll_cursor = cursor
        self._highest_epoch = max(self._highest_epoch, epoch)
        if record is not None:
            self.state.record = record
            self.state.record_signed = blob
            self.state.partition_id = record.partition_id
            self.state.record_version = version
        self._resume_loads.add()

    # -- internals -------------------------------------------------------------------

    def _is_our_partition_path(self, path: str) -> bool:
        return (
            self.state.partition_id is not None
            and path == f"/{self.group_id}/p{self.state.partition_id}"
        )
