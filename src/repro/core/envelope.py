"""Group-key envelope.

Algorithms 1-3 wrap the 32-byte group key ``gk`` for each partition as
``y_p = AES(SHA-256(bk_p), gk)``; we use AES-256-GCM so clients also detect
corrupted or swapped partition metadata.  The AES key is the digest of the
partition's broadcast key, which only partition members can recompute.
"""

from __future__ import annotations

from repro.crypto.modes import gcm_decrypt, gcm_encrypt
from repro.crypto.rng import Rng
from repro.errors import CryptoError

GROUP_KEY_SIZE = 32
#: nonce + gk + GCM tag
ENVELOPE_SIZE = 12 + GROUP_KEY_SIZE + 16


def wrap_group_key(bk_digest: bytes, group_key: bytes, rng: Rng,
                   aad: bytes = b"") -> bytes:
    """``y = nonce || GCM(SHA-256(bk), gk)`` (fixed size)."""
    if len(bk_digest) != 32:
        raise CryptoError("broadcast-key digest must be 32 bytes")
    if len(group_key) != GROUP_KEY_SIZE:
        raise CryptoError(f"group key must be {GROUP_KEY_SIZE} bytes")
    nonce = rng.random_bytes(12)
    return nonce + gcm_encrypt(bk_digest, nonce, group_key, aad=aad)


def unwrap_group_key(bk_digest: bytes, envelope: bytes,
                     aad: bytes = b"") -> bytes:
    """Recover ``gk``; raises on tampering or a wrong broadcast key."""
    if len(envelope) != ENVELOPE_SIZE:
        raise CryptoError(
            f"envelope must be {ENVELOPE_SIZE} bytes, got {len(envelope)}"
        )
    nonce, body = envelope[:12], envelope[12:]
    return gcm_decrypt(bk_digest, nonce, body, aad=aad)
