"""Compact binary codecs for wire/storage records.

Hand-rolled length-prefixed format (no pickle: objects cross a trust
boundary, and footprint numbers must reflect honest wire sizes for the
metadata-expansion experiments, Fig. 2b / Fig. 7).
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.errors import StorageError


class Writer:
    """Append-only buffer of length-prefixed fields."""

    def __init__(self) -> None:
        self._chunks: List[bytes] = []

    def bytes_field(self, value: bytes) -> "Writer":
        self._chunks.append(struct.pack(">I", len(value)))
        self._chunks.append(value)
        return self

    def str_field(self, value: str) -> "Writer":
        return self.bytes_field(value.encode("utf-8"))

    def u32(self, value: int) -> "Writer":
        if not 0 <= value < 2 ** 32:
            raise StorageError(f"u32 out of range: {value}")
        self._chunks.append(struct.pack(">I", value))
        return self

    def u64(self, value: int) -> "Writer":
        if not 0 <= value < 2 ** 64:
            raise StorageError(f"u64 out of range: {value}")
        self._chunks.append(struct.pack(">Q", value))
        return self

    def str_list(self, values) -> "Writer":
        values = list(values)
        self.u32(len(values))
        for value in values:
            self.str_field(value)
        return self

    def bytes_list(self, values) -> "Writer":
        values = list(values)
        self.u32(len(values))
        for value in values:
            self.bytes_field(value)
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class Reader:
    """Sequential field reader with bounds checking."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def _take(self, n: int) -> bytes:
        if self._offset + n > len(self._data):
            raise StorageError("truncated record")
        chunk = self._data[self._offset:self._offset + n]
        self._offset += n
        return chunk

    def bytes_field(self) -> bytes:
        (length,) = struct.unpack(">I", self._take(4))
        return self._take(length)

    def str_field(self) -> str:
        try:
            return self.bytes_field().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise StorageError("malformed UTF-8 in string field") from exc

    def u32(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack(">Q", self._take(8))[0]

    def str_list(self) -> List[str]:
        return [self.str_field() for _ in range(self.u32())]

    def bytes_list(self) -> List[bytes]:
        return [self.bytes_field() for _ in range(self.u32())]

    def expect_end(self) -> None:
        if self._offset != len(self._data):
            raise StorageError("trailing bytes in record")

    def consumed(self) -> int:
        return self._offset


def split_signed(data: bytes) -> Tuple[bytes, bytes]:
    """Split ``payload || u32-len || signature`` envelope."""
    if len(data) < 4:
        raise StorageError("record too short for a signature envelope")
    (sig_len,) = struct.unpack(">I", data[-4:])
    if sig_len + 4 > len(data):
        raise StorageError("corrupt signature envelope")
    payload = data[:-(sig_len + 4)]
    signature = data[-(sig_len + 4):-4]
    return payload, signature


def join_signed(payload: bytes, signature: bytes) -> bytes:
    return payload + signature + struct.pack(">I", len(signature))
