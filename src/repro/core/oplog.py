"""Hash-chained membership operation log (paper §VIII, third avenue).

The paper suggests certifying blocks of membership-operation logs with
blockchain-like technologies for multi-administrator setups.  This
simplified realization provides the auditability core:

* every membership operation appends a signed entry chained by the hash of
  its predecessor (tamper-evidence);
* entries carry the acting administrator's identity, so a quorum of admins
  can audit each other;
* periodic *checkpoints* sign the chain head, certifying the whole prefix
  (the "block certification" of the paper's suggestion);
* :func:`verify_chain` detects any splice, reorder, retro-edit or foreign
  signature;
* a certified prefix can be *compacted* away
  (:meth:`OperationLog.compact`): the checkpoint becomes the chain's new
  *base* — audits then verify the suffix against the signed base hash
  instead of replaying from genesis, the oplog counterpart of the store's
  snapshot compaction.  The certifying checkpoint is retained so a
  decoded compacted log is still anchored in an administrator signature,
  never in bare bytes.

The log is public metadata — it reveals operations and identities, which
the model already concedes to the cloud (§II).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.serialize import Reader, Writer
from repro.crypto import ecdsa
from repro.crypto.kdf import sha256
from repro.errors import AccessControlError, AuthenticationError, StorageError

GENESIS_HASH = bytes(32)

_OPLOG_MAGIC = b"OLOG1"


@dataclass(frozen=True)
class OpLogEntry:
    index: int
    prev_hash: bytes
    group_id: str
    kind: str          # "create" | "add" | "remove" | "rekey" | "repartition"
    user: str          # affected user ("" for group-wide operations)
    admin_id: str
    timestamp: float
    signature: bytes   # by the acting admin, over the unsigned payload

    def unsigned_payload(self) -> bytes:
        writer = Writer()
        writer.u64(self.index)
        writer.bytes_field(self.prev_hash)
        writer.str_field(self.group_id)
        writer.str_field(self.kind)
        writer.str_field(self.user)
        writer.str_field(self.admin_id)
        writer.u64(round(self.timestamp * 1_000_000))
        return writer.getvalue()

    def entry_hash(self) -> bytes:
        return sha256(self.unsigned_payload() + self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.bytes_field(self.unsigned_payload())
        writer.bytes_field(self.signature)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "OpLogEntry":
        outer = Reader(data)
        payload = outer.bytes_field()
        signature = outer.bytes_field()
        outer.expect_end()
        reader = Reader(payload)
        return cls(
            index=reader.u64(),
            prev_hash=reader.bytes_field(),
            group_id=reader.str_field(),
            kind=reader.str_field(),
            user=reader.str_field(),
            admin_id=reader.str_field(),
            timestamp=reader.u64() / 1_000_000,
            signature=signature,
        )


@dataclass(frozen=True)
class Checkpoint:
    """A certified chain prefix: (up to index, head hash, signer)."""

    up_to_index: int
    head_hash: bytes
    admin_id: str
    signature: bytes

    def unsigned_payload(self) -> bytes:
        writer = Writer()
        writer.u64(self.up_to_index)
        writer.bytes_field(self.head_hash)
        writer.str_field(self.admin_id)
        return writer.getvalue()

    def encode(self) -> bytes:
        writer = Writer()
        writer.bytes_field(self.unsigned_payload())
        writer.bytes_field(self.signature)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Checkpoint":
        outer = Reader(data)
        payload = outer.bytes_field()
        signature = outer.bytes_field()
        outer.expect_end()
        reader = Reader(payload)
        return cls(
            up_to_index=reader.u64(),
            head_hash=reader.bytes_field(),
            admin_id=reader.str_field(),
            signature=signature,
        )


class OperationLog:
    """Append-only, hash-chained, multi-admin operation log."""

    def __init__(self,
                 admin_keys: Dict[str, ecdsa.EcdsaPublicKey]) -> None:
        #: admin_id -> verification key; the membership of this registry is
        #: the trust anchor (it would be fixed at deployment time).
        self._admin_keys = dict(admin_keys)
        self._entries: List[OpLogEntry] = []
        self._checkpoints: List[Checkpoint] = []
        # Compaction base: the chain's verified starting point.  (-1,
        # GENESIS_HASH) means "from genesis"; after compact() it is the
        # certified checkpoint the truncated prefix folded into.
        self._base_index = -1
        self._base_hash = GENESIS_HASH

    @property
    def base_index(self) -> int:
        """Index of the last compacted-away entry (-1 = none)."""
        return self._base_index

    @property
    def base_hash(self) -> bytes:
        return self._base_hash

    @property
    def next_index(self) -> int:
        return (self._entries[-1].index + 1 if self._entries
                else self._base_index + 1)

    # -- appending ------------------------------------------------------------------

    def append(self, group_id: str, kind: str, user: str, admin_id: str,
               signing_key: ecdsa.EcdsaPrivateKey,
               timestamp: Optional[float] = None) -> OpLogEntry:
        if admin_id not in self._admin_keys:
            raise AccessControlError(f"unknown administrator {admin_id!r}")
        prev_hash = (
            self._entries[-1].entry_hash() if self._entries
            else self._base_hash
        )
        raw_ts = timestamp if timestamp is not None else time.time()
        unsigned = OpLogEntry(
            index=self.next_index, prev_hash=prev_hash,
            group_id=group_id, kind=kind, user=user, admin_id=admin_id,
            # Quantized to microseconds so encode/decode round-trips exactly.
            timestamp=round(raw_ts * 1_000_000) / 1_000_000,
            signature=b"",
        )
        signature = signing_key.sign(unsigned.unsigned_payload())
        entry = OpLogEntry(
            index=unsigned.index, prev_hash=unsigned.prev_hash,
            group_id=unsigned.group_id, kind=unsigned.kind,
            user=unsigned.user, admin_id=unsigned.admin_id,
            timestamp=unsigned.timestamp, signature=signature,
        )
        # Verify before accepting — a wrong key must not corrupt the chain.
        self._verify_entry(entry, prev_hash)
        self._entries.append(entry)
        return entry

    def checkpoint(self, admin_id: str,
                   signing_key: ecdsa.EcdsaPrivateKey) -> Checkpoint:
        """Certify the current head (the blockchain-block surrogate)."""
        if admin_id not in self._admin_keys:
            raise AccessControlError(f"unknown administrator {admin_id!r}")
        if not self._entries:
            raise AccessControlError("cannot checkpoint an empty log")
        head = self._entries[-1]
        unsigned = Checkpoint(
            up_to_index=head.index, head_hash=head.entry_hash(),
            admin_id=admin_id, signature=b"",
        )
        checkpoint = Checkpoint(
            up_to_index=unsigned.up_to_index, head_hash=unsigned.head_hash,
            admin_id=admin_id,
            signature=signing_key.sign(unsigned.unsigned_payload()),
        )
        self._checkpoints.append(checkpoint)
        return checkpoint

    # -- verification ------------------------------------------------------------------

    def verify_chain(self, entries: Optional[Sequence[OpLogEntry]] = None,
                     ) -> None:
        """Chain audit; raises :class:`AuthenticationError` on any break
        (splice, reorder, retro-edit, unknown admin, bad signature).

        The log's own entries (and any explicit sequence that starts past
        the base) verify against the compaction base; an explicit
        sequence starting at index 0 verifies from genesis, so exported
        full histories remain independently auditable."""
        entries = self._entries if entries is None else list(entries)
        if entries and entries[0].index == 0:
            prev_hash, start = GENESIS_HASH, 0
        else:
            prev_hash, start = self._base_hash, self._base_index + 1
        for position, entry in enumerate(entries):
            if entry.index != start + position:
                raise AuthenticationError(
                    f"log index gap at position {position}"
                )
            self._verify_entry(entry, prev_hash)
            prev_hash = entry.entry_hash()

    def verify_checkpoint(self, checkpoint: Checkpoint) -> None:
        key = self._admin_keys.get(checkpoint.admin_id)
        if key is None:
            raise AuthenticationError(
                f"checkpoint by unknown admin {checkpoint.admin_id!r}"
            )
        unsigned = Checkpoint(
            up_to_index=checkpoint.up_to_index,
            head_hash=checkpoint.head_hash,
            admin_id=checkpoint.admin_id, signature=b"",
        )
        key.verify(unsigned.unsigned_payload(), checkpoint.signature)
        if checkpoint.up_to_index == self._base_index:
            # Certifies exactly the compacted prefix; check against the
            # retained base hash (the entry itself is gone).
            if checkpoint.head_hash != self._base_hash:
                raise AuthenticationError(
                    "checkpoint hash does not match the compaction base"
                )
            return
        if checkpoint.up_to_index < self._base_index:
            raise AuthenticationError(
                "checkpoint inside the compacted prefix"
            )
        if checkpoint.up_to_index >= self.next_index:
            raise AuthenticationError("checkpoint beyond the log head")
        position = checkpoint.up_to_index - self._base_index - 1
        actual = self._entries[position].entry_hash()
        if actual != checkpoint.head_hash:
            raise AuthenticationError("checkpoint hash does not match log")

    # -- compaction ---------------------------------------------------------------

    def compact(self, checkpoint: Checkpoint) -> int:
        """Drop every entry the (verified) ``checkpoint`` certifies.

        The checkpoint becomes the new chain base; audits then start from
        its signed head hash.  Compacting at or below the current base is
        a no-op returning 0, so repeated compaction with the same
        checkpoint is idempotent.  Returns the number of entries dropped.
        """
        self.verify_checkpoint(checkpoint)
        if checkpoint.up_to_index <= self._base_index:
            return 0
        dropped = checkpoint.up_to_index - self._base_index
        self._entries = self._entries[dropped:]
        self._base_index = checkpoint.up_to_index
        self._base_hash = checkpoint.head_hash
        # Checkpoints inside the dropped prefix can no longer be checked
        # against anything; the certifying one is retained as the trust
        # anchor for the new base.
        self._checkpoints = [
            c for c in self._checkpoints
            if c.up_to_index >= self._base_index
        ]
        if checkpoint not in self._checkpoints:
            self._checkpoints.insert(0, checkpoint)
        return dropped

    # -- serialization ------------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize base, live entries and retained checkpoints (the
        suspend/resume companion of :meth:`compact`: an audit log survives
        administrator restarts without replaying compacted history)."""
        writer = Writer()
        writer.bytes_field(_OPLOG_MAGIC)
        writer.u64(self._base_index + 1)   # +1 keeps the genesis base
        writer.bytes_field(self._base_hash)   # unsigned-representable
        writer.bytes_list([entry.encode() for entry in self._entries])
        writer.bytes_list([cp.encode() for cp in self._checkpoints])
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes,
               admin_keys: Dict[str, ecdsa.EcdsaPublicKey],
               ) -> "OperationLog":
        """Decode and fully re-verify a serialized log.

        A non-genesis base is only accepted when a retained checkpoint
        (signed by a known administrator) certifies it — the bytes of the
        base hash alone are never trusted."""
        reader = Reader(data)
        if reader.bytes_field() != _OPLOG_MAGIC:
            raise StorageError("not an operation log")
        base_index = reader.u64() - 1
        base_hash = reader.bytes_field()
        entry_blobs = reader.bytes_list()
        checkpoint_blobs = reader.bytes_list()
        reader.expect_end()
        log = cls(admin_keys)
        log._base_index = base_index
        log._base_hash = base_hash
        log._entries = [OpLogEntry.decode(blob) for blob in entry_blobs]
        log._checkpoints = [Checkpoint.decode(blob)
                            for blob in checkpoint_blobs]
        log.verify_chain()
        for checkpoint in log._checkpoints:
            log.verify_checkpoint(checkpoint)
        if base_index >= 0 and not any(
            c.up_to_index == base_index and c.head_hash == base_hash
            for c in log._checkpoints
        ):
            raise AuthenticationError(
                "compacted log without a certifying checkpoint"
            )
        return log

    def _verify_entry(self, entry: OpLogEntry, prev_hash: bytes) -> None:
        if entry.prev_hash != prev_hash:
            raise AuthenticationError(
                f"broken hash chain at index {entry.index}"
            )
        key = self._admin_keys.get(entry.admin_id)
        if key is None:
            raise AuthenticationError(
                f"entry {entry.index} signed by unknown admin "
                f"{entry.admin_id!r}"
            )
        try:
            key.verify(entry.unsigned_payload(), entry.signature)
        except AuthenticationError as exc:
            raise AuthenticationError(
                f"entry {entry.index} has an invalid signature"
            ) from exc

    # -- accessors -----------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[OpLogEntry]:
        return list(self._entries)

    def checkpoints(self) -> List[Checkpoint]:
        return list(self._checkpoints)


class LoggedAdministrator:
    """A :class:`GroupAdministrator` decorated with op-log appends.

    With ``checkpoint_every=N`` the decorator certifies the chain head
    after every N logged operations; ``compact_on_checkpoint=True``
    additionally folds the certified prefix into the base, bounding the
    live log at N entries — the audit-log analogue of the store's
    ``compact_every`` policy.
    """

    def __init__(self, admin, log: OperationLog, admin_id: str,
                 signing_key: ecdsa.EcdsaPrivateKey,
                 checkpoint_every: Optional[int] = None,
                 compact_on_checkpoint: bool = False) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise AccessControlError(
                "checkpoint_every must be a positive interval")
        self.admin = admin
        self.log = log
        self.admin_id = admin_id
        self._signing_key = signing_key
        self.checkpoint_every = checkpoint_every
        self.compact_on_checkpoint = compact_on_checkpoint
        self._since_checkpoint = 0

    def _record(self, group_id: str, kind: str, user: str) -> None:
        self.log.append(group_id, kind, user, self.admin_id,
                        self._signing_key)
        if self.checkpoint_every is None:
            return
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.checkpoint_every:
            self._since_checkpoint = 0
            checkpoint = self.log.checkpoint(self.admin_id,
                                             self._signing_key)
            if self.compact_on_checkpoint:
                self.log.compact(checkpoint)

    def create_group(self, group_id: str, members) -> None:
        self.admin.create_group(group_id, members)
        self._record(group_id, "create", "")

    def add_user(self, group_id: str, user: str) -> None:
        self.admin.add_user(group_id, user)
        self._record(group_id, "add", user)

    def remove_user(self, group_id: str, user: str) -> None:
        self.admin.remove_user(group_id, user)
        self._record(group_id, "remove", user)

    def rekey(self, group_id: str) -> None:
        self.admin.rekey(group_id)
        self._record(group_id, "rekey", "")
