"""Hash-chained membership operation log (paper §VIII, third avenue).

The paper suggests certifying blocks of membership-operation logs with
blockchain-like technologies for multi-administrator setups.  This
simplified realization provides the auditability core:

* every membership operation appends a signed entry chained by the hash of
  its predecessor (tamper-evidence);
* entries carry the acting administrator's identity, so a quorum of admins
  can audit each other;
* periodic *checkpoints* sign the chain head, certifying the whole prefix
  (the "block certification" of the paper's suggestion);
* :func:`verify_chain` detects any splice, reorder, retro-edit or foreign
  signature.

The log is public metadata — it reveals operations and identities, which
the model already concedes to the cloud (§II).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.serialize import Reader, Writer
from repro.crypto import ecdsa
from repro.crypto.kdf import sha256
from repro.errors import AccessControlError, AuthenticationError

GENESIS_HASH = bytes(32)


@dataclass(frozen=True)
class OpLogEntry:
    index: int
    prev_hash: bytes
    group_id: str
    kind: str          # "create" | "add" | "remove" | "rekey" | "repartition"
    user: str          # affected user ("" for group-wide operations)
    admin_id: str
    timestamp: float
    signature: bytes   # by the acting admin, over the unsigned payload

    def unsigned_payload(self) -> bytes:
        writer = Writer()
        writer.u64(self.index)
        writer.bytes_field(self.prev_hash)
        writer.str_field(self.group_id)
        writer.str_field(self.kind)
        writer.str_field(self.user)
        writer.str_field(self.admin_id)
        writer.u64(round(self.timestamp * 1_000_000))
        return writer.getvalue()

    def entry_hash(self) -> bytes:
        return sha256(self.unsigned_payload() + self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.bytes_field(self.unsigned_payload())
        writer.bytes_field(self.signature)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "OpLogEntry":
        outer = Reader(data)
        payload = outer.bytes_field()
        signature = outer.bytes_field()
        outer.expect_end()
        reader = Reader(payload)
        return cls(
            index=reader.u64(),
            prev_hash=reader.bytes_field(),
            group_id=reader.str_field(),
            kind=reader.str_field(),
            user=reader.str_field(),
            admin_id=reader.str_field(),
            timestamp=reader.u64() / 1_000_000,
            signature=signature,
        )


@dataclass(frozen=True)
class Checkpoint:
    """A certified chain prefix: (up to index, head hash, signer)."""

    up_to_index: int
    head_hash: bytes
    admin_id: str
    signature: bytes

    def unsigned_payload(self) -> bytes:
        writer = Writer()
        writer.u64(self.up_to_index)
        writer.bytes_field(self.head_hash)
        writer.str_field(self.admin_id)
        return writer.getvalue()


class OperationLog:
    """Append-only, hash-chained, multi-admin operation log."""

    def __init__(self,
                 admin_keys: Dict[str, ecdsa.EcdsaPublicKey]) -> None:
        #: admin_id -> verification key; the membership of this registry is
        #: the trust anchor (it would be fixed at deployment time).
        self._admin_keys = dict(admin_keys)
        self._entries: List[OpLogEntry] = []
        self._checkpoints: List[Checkpoint] = []

    # -- appending ------------------------------------------------------------------

    def append(self, group_id: str, kind: str, user: str, admin_id: str,
               signing_key: ecdsa.EcdsaPrivateKey,
               timestamp: Optional[float] = None) -> OpLogEntry:
        if admin_id not in self._admin_keys:
            raise AccessControlError(f"unknown administrator {admin_id!r}")
        prev_hash = (
            self._entries[-1].entry_hash() if self._entries else GENESIS_HASH
        )
        raw_ts = timestamp if timestamp is not None else time.time()
        unsigned = OpLogEntry(
            index=len(self._entries), prev_hash=prev_hash,
            group_id=group_id, kind=kind, user=user, admin_id=admin_id,
            # Quantized to microseconds so encode/decode round-trips exactly.
            timestamp=round(raw_ts * 1_000_000) / 1_000_000,
            signature=b"",
        )
        signature = signing_key.sign(unsigned.unsigned_payload())
        entry = OpLogEntry(
            index=unsigned.index, prev_hash=unsigned.prev_hash,
            group_id=unsigned.group_id, kind=unsigned.kind,
            user=unsigned.user, admin_id=unsigned.admin_id,
            timestamp=unsigned.timestamp, signature=signature,
        )
        # Verify before accepting — a wrong key must not corrupt the chain.
        self._verify_entry(entry, prev_hash)
        self._entries.append(entry)
        return entry

    def checkpoint(self, admin_id: str,
                   signing_key: ecdsa.EcdsaPrivateKey) -> Checkpoint:
        """Certify the current head (the blockchain-block surrogate)."""
        if admin_id not in self._admin_keys:
            raise AccessControlError(f"unknown administrator {admin_id!r}")
        if not self._entries:
            raise AccessControlError("cannot checkpoint an empty log")
        head = self._entries[-1]
        unsigned = Checkpoint(
            up_to_index=head.index, head_hash=head.entry_hash(),
            admin_id=admin_id, signature=b"",
        )
        checkpoint = Checkpoint(
            up_to_index=unsigned.up_to_index, head_hash=unsigned.head_hash,
            admin_id=admin_id,
            signature=signing_key.sign(unsigned.unsigned_payload()),
        )
        self._checkpoints.append(checkpoint)
        return checkpoint

    # -- verification ------------------------------------------------------------------

    def verify_chain(self, entries: Optional[Sequence[OpLogEntry]] = None,
                     ) -> None:
        """Full-chain audit; raises :class:`AuthenticationError` on any
        break (splice, reorder, retro-edit, unknown admin, bad signature)."""
        entries = self._entries if entries is None else list(entries)
        prev_hash = GENESIS_HASH
        for position, entry in enumerate(entries):
            if entry.index != position:
                raise AuthenticationError(
                    f"log index gap at position {position}"
                )
            self._verify_entry(entry, prev_hash)
            prev_hash = entry.entry_hash()

    def verify_checkpoint(self, checkpoint: Checkpoint) -> None:
        key = self._admin_keys.get(checkpoint.admin_id)
        if key is None:
            raise AuthenticationError(
                f"checkpoint by unknown admin {checkpoint.admin_id!r}"
            )
        unsigned = Checkpoint(
            up_to_index=checkpoint.up_to_index,
            head_hash=checkpoint.head_hash,
            admin_id=checkpoint.admin_id, signature=b"",
        )
        key.verify(unsigned.unsigned_payload(), checkpoint.signature)
        if checkpoint.up_to_index >= len(self._entries):
            raise AuthenticationError("checkpoint beyond the log head")
        actual = self._entries[checkpoint.up_to_index].entry_hash()
        if actual != checkpoint.head_hash:
            raise AuthenticationError("checkpoint hash does not match log")

    def _verify_entry(self, entry: OpLogEntry, prev_hash: bytes) -> None:
        if entry.prev_hash != prev_hash:
            raise AuthenticationError(
                f"broken hash chain at index {entry.index}"
            )
        key = self._admin_keys.get(entry.admin_id)
        if key is None:
            raise AuthenticationError(
                f"entry {entry.index} signed by unknown admin "
                f"{entry.admin_id!r}"
            )
        try:
            key.verify(entry.unsigned_payload(), entry.signature)
        except AuthenticationError as exc:
            raise AuthenticationError(
                f"entry {entry.index} has an invalid signature"
            ) from exc

    # -- accessors -----------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[OpLogEntry]:
        return list(self._entries)

    def checkpoints(self) -> List[Checkpoint]:
        return list(self._checkpoints)


class LoggedAdministrator:
    """A :class:`GroupAdministrator` decorated with op-log appends."""

    def __init__(self, admin, log: OperationLog, admin_id: str,
                 signing_key: ecdsa.EcdsaPrivateKey) -> None:
        self.admin = admin
        self.log = log
        self.admin_id = admin_id
        self._signing_key = signing_key

    def create_group(self, group_id: str, members) -> None:
        self.admin.create_group(group_id, members)
        self.log.append(group_id, "create", "", self.admin_id,
                        self._signing_key)

    def add_user(self, group_id: str, user: str) -> None:
        self.admin.add_user(group_id, user)
        self.log.append(group_id, "add", user, self.admin_id,
                        self._signing_key)

    def remove_user(self, group_id: str, user: str) -> None:
        self.admin.remove_user(group_id, user)
        self.log.append(group_id, "remove", user, self.admin_id,
                        self._signing_key)

    def rekey(self, group_id: str) -> None:
        self.admin.rekey(group_id)
        self.log.append(group_id, "rekey", "", self.admin_id,
                        self._signing_key)
