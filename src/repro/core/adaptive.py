"""Dynamic partition sizing (paper §VIII, first future-work avenue).

§IV-C describes the trade-off: small partitions make user decryption fast
(quadratic in the partition size) but multiply the administrator's per-
revocation work (one O(1) re-key *per partition*); large partitions do the
reverse.  The paper fixes the size ahead of time; this extension picks it
from the observed workload.

Cost model per unit time, for group size ``n``, partition size ``m``,
revocation rate ``r`` (ops/s) and decrypt rate ``d`` (ops/s)::

    cost(m) = r · c_rekey · (n / m)  +  d · c_decrypt · m²

Minimising over m gives the closed form::

    m* = cbrt( r · c_rekey · n / (2 · d · c_decrypt) )

The coefficients ``c_rekey`` (seconds per partition re-key) and
``c_decrypt`` (seconds per member per member — the quadratic constant) are
calibrated from measurements or left at defaults estimated from the
microbenchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.admin import GroupAdministrator
from repro.errors import ParameterError


@dataclass(frozen=True)
class CoefficientFit:
    """One calibrated cost coefficient with its fit diagnostics.

    ``coefficient`` is the slope of a least-squares line through the
    measured ``(x, seconds)`` samples — ``x`` is partition *count* for
    the re-key fit and partition size *squared* for the decrypt fit, so
    the slope is directly ``c_rekey`` (seconds per partition re-key) or
    ``c_decrypt`` (seconds per member²).  ``intercept`` absorbs the
    fixed per-operation overhead (commit, signing, dispatch) so it does
    not pollute the marginal cost, and ``residual`` is the RMS error of
    the fit — large residuals mean the measurements do not follow the
    assumed cost model and the calibration should not be trusted.
    """

    coefficient: float
    intercept: float
    residual: float
    samples: Tuple[Tuple[float, float], ...]

    def describe(self) -> str:
        return (f"{self.coefficient:.3e} (intercept {self.intercept:.3e}, "
                f"rms residual {self.residual:.3e}, "
                f"{len(self.samples)} samples)")


def fit_linear_cost(samples: Sequence[Tuple[float, float]]) -> CoefficientFit:
    """Least-squares line ``seconds = coefficient·x + intercept``.

    The workhorse of empirical calibration: feed it ``(partition_count,
    remove_user_seconds)`` pairs to recover ``c_rekey``, or
    ``(partition_size², decrypt_seconds)`` pairs to recover
    ``c_decrypt``.  Requires at least two distinct ``x`` values; the
    slope is clamped at 0 (a negative marginal cost is measurement
    noise, not physics).
    """
    if len(samples) < 2:
        raise ParameterError("calibration needs at least 2 samples")
    xs = [float(x) for x, _ in samples]
    ys = [float(y) for _, y in samples]
    n = float(len(samples))
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x <= 0.0:
        raise ParameterError(
            "calibration samples must span at least two distinct sizes")
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = max(0.0, cov / var_x)
    intercept = mean_y - slope * mean_x
    residual = math.sqrt(sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)) / n)
    return CoefficientFit(
        coefficient=slope, intercept=intercept, residual=residual,
        samples=tuple((float(x), float(y)) for x, y in samples),
    )


@dataclass(frozen=True)
class CutoffPoint:
    """The recommended partition size at one group size, next to the
    paper's fixed ``sqrt(n)`` rule for comparison."""

    group_size: int
    optimal: int
    sqrt_rule: int
    #: ``optimal / sqrt(n)`` — 1.0 means the measured workload agrees
    #: with the paper's cutoff; >1 favours larger partitions (rekey-
    #: dominated), <1 smaller ones (decrypt-dominated).
    ratio: float


@dataclass(frozen=True)
class AdaptivePolicy:
    """Closed-form optimal partition size with hysteresis."""

    c_rekey: float = 5e-3        # seconds per partition re-key
    c_decrypt: float = 2e-7      # seconds per (partition member)²
    min_capacity: int = 8
    max_capacity: int = 4000
    #: Re-partitioning is only recommended when the optimum differs from
    #: the current size by more than this factor (avoids thrashing).
    hysteresis: float = 1.5

    def optimal_capacity(self, group_size: int, revocation_rate: float,
                         decrypt_rate: float) -> int:
        """``m*`` for the given workload mix."""
        if group_size < 1:
            raise ParameterError("group size must be positive")
        if revocation_rate < 0 or decrypt_rate < 0:
            raise ParameterError("rates must be non-negative")
        if decrypt_rate == 0:
            # Nobody decrypts: make partitions as large as allowed.
            return min(self.max_capacity, max(self.min_capacity, group_size))
        if revocation_rate == 0:
            # Nobody is revoked: minimize decrypt cost.
            return self.min_capacity
        optimum = (
            revocation_rate * self.c_rekey * group_size
            / (2.0 * decrypt_rate * self.c_decrypt)
        ) ** (1.0 / 3.0)
        clamped = int(round(optimum))
        return max(self.min_capacity, min(self.max_capacity, clamped))

    def should_repartition(self, current_capacity: int,
                           optimal: int) -> bool:
        """True when the optimum has drifted past the hysteresis band.

        The band is closed: an optimum at *exactly* ``hysteresis ×``
        (or ``1/hysteresis ×``) the current size does **not** trigger —
        re-partitioning recreates the whole group, so the boundary case
        stays put (noise straddling the boundary must not thrash).
        """
        if current_capacity <= 0:
            return True
        ratio = optimal / current_capacity
        return ratio > self.hysteresis or ratio < 1.0 / self.hysteresis

    @classmethod
    def calibrated(cls, rekey_fit: CoefficientFit,
                   decrypt_fit: CoefficientFit,
                   **overrides) -> "AdaptivePolicy":
        """A policy whose coefficients come from measurement, not the
        microbenchmark defaults (see :func:`fit_linear_cost`).  Keyword
        overrides pass through to the dataclass (``min_capacity`` etc.)."""
        if rekey_fit.coefficient <= 0.0 or decrypt_fit.coefficient <= 0.0:
            raise ParameterError(
                "calibrated coefficients must be positive — the fit "
                "found no marginal cost, so the measurements are noise")
        return cls(c_rekey=rekey_fit.coefficient,
                   c_decrypt=decrypt_fit.coefficient, **overrides)

    def with_capacity_bounds(self, min_capacity: int,
                             max_capacity: int) -> "AdaptivePolicy":
        """The same coefficients under different clamps (the calibration
        report evaluates the cutoff curve unclamped)."""
        return replace(self, min_capacity=min_capacity,
                       max_capacity=max_capacity)

    def cutoff_curve(self, group_sizes: Sequence[int],
                     revocation_rate: float, decrypt_rate: float,
                     ) -> List[CutoffPoint]:
        """The recommended cutoff ``m*(n)`` across group sizes, against
        the paper's ``sqrt(n)`` rule (§IV-C fixes ``m = sqrt(n)`` ahead
        of time; this is the empirical re-derivation of that choice
        for a *measured* workload mix)."""
        curve: List[CutoffPoint] = []
        for n in group_sizes:
            optimal = self.optimal_capacity(n, revocation_rate, decrypt_rate)
            sqrt_rule = max(1, int(round(math.sqrt(n))))
            curve.append(CutoffPoint(
                group_size=n, optimal=optimal, sqrt_rule=sqrt_rule,
                ratio=optimal / sqrt_rule,
            ))
        return curve


@dataclass
class WorkloadWindow:
    """Sliding counters of observed operations for one group."""

    revocations: int = 0
    decrypts: int = 0
    window_ops: int = 0

    def record_revocation(self) -> None:
        self.revocations += 1
        self.window_ops += 1

    def record_add(self) -> None:
        self.window_ops += 1

    def record_decrypt(self) -> None:
        self.decrypts += 1

    def reset(self) -> None:
        self.revocations = 0
        self.decrypts = 0
        self.window_ops = 0


@dataclass(frozen=True)
class ReviewPoint:
    """One adaptation review: what the policy saw and what it decided.

    The sequence of review points for a group is its *partition-size
    trajectory* — the scale suite (:mod:`repro.workloads.scale`) records
    it to show how the adaptive cutoff converges (or thrashes) under a
    realistic workload mix.
    """

    group_id: str
    group_size: int
    revocation_rate: float
    decrypt_rate: float
    current_capacity: int
    optimal_capacity: int
    repartitioned: bool

    def summary(self) -> dict:
        return {
            "group": self.group_id,
            "size": self.group_size,
            "rev_rate": round(self.revocation_rate, 4),
            "dec_rate": round(self.decrypt_rate, 4),
            "capacity": self.current_capacity,
            "optimal": self.optimal_capacity,
            "repartitioned": self.repartitioned,
        }


class AdaptiveAdministrator:
    """Wraps a :class:`GroupAdministrator` with workload-driven sizing.

    Clients report decryptions through :meth:`record_decrypt` (in a real
    deployment, a coarse counter piggybacked on long-poll requests);
    membership operations are observed directly.  Every ``review_every``
    membership operations the policy re-evaluates the partition size and
    triggers a re-partition when warranted.  Every review is appended to
    :attr:`trajectory` (bounded), repartition or not, so the adaptation
    path can be inspected after a run.
    """

    #: Trajectory entries kept (FIFO) — bounds memory on soak runs.
    MAX_TRAJECTORY = 4096

    def __init__(self, admin: GroupAdministrator,
                 policy: Optional[AdaptivePolicy] = None,
                 review_every: int = 64) -> None:
        if review_every < 1:
            raise ParameterError("review_every must be >= 1")
        self.admin = admin
        self.policy = policy or AdaptivePolicy()
        self.review_every = review_every
        self._windows: Dict[str, WorkloadWindow] = {}
        self.resizes = 0
        self.trajectory: List[ReviewPoint] = []

    # -- pass-through operations with observation --------------------------------

    def create_group(self, group_id: str, members) -> None:
        self.admin.create_group(group_id, members)
        self._windows[group_id] = WorkloadWindow()

    def add_user(self, group_id: str, user: str) -> None:
        self.admin.add_user(group_id, user)
        window = self._window(group_id)
        window.record_add()
        self._maybe_review(group_id)

    def remove_user(self, group_id: str, user: str) -> None:
        self.admin.remove_user(group_id, user)
        window = self._window(group_id)
        window.record_revocation()
        self._maybe_review(group_id)

    def record_decrypt(self, group_id: str, count: int = 1) -> None:
        window = self._window(group_id)
        for _ in range(count):
            window.record_decrypt()

    # -- the adaptation loop ---------------------------------------------------------

    def _maybe_review(self, group_id: str) -> None:
        window = self._window(group_id)
        if window.window_ops < self.review_every:
            return
        state = self.admin.group_state(group_id)
        group_size = len(state.table)
        if group_size == 0:
            window.reset()
            return
        # Rates are per membership operation; the shared factor cancels in
        # the ratio inside the cube root.
        revocation_rate = window.revocations / max(window.window_ops, 1)
        decrypt_rate = window.decrypts / max(window.window_ops, 1)
        optimal = self.policy.optimal_capacity(
            group_size, revocation_rate, max(decrypt_rate, 1e-6)
        )
        repartitioned = self.policy.should_repartition(
            state.table.capacity, optimal)
        point = ReviewPoint(
            group_id=group_id, group_size=group_size,
            revocation_rate=revocation_rate, decrypt_rate=decrypt_rate,
            current_capacity=state.table.capacity,
            optimal_capacity=optimal, repartitioned=repartitioned,
        )
        if len(self.trajectory) >= self.MAX_TRAJECTORY:
            del self.trajectory[0]
        self.trajectory.append(point)
        if repartitioned:
            self.admin.repartition(group_id, new_capacity=optimal)
            self.resizes += 1
        window.reset()

    def _window(self, group_id: str) -> WorkloadWindow:
        window = self._windows.get(group_id)
        if window is None:
            window = WorkloadWindow()
            self._windows[group_id] = window
        return window
