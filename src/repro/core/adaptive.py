"""Dynamic partition sizing (paper §VIII, first future-work avenue).

§IV-C describes the trade-off: small partitions make user decryption fast
(quadratic in the partition size) but multiply the administrator's per-
revocation work (one O(1) re-key *per partition*); large partitions do the
reverse.  The paper fixes the size ahead of time; this extension picks it
from the observed workload.

Cost model per unit time, for group size ``n``, partition size ``m``,
revocation rate ``r`` (ops/s) and decrypt rate ``d`` (ops/s)::

    cost(m) = r · c_rekey · (n / m)  +  d · c_decrypt · m²

Minimising over m gives the closed form::

    m* = cbrt( r · c_rekey · n / (2 · d · c_decrypt) )

The coefficients ``c_rekey`` (seconds per partition re-key) and
``c_decrypt`` (seconds per member per member — the quadratic constant) are
calibrated from measurements or left at defaults estimated from the
microbenchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.admin import GroupAdministrator
from repro.errors import ParameterError


@dataclass(frozen=True)
class AdaptivePolicy:
    """Closed-form optimal partition size with hysteresis."""

    c_rekey: float = 5e-3        # seconds per partition re-key
    c_decrypt: float = 2e-7      # seconds per (partition member)²
    min_capacity: int = 8
    max_capacity: int = 4000
    #: Re-partitioning is only recommended when the optimum differs from
    #: the current size by more than this factor (avoids thrashing).
    hysteresis: float = 1.5

    def optimal_capacity(self, group_size: int, revocation_rate: float,
                         decrypt_rate: float) -> int:
        """``m*`` for the given workload mix."""
        if group_size < 1:
            raise ParameterError("group size must be positive")
        if revocation_rate < 0 or decrypt_rate < 0:
            raise ParameterError("rates must be non-negative")
        if decrypt_rate == 0:
            # Nobody decrypts: make partitions as large as allowed.
            return min(self.max_capacity, max(self.min_capacity, group_size))
        if revocation_rate == 0:
            # Nobody is revoked: minimize decrypt cost.
            return self.min_capacity
        optimum = (
            revocation_rate * self.c_rekey * group_size
            / (2.0 * decrypt_rate * self.c_decrypt)
        ) ** (1.0 / 3.0)
        clamped = int(round(optimum))
        return max(self.min_capacity, min(self.max_capacity, clamped))

    def should_repartition(self, current_capacity: int,
                           optimal: int) -> bool:
        if current_capacity <= 0:
            return True
        ratio = optimal / current_capacity
        return ratio > self.hysteresis or ratio < 1.0 / self.hysteresis


@dataclass
class WorkloadWindow:
    """Sliding counters of observed operations for one group."""

    revocations: int = 0
    decrypts: int = 0
    window_ops: int = 0

    def record_revocation(self) -> None:
        self.revocations += 1
        self.window_ops += 1

    def record_add(self) -> None:
        self.window_ops += 1

    def record_decrypt(self) -> None:
        self.decrypts += 1

    def reset(self) -> None:
        self.revocations = 0
        self.decrypts = 0
        self.window_ops = 0


class AdaptiveAdministrator:
    """Wraps a :class:`GroupAdministrator` with workload-driven sizing.

    Clients report decryptions through :meth:`record_decrypt` (in a real
    deployment, a coarse counter piggybacked on long-poll requests);
    membership operations are observed directly.  Every ``review_every``
    membership operations the policy re-evaluates the partition size and
    triggers a re-partition when warranted.
    """

    def __init__(self, admin: GroupAdministrator,
                 policy: Optional[AdaptivePolicy] = None,
                 review_every: int = 64) -> None:
        if review_every < 1:
            raise ParameterError("review_every must be >= 1")
        self.admin = admin
        self.policy = policy or AdaptivePolicy()
        self.review_every = review_every
        self._windows: Dict[str, WorkloadWindow] = {}
        self.resizes = 0

    # -- pass-through operations with observation --------------------------------

    def create_group(self, group_id: str, members) -> None:
        self.admin.create_group(group_id, members)
        self._windows[group_id] = WorkloadWindow()

    def add_user(self, group_id: str, user: str) -> None:
        self.admin.add_user(group_id, user)
        window = self._window(group_id)
        window.record_add()
        self._maybe_review(group_id)

    def remove_user(self, group_id: str, user: str) -> None:
        self.admin.remove_user(group_id, user)
        window = self._window(group_id)
        window.record_revocation()
        self._maybe_review(group_id)

    def record_decrypt(self, group_id: str, count: int = 1) -> None:
        window = self._window(group_id)
        for _ in range(count):
            window.record_decrypt()

    # -- the adaptation loop ---------------------------------------------------------

    def _maybe_review(self, group_id: str) -> None:
        window = self._window(group_id)
        if window.window_ops < self.review_every:
            return
        state = self.admin.group_state(group_id)
        group_size = len(state.table)
        if group_size == 0:
            window.reset()
            return
        # Rates are per membership operation; the shared factor cancels in
        # the ratio inside the cube root.
        revocation_rate = window.revocations / max(window.window_ops, 1)
        decrypt_rate = window.decrypts / max(window.window_ops, 1)
        optimal = self.policy.optimal_capacity(
            group_size, revocation_rate, max(decrypt_rate, 1e-6)
        )
        if self.policy.should_repartition(state.table.capacity, optimal):
            self.admin.repartition(group_id, new_capacity=optimal)
            self.resizes += 1
        window.reset()

    def _window(self, group_id: str) -> WorkloadWindow:
        window = self._windows.get(group_id)
        if window is None:
            window = WorkloadWindow()
            self._windows[group_id] = window
        return window
