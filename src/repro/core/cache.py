"""Local in-memory caches (paper §V-A).

Both roles cache metadata to avoid cloud round trips: administrators keep
the authoritative partition state of every group they manage ("they can
locally cache it and thus bypass the cost of accessing the cloud",
§IV-C); clients keep their own partition record and derived group key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.metadata import PartitionRecord
from repro.core.partitions import PartitionTable
from repro.obs.metrics import MetricRegistry


@dataclass
class AdminGroupState:
    """Administrator-side authoritative state of one group."""

    group_id: str
    table: PartitionTable
    records: Dict[int, PartitionRecord] = field(default_factory=dict)
    sealed_group_key: bytes = b""
    epoch: int = 0
    #: Cloud version of the group descriptor — the optimistic-concurrency
    #: token for multi-administrator deployments (conditional puts).
    descriptor_version: int = 0
    #: Store sequence this state is current through — the cursor
    #: :meth:`~repro.core.admin.GroupAdministrator.sync_group` polls
    #: from, making a refresh O(changes) instead of a full reload.
    sync_cursor: int = 0

    def crypto_footprint(self) -> int:
        """Cryptographic metadata bytes across partitions (Fig. 7 metric)."""
        return sum(r.crypto_bytes() for r in self.records.values())

    def total_footprint(self) -> int:
        """Full serialized metadata size including member lists."""
        return sum(len(r.payload()) for r in self.records.values())


class AdminCache:
    """All groups managed by one administrator.

    Hit/miss accounting lands in the supplied ``repro.obs`` registry
    (``admin.cache_hits`` / ``admin.cache_misses``) so cache
    effectiveness shows up next to the other ``admin.*`` metrics; a
    private registry is created when none is shared.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self._groups: Dict[str, AdminGroupState] = {}
        self.registry = registry if registry is not None else MetricRegistry()
        self._hits = self.registry.counter("admin.cache_hits")
        self._misses = self.registry.counter("admin.cache_misses")
        self.registry.gauge("admin.cached_groups", lambda: len(self._groups))

    def put(self, state: AdminGroupState) -> None:
        self._groups[state.group_id] = state

    def get(self, group_id: str) -> Optional[AdminGroupState]:
        state = self._groups.get(group_id)
        if state is None:
            self._misses.add()
        else:
            self._hits.add()
        return state

    def drop(self, group_id: str) -> None:
        self._groups.pop(group_id, None)

    def group_ids(self) -> list:
        """Ids of every cached group (used by enclave-restart recovery to
        know which groups to reload from the cloud)."""
        return sorted(self._groups)

    def __contains__(self, group_id: str) -> bool:
        return group_id in self._groups


@dataclass
class ClientGroupState:
    """Client-side cached view of the user's own partition."""

    group_id: str
    partition_id: Optional[int] = None
    record: Optional[PartitionRecord] = None
    #: The record as received from the cloud (signed payload) — kept so
    #: the resume file can persist a blob the next process can
    #: re-*verify*, since the decoded record no longer carries its
    #: signature.
    record_signed: Optional[bytes] = None
    record_version: int = 0
    group_key: Optional[bytes] = None
    poll_cursor: int = 0
