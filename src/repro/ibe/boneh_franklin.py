"""Boneh-Franklin identity-based encryption (CRYPTO'01), hybrid variant.

``BasicIdent`` hardened into an authenticated hybrid scheme: the pairing
value masks an HKDF-derived AES-256-GCM key rather than the message
directly.  Identity strings serve directly as public keys; a trusted
authority (in this reproduction: the SGX enclave) holds the master secret
``s`` and extracts per-user keys.

This is the primitive behind the paper's HE-IBE baseline (Fig. 2): hybrid
encryption where each recipient's copy of the group key is IBE-encrypted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.kdf import hkdf
from repro.crypto.modes import gcm_decrypt, gcm_encrypt
from repro.crypto.rng import Rng
from repro.ec.hashing import hash_to_point
from repro.errors import SchemeError
from repro.pairing.group import G1Element, GTElement, PairingGroup


@dataclass(frozen=True)
class IbePublicParams:
    group: PairingGroup
    p_pub: G1Element  # g^s

    def hash_identity(self, identity: str) -> G1Element:
        point = hash_to_point(
            self.group.curve, identity.encode("utf-8"), domain=b"repro:bf-ibe"
        )
        return G1Element(self.group, point)


@dataclass(frozen=True)
class IbeMasterSecret:
    s: int


@dataclass(frozen=True)
class IbeUserKey:
    identity: str
    element: G1Element  # Q_id^s


@dataclass(frozen=True)
class IbeCiphertext:
    u: G1Element      # g^r
    body: bytes       # nonce || AES-GCM(key, message)

    def encode(self) -> bytes:
        return self.u.encode() + self.body

    def size_bytes(self) -> int:
        return len(self.encode())


def setup(group: PairingGroup, rng: Rng):
    """Generate IBE master secret and public parameters."""
    s = group.random_scalar(rng)
    return IbeMasterSecret(s), IbePublicParams(group, group.g1 ** s)


def extract(msk: IbeMasterSecret, params: IbePublicParams,
            identity: str) -> IbeUserKey:
    q_id = params.hash_identity(identity)
    return IbeUserKey(identity, q_id ** msk.s)


def encrypt(params: IbePublicParams, identity: str, message: bytes,
            rng: Rng) -> IbeCiphertext:
    r = params.group.random_scalar(rng)
    u = params.group.g1 ** r
    q_id = params.hash_identity(identity)
    shared = params.group.pair(q_id, params.p_pub) ** r
    key = _derive_key(shared, u)
    nonce = rng.random_bytes(12)
    return IbeCiphertext(u, nonce + gcm_encrypt(key, nonce, message))


def decrypt(params: IbePublicParams, user_key: IbeUserKey,
            ciphertext: IbeCiphertext) -> bytes:
    if len(ciphertext.body) < 12 + 16:
        raise SchemeError("IBE ciphertext body too short")
    shared = params.group.pair(user_key.element, ciphertext.u)
    key = _derive_key(shared, ciphertext.u)
    nonce, sealed = ciphertext.body[:12], ciphertext.body[12:]
    return gcm_decrypt(key, nonce, sealed)


def _derive_key(shared: GTElement, u: G1Element) -> bytes:
    return hkdf(shared.encode(), 32, salt=u.encode(), info=b"repro:bf-ibe:v1")
