"""Identity-Based Encryption (Boneh-Franklin) — HE-IBE baseline primitive."""

from repro.ibe.boneh_franklin import (
    IbeCiphertext,
    IbeMasterSecret,
    IbePublicParams,
    IbeUserKey,
    decrypt,
    encrypt,
    extract,
    setup,
)

__all__ = [
    "IbePublicParams",
    "IbeMasterSecret",
    "IbeUserKey",
    "IbeCiphertext",
    "setup",
    "extract",
    "encrypt",
    "decrypt",
]
