"""Shared retry policy: capped exponential backoff with deterministic jitter.

Every layer that talks to the (possibly flaky) cloud — client sync, the
admin's plan commits, :class:`~repro.core.multiadmin.ConcurrentAdministrator`
conflict resolution — retries through one :class:`RetryPolicy` instead of
ad-hoc hot loops.  Backoff follows the usual capped-exponential shape

    ``delay(n) = min(cap_ms, base_ms * multiplier**(n-1)) * jitter_factor``

with the jitter factor drawn from a seeded
:class:`~repro.crypto.rng.DeterministicRng`, and — like
:class:`~repro.cloud.latency.LatencyModel` — the delay is *accounted,
not slept*: it accumulates in :attr:`RetryPolicy.slept_ms` and the
``retry.backoff_ms`` counter, so chaotic runs finish at memory speed
while still reporting how long a real deployment would have waited.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.crypto.rng import DeterministicRng
from repro.errors import UnavailableError, ValidationError
from repro.obs import span
from repro.obs.metrics import MetricRegistry

T = TypeVar("T")


class RetryPolicy:
    """Bounded retry with capped exponential backoff.

    ``run(operation)`` invokes the zero-argument callable up to
    ``max_attempts`` times, retrying on the ``retry_on`` exception tuple
    (by default :class:`~repro.errors.UnavailableError`, which covers
    injected outages and read timeouts — requests that never changed
    store state and are therefore always safe to reissue).  On
    exhaustion the last exception is re-raised unchanged.

    Counters (in ``registry``): ``retry.attempts`` (extra attempts past
    the first), ``retry.exhausted``, ``retry.backoff_ms``.  Each retried
    attempt opens a ``retry.backoff`` span tagged with the operation
    label and computed delay.
    """

    def __init__(self, max_attempts: int = 5, base_ms: float = 10.0,
                 cap_ms: float = 2000.0, multiplier: float = 2.0,
                 jitter: float = 0.5, seed: str = "retry",
                 registry: Optional[MetricRegistry] = None) -> None:
        if max_attempts < 1:
            raise ValidationError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts
        self.base_ms = base_ms
        self.cap_ms = cap_ms
        self.multiplier = multiplier
        self.jitter = jitter
        self.registry = registry if registry is not None else MetricRegistry()
        self._rng = DeterministicRng(f"retry:{seed}")
        #: Total accounted (never slept) backoff, in milliseconds.
        self.slept_ms = 0.0
        self._attempts = self.registry.counter("retry.attempts")
        self._exhausted = self.registry.counter("retry.exhausted")
        self._backoff_ms = self.registry.counter("retry.backoff_ms")

    def delay_ms(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered
        deterministically in ``[1 - jitter/2, 1 + jitter/2]``."""
        raw = min(self.cap_ms, self.base_ms * self.multiplier ** (attempt - 1))
        if self.jitter <= 0.0:
            return raw
        u = self._rng.randint_below(1_000_000) / 1_000_000.0
        return raw * (1.0 + self.jitter * (u - 0.5))

    def run(self, operation: Callable[[], T], *,
            retry_on: Tuple[Type[BaseException], ...] = (UnavailableError,),
            label: str = "op",
            on_retry: Optional[Callable[[BaseException, int], None]] = None
            ) -> T:
        """Run ``operation`` under this policy.

        ``on_retry(exc, attempt)`` is called before each re-attempt —
        :class:`ConcurrentAdministrator` uses it to reload group state
        after a version conflict.
        """
        attempt = 1
        while True:
            try:
                return operation()
            except retry_on as exc:
                if attempt >= self.max_attempts:
                    self._exhausted.add()
                    raise
                delay = self.delay_ms(attempt)
                self.slept_ms += delay
                self._attempts.add()
                self._backoff_ms.add(delay)
                with span("retry.backoff", "faults", label=label,
                          attempt=attempt, delay_ms=round(delay, 3),
                          error=type(exc).__name__):
                    if on_retry is not None:
                        on_retry(exc, attempt)
                attempt += 1
