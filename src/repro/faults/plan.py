"""Deterministic fault schedules (the chaos counterpart of ``LatencyModel``).

A :class:`FaultPlan` is a *seeded description* of how flaky the world is:
transient store outages, read timeouts, latency spikes, crashes at named
crash points, worker deaths in the parallel engine, and full enclave
restarts.  A :class:`FaultInjector` executes a plan with the same
replayability contract :class:`~repro.cloud.latency.LatencyModel` gives
latencies — every decision is drawn from per-category
:class:`~repro.crypto.rng.DeterministicRng` streams, so the same seed
against the same workload yields the *identical* fault sequence
(recorded in :attr:`FaultInjector.log` and asserted by the chaos tests).

Injection sites consult the injector through two doors:

* explicitly — :class:`~repro.faults.FaultyCloudStore` holds its injector
  and calls :meth:`FaultInjector.store_fault` before delegating;
* ambiently — :func:`crash_point` (sprinkled through the admin plan
  executor and the file store's commit path) and the worker pool's kill
  hook read the process-wide injector installed by :func:`install` /
  :func:`use_faults`.  With no injector installed every hook is a no-op
  costing one ``None`` check, so production paths pay nothing.

Faults are *accounted, not slept*: latency spikes add to the
``faults.latency_ms`` counter rather than stalling the process, keeping
simulated time decoupled from wall-clock time exactly as the latency
model does.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.crypto.rng import DeterministicRng
from repro.errors import (
    CrashError,
    StoreTimeoutError,
    TransientAttestationError,
    UnavailableError,
)
from repro.obs.metrics import MetricRegistry

#: Store operations that only read; timeouts are injected on these alone
#: (a timed-out write would leave the outcome ambiguous, which the
#: retry layer must never have to guess about).
READ_OPS = frozenset({"get", "get_many", "poll_dir", "list_dir", "exists"})


@dataclass(frozen=True)
class InjectedFault:
    """One executed fault, in injection order."""

    index: int   # 0-based position in the injector's log
    kind: str    # "store.unavailable" | "store.timeout" | "latency.spike"
                 # | "crash" | "worker.kill" | "enclave.restart"
                 # | "shard.kill" | "attest.fail"
    site: str    # operation, path, crash-point or handshake-step name

    def signature(self) -> Tuple[str, str]:
        return (self.kind, self.site)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault schedule.  All rates are per-consultation
    probabilities in ``[0, 1]``; the ``max_*`` caps bound the disruptive
    categories so a chaotic run always terminates."""

    seed: str = "chaos"
    #: Transient outage probability per store call (request never runs).
    store_error_rate: float = 0.0
    #: Read-timeout probability per store *read* call.
    store_timeout_rate: float = 0.0
    #: Latency-spike probability per store call (accounted, not slept).
    latency_spike_rate: float = 0.0
    latency_spike_ms: float = 250.0
    #: Crash probability per crash-point hit, capped by ``max_crashes``.
    crash_rate: float = 0.0
    max_crashes: int = 3
    #: Worker-death probability per parallel dispatch, capped below.
    worker_kill_rate: float = 0.0
    max_worker_kills: int = 1
    #: Enclave-restart probability per operation boundary, capped below.
    enclave_restart_rate: float = 0.0
    max_enclave_restarts: int = 1
    #: Shard-death probability per operation boundary of a sharded
    #: deployment (:mod:`repro.shard`), capped below.  A killed shard's
    #: next routed operation triggers the failover path: respawn,
    #: mutual re-attestation, sync-cursor replay.
    shard_kill_rate: float = 0.0
    max_shard_kills: int = 1
    #: Transient failure probability per mutual-attestation handshake
    #: step, capped below.  Raises
    #: :class:`~repro.errors.TransientAttestationError`, which the
    #: default :class:`~repro.faults.RetryPolicy` classifies as
    #: retryable, so a capped schedule always lets the handshake land.
    attest_fail_rate: float = 0.0
    max_attest_fails: int = 2

    @classmethod
    def disabled(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def store_faults(cls, seed: str = "chaos") -> "FaultPlan":
        """Transient store trouble only (outages, timeouts, spikes) —
        everything a :class:`~repro.faults.RetryPolicy` absorbs alone."""
        return cls(seed=seed, store_error_rate=0.08,
                   store_timeout_rate=0.05, latency_spike_rate=0.10)

    @classmethod
    def full_chaos(cls, seed: str = "chaos") -> "FaultPlan":
        """Store faults plus crashes and one enclave restart — requires
        a recovery driver (:mod:`repro.workloads.chaos`) on top."""
        return cls(seed=seed, store_error_rate=0.06,
                   store_timeout_rate=0.04, latency_spike_rate=0.08,
                   crash_rate=0.06, max_crashes=3,
                   enclave_restart_rate=0.05, max_enclave_restarts=2)

    @classmethod
    def shard_chaos(cls, seed: str = "chaos",
                    nshards: int = 2) -> "FaultPlan":
        """Sharded-deployment trouble: seeded shard deaths at operation
        boundaries plus transient mutual-attestation failures during the
        respawn handshakes.  Store faults stay off so every kill lands
        at a clean boundary — the shard chaos driver
        (:func:`repro.workloads.chaos.run_shard_chaos`) adds its own
        deterministic kill-each-shard-in-turn schedule on top."""
        return cls(seed=seed, shard_kill_rate=0.04,
                   max_shard_kills=max(1, nshards),
                   # The handshake consults the injector at ~4 sites per
                   # attempt, so the per-site rate stays modest — hot
                   # enough to exercise the retry path on most runs,
                   # cool enough that an 8-attempt budget never
                   # plausibly exhausts.
                   attest_fail_rate=0.08,
                   max_attest_fails=2 * max(1, nshards))


class FaultInjector:
    """Executes a :class:`FaultPlan`; deterministic given the call sequence.

    Each fault category draws from its own forked RNG stream, so (for
    example) enabling worker kills never perturbs the store-fault
    schedule.  Every injected fault is appended to :attr:`log` and
    counted in the ``faults.*`` namespace of :attr:`registry`:
    ``faults.injected``, ``faults.store_errors``, ``faults.timeouts``,
    ``faults.latency_spikes``, ``faults.latency_ms``, ``faults.crashes``,
    ``faults.worker_kills``, ``faults.enclave_restarts``,
    ``faults.shard_kills``, ``faults.attest_failures``.
    """

    def __init__(self, plan: FaultPlan,
                 registry: Optional[MetricRegistry] = None) -> None:
        self.plan = plan
        self.registry = registry if registry is not None else MetricRegistry()
        self.log: List[InjectedFault] = []
        master = DeterministicRng(f"faults:{plan.seed}")
        self._error_rng = master.fork("store-error")
        self._timeout_rng = master.fork("store-timeout")
        self._latency_rng = master.fork("latency-spike")
        self._crash_rng = master.fork("crash")
        self._kill_rng = master.fork("worker-kill")
        self._restart_rng = master.fork("enclave-restart")
        self._shard_rng = master.fork("shard-kill")
        self._attest_rng = master.fork("attest-fail")
        self._crashes = 0
        self._kills = 0
        self._restarts = 0
        self._shard_kills = 0
        self._attest_fails = 0
        self._injected = self.registry.counter("faults.injected")
        self._store_errors = self.registry.counter("faults.store_errors")
        self._timeouts = self.registry.counter("faults.timeouts")
        self._spikes = self.registry.counter("faults.latency_spikes")
        self._latency_ms = self.registry.counter("faults.latency_ms")
        self._crash_count = self.registry.counter("faults.crashes")
        self._kill_count = self.registry.counter("faults.worker_kills")
        self._restart_count = self.registry.counter("faults.enclave_restarts")
        self._shard_kill_count = self.registry.counter("faults.shard_kills")
        self._attest_fail_count = self.registry.counter(
            "faults.attest_failures")

    # -- the decision primitive ------------------------------------------------

    @staticmethod
    def _decide(rng: DeterministicRng, rate: float) -> bool:
        """One Bernoulli draw.  Consumes exactly one sample per call so
        the decision sequence is a pure function of the consultation
        sequence (the replayability contract)."""
        if rate <= 0.0:
            return False
        return rng.randint_below(1_000_000) < int(rate * 1_000_000)

    def _record(self, kind: str, site: str) -> InjectedFault:
        fault = InjectedFault(index=len(self.log), kind=kind, site=site)
        self.log.append(fault)
        self._injected.add()
        return fault

    # -- injection sites -------------------------------------------------------

    def store_fault(self, op: str, path: str = "") -> float:
        """Consulted by :class:`FaultyCloudStore` before every delegated
        call.  Returns extra accounted latency in milliseconds; raises
        :class:`UnavailableError` (any op) or :class:`StoreTimeoutError`
        (read ops) when the schedule says the request fails.
        """
        site = f"{op}:{path}" if path else op
        extra_ms = 0.0
        if self._decide(self._latency_rng, self.plan.latency_spike_rate):
            self._record("latency.spike", site)
            self._spikes.add()
            self._latency_ms.add(self.plan.latency_spike_ms)
            extra_ms = self.plan.latency_spike_ms
        if self._decide(self._error_rng, self.plan.store_error_rate):
            self._record("store.unavailable", site)
            self._store_errors.add()
            raise UnavailableError(
                f"injected transient outage on {op} {path or '(store)'}"
            )
        if op in READ_OPS and self._decide(self._timeout_rng,
                                           self.plan.store_timeout_rate):
            self._record("store.timeout", site)
            self._timeouts.add()
            raise StoreTimeoutError(
                f"injected read timeout on {op} {path or '(store)'}"
            )
        return extra_ms

    def crash_point(self, name: str) -> None:
        """Maybe die here.  Each hit draws once from the crash stream;
        the total is capped so recovery always converges (the redo of a
        crashed operation draws the *next* sample, which usually passes).
        """
        if self.plan.crash_rate <= 0.0 or self._crashes >= self.plan.max_crashes:
            return
        if self._decide(self._crash_rng, self.plan.crash_rate):
            self._crashes += 1
            self._record("crash", name)
            self._crash_count.add()
            raise CrashError(name)

    def take_worker_kill(self, ntasks: int) -> Optional[int]:
        """Consulted once per parallel dispatch; returns the task index
        whose worker should die mid-run, or ``None``.  The kill is
        consumed: the pool's respawn + re-dispatch runs clean."""
        if (self.plan.worker_kill_rate <= 0.0 or ntasks <= 0
                or self._kills >= self.plan.max_worker_kills):
            return None
        if not self._decide(self._kill_rng, self.plan.worker_kill_rate):
            return None
        self._kills += 1
        index = self._kill_rng.randint_below(ntasks)
        self._record("worker.kill", f"task:{index}")
        self._kill_count.add()
        return index

    def take_enclave_restart(self) -> bool:
        """Consulted by the chaos driver at operation boundaries."""
        if (self.plan.enclave_restart_rate <= 0.0
                or self._restarts >= self.plan.max_enclave_restarts):
            return False
        if not self._decide(self._restart_rng,
                            self.plan.enclave_restart_rate):
            return False
        self._restarts += 1
        self._record("enclave.restart", "op-boundary")
        self._restart_count.add()
        return True

    def take_shard_kill(self, nshards: int) -> Optional[int]:
        """Consulted by the sharded deployment's chaos driver at
        operation boundaries; returns the 0-based index of the shard to
        kill, or ``None``.  Mirrors :meth:`take_worker_kill`: one
        Bernoulli draw per consultation, plus one index draw when it
        fires, all from the dedicated shard-kill stream."""
        if (self.plan.shard_kill_rate <= 0.0 or nshards <= 0
                or self._shard_kills >= self.plan.max_shard_kills):
            return None
        if not self._decide(self._shard_rng, self.plan.shard_kill_rate):
            return None
        self._shard_kills += 1
        index = self._shard_rng.randint_below(nshards)
        self._record("shard.kill", f"shard:{index}")
        self._shard_kill_count.add()
        return index

    def attestation_fault(self, site: str) -> None:
        """Consulted by the mutual-attestation drivers at each handshake
        step.  Raises :class:`~repro.errors.TransientAttestationError`
        (retryable by the default :class:`~repro.faults.RetryPolicy`)
        when the schedule says the step fails; the cap guarantees a
        retried handshake eventually completes."""
        if (self.plan.attest_fail_rate <= 0.0
                or self._attest_fails >= self.plan.max_attest_fails):
            return
        if self._decide(self._attest_rng, self.plan.attest_fail_rate):
            self._attest_fails += 1
            self._record("attest.fail", site)
            self._attest_fail_count.add()
            raise TransientAttestationError(
                f"injected transient attestation failure at {site}"
            )

    # -- replay comparison -----------------------------------------------------

    def history(self) -> List[Tuple[str, str]]:
        """The fault sequence as comparable ``(kind, site)`` pairs."""
        return [fault.signature() for fault in self.log]


# ---------------------------------------------------------------------------
# Ambient installation (the tracer pattern: one injector per process)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultInjector] = None


def install(injector: Optional[FaultInjector]) -> None:
    """Install (or clear, with ``None``) the process-wide injector read
    by :func:`crash_point` and the worker pool's kill hook."""
    global _ACTIVE
    _ACTIVE = injector


def active() -> Optional[FaultInjector]:
    """The currently installed injector, if any."""
    return _ACTIVE


@contextmanager
def use_faults(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Scoped :func:`install`; restores the previous injector on exit."""
    previous = _ACTIVE
    install(injector)
    try:
        yield injector
    finally:
        install(previous)


def crash_point(name: str) -> None:
    """Named crash site.  A no-op (one ``None`` check) unless a fault
    injector is installed and its schedule crashes here, in which case
    :class:`~repro.errors.CrashError` unwinds to the chaos driver."""
    if _ACTIVE is not None:
        _ACTIVE.crash_point(name)
