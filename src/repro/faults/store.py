"""``FaultyCloudStore`` — a chaos decorator over the ``CloudStore`` contract.

Wraps any store (in-memory :class:`~repro.cloud.CloudStore`,
:class:`~repro.cloud.FileCloudStore`, or another decorator) and consults
a :class:`~repro.faults.FaultInjector` *before* delegating each call.
Injected faults therefore model requests that never reached the store:
an :class:`~repro.errors.UnavailableError` on a write guarantees the
write did not happen, which is exactly the property that makes blanket
retries in :class:`~repro.faults.RetryPolicy` safe.  Read timeouts
(:class:`~repro.errors.StoreTimeoutError`) are additionally injected on
``get``/``get_many``/``exists``/``list_dir``/``poll_dir``.

Latency spikes returned by the injector are accounted on the span, never
slept.  ``adversary_view`` and ``total_stored_bytes`` are inspection
interfaces, not round trips, and pass through unguarded.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.faults.plan import FaultInjector
from repro.obs import span


class FaultyCloudStore:
    """Duck-typed ``CloudStore`` decorator injecting scheduled faults.

    Anything not explicitly guarded (e.g. ``FileCloudStore.root``) is
    forwarded to the wrapped store via ``__getattr__``, so the decorator
    can stand in for its inner store anywhere in the system.
    """

    def __init__(self, inner: Any, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    def _guard(self, op: str, path: str = "") -> None:
        extra_ms = self.injector.store_fault(op, path)
        if extra_ms:
            with span("faults.latency_spike", "faults", op=op,
                      path=path, latency_ms=extra_ms):
                pass

    # -- guarded round trips ---------------------------------------------------

    def put(self, path: str, data: bytes,
            expected_version: Optional[int] = None) -> int:
        self._guard("put", path)
        return self.inner.put(path, data, expected_version)

    def get(self, path: str):
        self._guard("get", path)
        return self.inner.get(path)

    def get_many(self, paths: Iterable[str]) -> Dict[str, Any]:
        paths = list(paths)
        self._guard("get_many")
        return self.inner.get_many(paths)

    def exists(self, path: str) -> bool:
        self._guard("exists", path)
        return self.inner.exists(path)

    def delete(self, path: str) -> None:
        self._guard("delete", path)
        return self.inner.delete(path)

    def commit(self, batch) -> Dict[str, int]:
        self._guard("commit")
        return self.inner.commit(batch)

    def list_dir(self, directory: str) -> List[str]:
        self._guard("list_dir", directory)
        return self.inner.list_dir(directory)

    def poll_dir(self, directory: str, after_sequence: int = 0,
                 ) -> Tuple[List[Any], int]:
        self._guard("poll_dir", directory)
        return self.inner.poll_dir(directory, after_sequence)

    def compact(self) -> int:
        self._guard("compact")
        return self.inner.compact()

    # -- unguarded inspection --------------------------------------------------
    # (snapshot_horizon / head_sequence are inspection accessors and fall
    # through __getattr__ unguarded, like adversary_view.)

    def adversary_view(self) -> Iterator[Any]:
        return self.inner.adversary_view()

    def total_stored_bytes(self, prefix: str = "/") -> int:
        return self.inner.total_stored_bytes(prefix)

    @property
    def metrics(self):
        return self.inner.metrics

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return f"FaultyCloudStore({self.inner!r})"
