"""``FaultyCloudStore`` — a chaos decorator over the ``CloudStore`` contract.

Wraps any store (in-memory :class:`~repro.cloud.CloudStore`,
:class:`~repro.cloud.FileCloudStore`, the network
:class:`~repro.net.RemoteCloudStore`, or another decorator) and consults
a :class:`~repro.faults.FaultInjector` *before* delegating each call.
Injected faults therefore model requests that never reached the store:
an :class:`~repro.errors.UnavailableError` on a write guarantees the
write did not happen, which is exactly the property that makes blanket
retries in :class:`~repro.faults.RetryPolicy` safe.  Read timeouts
(:class:`~repro.errors.StoreTimeoutError`) are additionally injected on
the read round trips.

The delegations are *generated* from the contract metadata in
:mod:`repro.cloud.protocol` rather than hand-written: every name in
:data:`~repro.cloud.ROUND_TRIP_METHODS` gets a guarded wrapper (the
mapping also says which argument is the fault-site path), and every name
in :data:`~repro.cloud.INSPECTION_METHODS` gets an unguarded
pass-through.  A method added to :class:`~repro.cloud.CloudStoreProtocol`
is therefore either classified in the protocol module or the decorator
fails to instantiate (abstract method) — the fault layer can no longer
silently drift from the store API.

Latency spikes returned by the injector are accounted on the span, never
slept.  ``adversary_view`` and ``total_stored_bytes`` are inspection
interfaces, not round trips, and pass through unguarded.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.cloud.protocol import (
    INSPECTION_METHODS,
    ROUND_TRIP_METHODS,
    CloudStoreProtocol,
)
from repro.faults.plan import FaultInjector
from repro.obs import span


class FaultyCloudStore(CloudStoreProtocol):
    """``CloudStoreProtocol`` decorator injecting scheduled faults.

    Anything not part of the contract (e.g. ``FileCloudStore.root``) is
    forwarded to the wrapped store via ``__getattr__``, so the decorator
    can stand in for its inner store anywhere in the system.
    """

    def __init__(self, inner: Any, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    def _guard(self, op: str, path: str = "") -> None:
        extra_ms = self.injector.store_fault(op, path)
        if extra_ms:
            with span("faults.latency_spike", "faults", op=op,
                      path=path, latency_ms=extra_ms):
                pass

    @property
    def metrics(self):
        return self.inner.metrics

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return f"FaultyCloudStore({self.inner!r})"


def _guarded(name: str, path_index: Optional[int]) -> Callable:
    """A delegation that consults the injector before the round trip.

    ``path_index`` selects the positional argument reported as the fault
    site.  Iterable arguments (``get_many``'s paths) are materialized
    first so the fault decision precedes any consumption of a lazy
    generator."""

    def method(self, *args, **kwargs):
        if name == "get_many" and args:
            args = (list(args[0]),) + args[1:]
        site = ""
        if path_index is not None and len(args) > path_index:
            site = args[path_index]
        self._guard(name, site)
        return getattr(self.inner, name)(*args, **kwargs)

    method.__name__ = method.__qualname__ = f"FaultyCloudStore.{name}"
    method.__doc__ = f"Guarded delegation of ``{name}`` (generated)."
    return method


def _passthrough(name: str) -> Callable:
    def method(self, *args, **kwargs):
        return getattr(self.inner, name)(*args, **kwargs)

    method.__name__ = method.__qualname__ = f"FaultyCloudStore.{name}"
    method.__doc__ = f"Unguarded inspection pass-through of ``{name}`` (generated)."
    return method


for _name, _path_index in ROUND_TRIP_METHODS.items():
    setattr(FaultyCloudStore, _name, _guarded(_name, _path_index))
for _name in INSPECTION_METHODS:
    setattr(FaultyCloudStore, _name, _passthrough(_name))
# The generated methods satisfy the ABC; clear the abstract set that was
# computed before they were attached.
FaultyCloudStore.__abstractmethods__ = frozenset()
del _name, _path_index
