"""``repro.faults`` — deterministic fault injection, retry, and recovery.

The robustness layer of the reproduction: seeded fault schedules
(:class:`FaultPlan` / :class:`FaultInjector`), the :class:`FaultyCloudStore`
decorator that injects them into any ``CloudStore``, the named
:func:`crash_point` hooks threaded through the admin commit path and the
file store, and the shared :class:`RetryPolicy` that client sync, admin
commits, and multi-admin conflict resolution all retry through.

Everything is deterministic: the same plan seed against the same
workload produces the identical fault sequence, and the chaos harness
(:mod:`repro.workloads.chaos`) asserts that a faulty, retried, recovered
run converges to the byte-identical cloud state of a fault-free run.
"""

from repro.faults.plan import (
    READ_OPS,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    active,
    crash_point,
    install,
    use_faults,
)
from repro.faults.retry import RetryPolicy
from repro.faults.store import FaultyCloudStore

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultyCloudStore",
    "InjectedFault",
    "READ_OPS",
    "RetryPolicy",
    "active",
    "crash_point",
    "install",
    "use_faults",
]
