"""Baseline access-control schemes the paper evaluates against.

* :mod:`repro.baselines.hybrid` — Hybrid Encryption with per-user
  public-key (HE-PKI) or identity-based (HE-IBE) encryption of the group
  key; the "traditional approach" of Figs. 2/7/8/9.
* :mod:`repro.baselines.raw_ibbe` — classic IBBE without the master secret
  (public-key encryption path, O(n²)); the third line of Fig. 2.
"""

from repro.baselines.hybrid import (
    HeIbeScheme,
    HePkiScheme,
    HybridGroupManager,
)
from repro.baselines.hybrid_sgx import HeSgxEnclave, HeSgxGroupManager
from repro.baselines.raw_ibbe import RawIbbeGroupManager

__all__ = [
    "HePkiScheme",
    "HeIbeScheme",
    "HybridGroupManager",
    "HeSgxEnclave",
    "HeSgxGroupManager",
    "RawIbbeGroupManager",
]
