"""Hybrid Encryption (HE) group access control — the classic baseline.

The group key ``gk`` is encrypted once per member under that member's
public key (HE-PKI, §III-B) or identity (HE-IBE).  Consequences the paper
measures:

* metadata grows linearly with the group size (Fig. 2b);
* revocation re-encrypts for every remaining member — linear time (Fig. 7a);
* adding a member encrypts once — constant time (Fig. 8a);
* member decryption is a single public-key operation — constant time
  (Figs. 8b, 9).

Both key methodologies share :class:`HybridGroupManager`; they differ only
in the per-user primitive behind the :class:`UserCryptoScheme` interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence

from repro import ibe
from repro.cloud.store import CloudStore
from repro.core.envelope import GROUP_KEY_SIZE
from repro.core.serialize import Reader, Writer
from repro.crypto import ecies
from repro.crypto.rng import Rng, SystemRng
from repro.errors import AccessControlError, MembershipError, RevokedError
from repro.obs.metrics import MetricRegistry
from repro.obs.spans import span as _span
from repro.pairing.group import PairingGroup


class UserCryptoScheme(Protocol):
    """Per-user encryption primitive used by hybrid encryption."""

    name: str

    def register_user(self, identity: str) -> None:
        """Create key material for a user (PKI keygen or IBE extract)."""
        ...

    def encrypt_for(self, identity: str, plaintext: bytes) -> bytes:
        ...

    def decrypt_as(self, identity: str, ciphertext: bytes) -> bytes:
        ...


class HePkiScheme:
    """HE with a PKI: per-user ECIES keypairs.

    The registry plays the PKI's role of binding identities to public keys
    (the trust and operational costs of which are part of the paper's case
    against HE-PKI, §III-B).
    """

    name = "HE-PKI"

    def __init__(self, rng: Optional[Rng] = None) -> None:
        self._rng = rng or SystemRng()
        self._keys: Dict[str, ecies.EciesPrivateKey] = {}

    def register_user(self, identity: str) -> None:
        if identity not in self._keys:
            self._keys[identity] = ecies.generate_keypair(self._rng)

    def encrypt_for(self, identity: str, plaintext: bytes) -> bytes:
        key = self._require(identity)
        return key.public_key().encrypt(plaintext, self._rng)

    def decrypt_as(self, identity: str, ciphertext: bytes) -> bytes:
        return self._require(identity).decrypt(ciphertext)

    def _require(self, identity: str) -> ecies.EciesPrivateKey:
        key = self._keys.get(identity)
        if key is None:
            raise MembershipError(f"user {identity!r} has no registered key")
        return key


class HeIbeScheme:
    """HE with Boneh-Franklin IBE: identities *are* the public keys.

    Avoids the PKI but pays pairing-based costs per encryption — the
    constant-factor gap between the HE-PKI and HE-IBE lines of Fig. 2a.
    """

    name = "HE-IBE"

    def __init__(self, group: PairingGroup,
                 rng: Optional[Rng] = None) -> None:
        self._rng = rng or SystemRng()
        self._msk, self.params = ibe.setup(group, self._rng)
        self._user_keys: Dict[str, ibe.IbeUserKey] = {}

    def register_user(self, identity: str) -> None:
        if identity not in self._user_keys:
            self._user_keys[identity] = ibe.extract(
                self._msk, self.params, identity
            )

    def encrypt_for(self, identity: str, plaintext: bytes) -> bytes:
        # Encryption needs no registration — identity is the public key.
        return ibe.encrypt(self.params, identity, plaintext, self._rng).encode()

    def decrypt_as(self, identity: str, ciphertext: bytes) -> bytes:
        user_key = self._user_keys.get(identity)
        if user_key is None:
            raise MembershipError(f"user {identity!r} has no extracted key")
        point_size = 1 + (self.params.group.p.bit_length() + 7) // 8
        from repro.pairing.group import G1Element
        u = G1Element.decode(self.params.group, ciphertext[:point_size])
        body = ciphertext[point_size:]
        return ibe.decrypt(self.params, user_key,
                           ibe.IbeCiphertext(u=u, body=body))


@dataclass
class HybridGroupState:
    group_id: str
    group_key: bytes
    wrapped_keys: Dict[str, bytes] = field(default_factory=dict)

    def crypto_footprint(self) -> int:
        """Metadata expansion: one ciphertext per member (Fig. 2b)."""
        return sum(len(ct) for ct in self.wrapped_keys.values())

    def encode(self) -> bytes:
        writer = Writer()
        writer.str_field(self.group_id)
        writer.u32(len(self.wrapped_keys))
        for user in sorted(self.wrapped_keys):
            writer.str_field(user)
            writer.bytes_field(self.wrapped_keys[user])
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "HybridGroupState":
        reader = Reader(data)
        group_id = reader.str_field()
        count = reader.u32()
        wrapped = {}
        for _ in range(count):
            user = reader.str_field()
            wrapped[user] = reader.bytes_field()
        reader.expect_end()
        return cls(group_id=group_id, group_key=b"", wrapped_keys=wrapped)


class HybridGroupManager:
    """Group membership under hybrid encryption.

    Note the missing zero-knowledge property: this manager *sees* ``gk`` in
    plaintext (it must, to re-encrypt on revocation) — exactly the leak the
    paper's enclave-based design eliminates.
    """

    def __init__(self, scheme: UserCryptoScheme,
                 cloud: Optional[CloudStore] = None,
                 rng: Optional[Rng] = None) -> None:
        self.scheme = scheme
        self.cloud = cloud
        self._rng = rng or SystemRng()
        self._groups: Dict[str, HybridGroupState] = {}
        # Same observability surface as the IBBE-SGX administrator: a
        # registry of dotted-name counters under baseline.*.
        self.registry = MetricRegistry()
        self._m_created = self.registry.counter("baseline.groups_created")
        self._m_added = self.registry.counter("baseline.users_added")
        self._m_removed = self.registry.counter("baseline.users_removed")
        self._m_rekeys = self.registry.counter("baseline.rekeys")
        self._m_pushed = self.registry.counter("baseline.bytes_pushed")

    # -- membership operations -----------------------------------------------

    def create_group(self, group_id: str,
                     members: Sequence[str]) -> HybridGroupState:
        """O(n): one public-key encryption of gk per member."""
        if group_id in self._groups:
            raise AccessControlError(f"group {group_id!r} already exists")
        if len(set(members)) != len(members):
            raise MembershipError("duplicate members in group definition")
        with _span("baseline.create_group", scheme=self.scheme.name,
                   members=len(members)):
            gk = self._rng.random_bytes(GROUP_KEY_SIZE)
            state = HybridGroupState(group_id=group_id, group_key=gk)
            for user in members:
                state.wrapped_keys[user] = self.scheme.encrypt_for(user, gk)
            self._groups[group_id] = state
            self._push(state)
        self._m_created.add()
        return state

    def add_user(self, group_id: str, user: str) -> None:
        """O(1): gk unchanged, encrypt once for the newcomer."""
        state = self._require(group_id)
        if user in state.wrapped_keys:
            raise MembershipError(f"user {user!r} is already a member")
        with _span("baseline.add_user", scheme=self.scheme.name):
            state.wrapped_keys[user] = self.scheme.encrypt_for(
                user, state.group_key
            )
            self._push(state)
        self._m_added.add()

    def remove_user(self, group_id: str, user: str) -> None:
        """O(n): fresh gk re-encrypted for every remaining member."""
        state = self._require(group_id)
        if user not in state.wrapped_keys:
            raise MembershipError(f"user {user!r} is not a member")
        with _span("baseline.remove_user", scheme=self.scheme.name,
                   remaining=len(state.wrapped_keys) - 1):
            del state.wrapped_keys[user]
            state.group_key = self._rng.random_bytes(GROUP_KEY_SIZE)
            for member in state.wrapped_keys:
                state.wrapped_keys[member] = self.scheme.encrypt_for(
                    member, state.group_key
                )
            self._push(state)
        self._m_removed.add()

    def rekey(self, group_id: str) -> None:
        state = self._require(group_id)
        with _span("baseline.rekey", scheme=self.scheme.name):
            state.group_key = self._rng.random_bytes(GROUP_KEY_SIZE)
            for member in state.wrapped_keys:
                state.wrapped_keys[member] = self.scheme.encrypt_for(
                    member, state.group_key
                )
            self._push(state)
        self._m_rekeys.add()

    # -- user side ---------------------------------------------------------------

    def derive_group_key(self, group_id: str, user: str) -> bytes:
        """Client-side key derivation: O(1) public-key decryption."""
        state = self._require(group_id)
        wrapped = state.wrapped_keys.get(user)
        if wrapped is None:
            raise RevokedError(
                f"user {user!r} holds no wrapped key for {group_id!r}"
            )
        return self.scheme.decrypt_as(user, wrapped)

    # -- metrics -------------------------------------------------------------------

    def members(self, group_id: str) -> List[str]:
        return sorted(self._require(group_id).wrapped_keys)

    def crypto_footprint(self, group_id: str) -> int:
        return self._require(group_id).crypto_footprint()

    def _push(self, state: HybridGroupState) -> None:
        if self.cloud is not None:
            data = state.encode()
            self.cloud.put(f"/{state.group_id}/he-metadata", data)
            self._m_pushed.add(len(data))

    def _require(self, group_id: str) -> HybridGroupState:
        state = self._groups.get(group_id)
        if state is None:
            raise AccessControlError(f"unknown group {group_id!r}")
        return state
