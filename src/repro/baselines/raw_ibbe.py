"""Classic IBBE (no enclave, no master secret at the broadcaster).

The third line of Fig. 2: the broadcaster only holds the system public key,
so every group creation *and every membership change* pays the O(n²)
polynomial expansion of eq. 4 — the impracticality that motivates IBBE-SGX.
Metadata stays constant-size, which is IBBE's winning metric in Fig. 2b.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import ibbe
from repro.cloud.store import CloudStore
from repro.core.envelope import GROUP_KEY_SIZE, unwrap_group_key, wrap_group_key
from repro.crypto.rng import Rng, SystemRng
from repro.errors import AccessControlError, MembershipError, RevokedError


@dataclass
class RawIbbeGroupState:
    group_id: str
    members: List[str]
    ciphertext: ibbe.IbbeCiphertext
    envelope: bytes

    def crypto_footprint(self) -> int:
        """Constant regardless of group size — IBBE's headline property."""
        return self.ciphertext.size_bytes() + len(self.envelope)


class RawIbbeGroupManager:
    """Broadcaster using only the IBBE public key (trusted authority runs
    setup/extract out of band, as in the classic scheme)."""

    def __init__(self, pk: ibbe.IbbePublicKey,
                 cloud: Optional[CloudStore] = None,
                 rng: Optional[Rng] = None) -> None:
        self.pk = pk
        self.cloud = cloud
        self._rng = rng or SystemRng()
        self._groups: Dict[str, RawIbbeGroupState] = {}

    def create_group(self, group_id: str,
                     members: Sequence[str]) -> RawIbbeGroupState:
        """O(n²): public-key encryption path (eq. 4)."""
        if group_id in self._groups:
            raise AccessControlError(f"group {group_id!r} already exists")
        state = self._encrypt(group_id, list(members))
        self._groups[group_id] = state
        self._push(state)
        return state

    def add_user(self, group_id: str, user: str) -> None:
        """O(n²): without γ or the stored exponent, the broadcaster
        re-encrypts for the extended set (paper A-E)."""
        state = self._require(group_id)
        if user in state.members:
            raise MembershipError(f"user {user!r} is already a member")
        new_state = self._encrypt(group_id, state.members + [user])
        self._groups[group_id] = new_state
        self._push(new_state)

    def remove_user(self, group_id: str, user: str) -> None:
        """O(n²): fresh key, full re-encryption for the reduced set."""
        state = self._require(group_id)
        if user not in state.members:
            raise MembershipError(f"user {user!r} is not a member")
        remaining = [u for u in state.members if u != user]
        if not remaining:
            del self._groups[group_id]
            if self.cloud is not None:
                self.cloud.delete(f"/{group_id}/ibbe-metadata")
            return
        new_state = self._encrypt(group_id, remaining)
        self._groups[group_id] = new_state
        self._push(new_state)

    def derive_group_key(self, group_id: str, user: str,
                         user_key: ibbe.IbbeUserKey) -> bytes:
        """Client-side: O(n²) IBBE decrypt then envelope unwrap."""
        state = self._require(group_id)
        if user not in state.members:
            raise RevokedError(f"user {user!r} is not a member")
        bk = ibbe.decrypt(self.pk, user_key, state.members, state.ciphertext)
        return unwrap_group_key(bk.digest(), state.envelope,
                                aad=group_id.encode("utf-8"))

    def members(self, group_id: str) -> List[str]:
        return list(self._require(group_id).members)

    def crypto_footprint(self, group_id: str) -> int:
        return self._require(group_id).crypto_footprint()

    # -- internals -----------------------------------------------------------

    def _encrypt(self, group_id: str,
                 members: List[str]) -> RawIbbeGroupState:
        bk, ciphertext = ibbe.encrypt_pk(self.pk, members, self._rng)
        gk = self._rng.random_bytes(GROUP_KEY_SIZE)
        envelope = wrap_group_key(bk.digest(), gk, self._rng,
                                  aad=group_id.encode("utf-8"))
        return RawIbbeGroupState(
            group_id=group_id, members=members,
            ciphertext=ciphertext, envelope=envelope,
        )

    def _push(self, state: RawIbbeGroupState) -> None:
        if self.cloud is not None:
            self.cloud.put(
                f"/{state.group_id}/ibbe-metadata",
                state.ciphertext.encode() + state.envelope,
            )

    def _require(self, group_id: str) -> RawIbbeGroupState:
        state = self._groups.get(group_id)
        if state is None:
            raise AccessControlError(f"unknown group {group_id!r}")
        return state
