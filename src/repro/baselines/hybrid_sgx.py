"""HE-SGX: hybrid encryption run inside an enclave (the rejected design).

§III-B considers fixing HE's missing zero-knowledge property by running it
inside SGX, and rejects the idea: the group metadata (one wrapped key per
member) is the enclave's working set, it grows linearly with the group,
and enclave memory is expensive — 19.5 %/102 % write/read overheads and
hard EPC limits.  "Apprehensive about the hypothesized SGX degradation in
performance caused by the group metadata expansion, we shift the focus on
finding a solution with minimal expansion."

This module *implements* that rejected design so the claim can be
measured rather than assumed: an enclave that performs the per-member
ECIES wrapping of ``gk`` inside the boundary, charging the EPC model for
the full metadata working set on every revocation.  The
``bench_ablation_epc`` benchmark runs it head-to-head against IBBE-SGX on
the same device.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.envelope import GROUP_KEY_SIZE
from repro.crypto import ecies
from repro.errors import EnclaveError, MembershipError
from repro.obs.metrics import MetricRegistry
from repro.sgx.enclave import Enclave, ecall


class HeSgxEnclave(Enclave):
    """Enclave holding the HE group keys and the user public-key registry.

    The per-user wrapped-key map is the metadata the paper worries about:
    every revocation reads and rewrites all of it inside the enclave, so
    the EPC model is charged for the full pass (compare
    :meth:`repro.enclave_app.IbbeEnclave.remove_user`, whose working set
    is a constant few hundred bytes per partition).
    """

    VERSION = "he-sgx-1.0"

    def __init__(self, device, config=None) -> None:
        super().__init__(device, config)
        self._group_keys: Dict[str, bytes] = {}
        self._public_keys: Dict[str, ecies.EciesPublicKey] = {}

    # -- registry ---------------------------------------------------------------

    @ecall(batchable=True)
    def register_user(self, identity: str, public_key_bytes: bytes) -> None:
        self._public_keys[identity] = ecies.EciesPublicKey.decode(
            public_key_bytes
        )

    # -- membership operations -----------------------------------------------------

    @ecall(batchable=True)
    def create_group(self, group_id: str,
                     members: Sequence[str]) -> Dict[str, bytes]:
        if group_id in self._group_keys:
            raise EnclaveError(f"group {group_id!r} already exists")
        gk = self.track_secret(self.rng.random_bytes(GROUP_KEY_SIZE))
        self._group_keys[group_id] = gk
        wrapped = self._wrap_for(members, gk)
        self._charge_metadata_pass(wrapped)
        return wrapped

    @ecall(batchable=True)
    def add_user(self, group_id: str, user: str) -> bytes:
        gk = self._require_gk(group_id)
        wrapped = self._wrap_for([user], gk)
        # O(1) working set: only the new entry is staged.
        self._charge_metadata_pass(wrapped)
        return wrapped[user]

    @ecall(batchable=True)
    def remove_user(self, group_id: str,
                    remaining_members: Sequence[str]) -> Dict[str, bytes]:
        """Revocation: fresh gk, re-wrap for everyone — the linear pass
        over the full metadata that §III-B warns about."""
        self._require_gk(group_id)
        gk = self.track_secret(self.rng.random_bytes(GROUP_KEY_SIZE))
        self._group_keys[group_id] = gk
        wrapped = self._wrap_for(remaining_members, gk)
        self._charge_metadata_pass(wrapped)
        return wrapped

    # -- internals ---------------------------------------------------------------

    def _wrap_for(self, members: Sequence[str],
                  gk: bytes) -> Dict[str, bytes]:
        wrapped = {}
        for user in members:
            key = self._public_keys.get(user)
            if key is None:
                raise MembershipError(f"user {user!r} has no registered key")
            wrapped[user] = key.encrypt(gk, self.rng)
        return wrapped

    def _charge_metadata_pass(self, wrapped: Dict[str, bytes]) -> None:
        """Account one read+write pass over the staged metadata."""
        nbytes = sum(len(v) + len(k.encode()) for k, v in wrapped.items())
        if nbytes == 0:
            return
        handle = self.epc_allocate(nbytes)
        try:
            self.epc_touch(handle, nbytes, write=False)
            self.epc_touch(handle, nbytes, write=True)
        finally:
            self.device.epc.free(handle)
            self._epc_regions.remove(handle)

    def _require_gk(self, group_id: str) -> bytes:
        gk = self._group_keys.get(group_id)
        if gk is None:
            raise EnclaveError(f"unknown group {group_id!r}")
        return gk


class HeSgxGroupManager:
    """Untrusted driver for :class:`HeSgxEnclave` — the admin-side shape
    matches :class:`~repro.baselines.hybrid.HybridGroupManager`, but the
    manager never sees ``gk`` (zero knowledge achieved, at the metadata
    cost the paper rejects)."""

    def __init__(self, enclave: HeSgxEnclave,
                 user_keys: Optional[Dict[str, ecies.EciesPrivateKey]] = None,
                 ) -> None:
        self.enclave = enclave
        #: client-side private keys (held by users, kept here for tests)
        self.user_keys: Dict[str, ecies.EciesPrivateKey] = user_keys or {}
        self._wrapped: Dict[str, Dict[str, bytes]] = {}
        # baseline.* counters, same surface as HybridGroupManager; the
        # enclave boundary costs show up in the enclave's own sgx.* meter.
        self.registry = MetricRegistry()
        self._m_created = self.registry.counter("baseline.groups_created")
        self._m_added = self.registry.counter("baseline.users_added")
        self._m_removed = self.registry.counter("baseline.users_removed")

    def register_user(self, identity: str,
                      private_key: ecies.EciesPrivateKey) -> None:
        self.user_keys[identity] = private_key
        self.enclave.call(
            "register_user", identity, private_key.public_key().encode()
        )

    def register_users(self, keys: Dict[str, ecies.EciesPrivateKey]) -> None:
        """Bulk registration in one boundary crossing (fairness with the
        IBBE pipeline when comparing bootstrap costs)."""
        self.user_keys.update(keys)
        self.enclave.call_batch([
            ("register_user", (identity, key.public_key().encode()))
            for identity, key in keys.items()
        ])

    def create_group(self, group_id: str, members: Sequence[str]) -> None:
        self._wrapped[group_id] = self.enclave.call(
            "create_group", group_id, list(members)
        )
        self._m_created.add()

    def add_user(self, group_id: str, user: str) -> None:
        wrapped = self._require(group_id)
        if user in wrapped:
            raise MembershipError(f"user {user!r} is already a member")
        wrapped[user] = self.enclave.call("add_user", group_id, user)
        self._m_added.add()

    def remove_user(self, group_id: str, user: str) -> None:
        wrapped = self._require(group_id)
        if user not in wrapped:
            raise MembershipError(f"user {user!r} is not a member")
        remaining = [u for u in wrapped if u != user]
        self._wrapped[group_id] = self.enclave.call(
            "remove_user", group_id, remaining
        )
        self._m_removed.add()

    def derive_group_key(self, group_id: str, user: str) -> bytes:
        wrapped = self._require(group_id).get(user)
        if wrapped is None:
            from repro.errors import RevokedError
            raise RevokedError(f"user {user!r} holds no wrapped key")
        return self.user_keys[user].decrypt(wrapped)

    def members(self, group_id: str) -> List[str]:
        return sorted(self._require(group_id))

    def crypto_footprint(self, group_id: str) -> int:
        return sum(len(v) for v in self._require(group_id).values())

    def _require(self, group_id: str) -> Dict[str, bytes]:
        wrapped = self._wrapped.get(group_id)
        if wrapped is None:
            from repro.errors import AccessControlError
            raise AccessControlError(f"unknown group {group_id!r}")
        return wrapped
