"""The enclaved side of IBBE-SGX: the code that runs inside the boundary."""

from repro.enclave_app.ibbe_enclave import IbbeEnclave, PartitionBlob

__all__ = ["IbbeEnclave", "PartitionBlob"]
