"""The IBBE-SGX enclave (the shaded regions of Algorithms 1-3).

This enclave owns the IBBE master secret ``MSK = (g, γ)`` and every
plaintext group key ``gk``.  Untrusted administrator code sees only:

* the system public key (public by definition),
* partition ciphertexts ``c_p`` (public broadcast metadata),
* group-key envelopes ``y_p`` (AES-GCM ciphertext),
* sealed blobs (group keys, master secret) bound to this enclave identity.

The honest-but-curious administrator of the paper's model drives these
ecalls but gains zero knowledge of ``gk`` — the property the boundary leak
scanner and the zero-knowledge tests enforce.

Ecall inventory (``enclave.call(name, ...)``; entries marked [b] are
batchable and may ride in a single :meth:`~repro.sgx.enclave.Enclave.call_batch`
crossing):

==============================  ===============================================
``setup_system(m)``              System setup; returns (public key, sealed MSK).
``restore_system(...)``          Reload MSK from a sealed blob after a restart.
``get_system_bound`` [b]         Partition capacity ``m`` fixed at setup.
``get_public_key``               Identity public key (Fig. 3).
``get_attestation_quote``        Quote committing to the identity key (Fig. 3).
``provision_user_key``           Extract a user secret over a secure channel.
``extract_user_key_raw``         Extract for benchmarks (bootstrap, Fig. 6b).
``peer_offer``                   Identity key + fresh nonce (MAGE handshake).
``peer_quote``                   Quote committing to (identity key, peer nonce).
``register_peer``                Verify a peer's IAS report; admit the peer.
``has_peer``                     Whether a key is a mutually attested peer.
``export_master_secret_to_peer`` ECIES-wrap the MSK for an attested peer.
``import_master_secret_from_peer`` Install an MSK received from a peer.
``seal_master_secret``           Seal the installed MSK for this platform.
``create_group`` [b]             Algorithm 1 (all partitions, one entry).
``create_partition`` [b]         Algorithm 2, new-partition path (lines 3-7).
``add_user_to_partition`` [b]    Algorithm 2, existing path (line 11).
``add_users_to_partition`` [b]   Line 11 iterated over many users in one
                                 entry (batch add).
``remove_user`` [b]              Algorithm 3 (all partition blobs, one entry).
``rekey_group`` [b]              Re-key every partition without a membership
                                 change (A-G; also used by re-partitioning).
``recover_and_reseal`` [b]       Re-seal another admin's gk for this enclave.
``prepare_workers``              Pre-start the parallel worker pool.
``set_workers``                  Reconfigure the worker count at runtime.
==============================  ===============================================

Parallel execution: the per-partition work of ``create_group``,
``rekey_group`` and ``remove_user`` is partition-independent, so it runs
on the :mod:`repro.par` engine — the substrate's version of the paper's
in-enclave worker threads (Fig. 5).  The engine is configured by the
``workers`` config entry (default: the ``REPRO_WORKERS`` environment
variable, else serial) and changes *performance only*: per-partition
randomness streams are derived by index from one parent seed, so any
worker count produces byte-identical blobs.  γ-dependent aggregation,
group-key generation, enveloping and sealing always execute inside this
enclave; workers receive only public-key material and per-partition
aggregates (see DESIGN.md, "Parallel engine and the trust split").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import ibbe
from repro.core.envelope import GROUP_KEY_SIZE, wrap_group_key
from repro.crypto import ecies
from repro.crypto.kdf import sha256
from repro.errors import AttestationError, EnclaveError
from repro.mathutils.modular import modinv
from repro.obs.spans import span as _span
from repro.pairing.group import PairingGroup
from repro.par import WorkerPool, derive_seed, resolve_workers
from repro.par import kernels as par_kernels
from repro.sgx.attestation import parse_provision_request
from repro.sgx.counters import MonotonicCounterService
from repro.sgx.enclave import Enclave, ecall
from repro.sgx.quote import Quote


@dataclass(frozen=True)
class PartitionBlob:
    """Untrusted-side view of one partition's cryptographic payload."""

    ciphertext: bytes   # IbbeCiphertext encoding (c1 || c2 || c3)
    envelope: bytes     # y_p = nonce || GCM(SHA-256(bk_p), gk)


class IbbeEnclave(Enclave):
    """Enclave application holding the IBBE master secret."""

    VERSION = "ibbe-sgx-1.0"

    # Engine knobs are performance-only (results are byte-identical at
    # any worker count), so they stay out of the audited identity — a
    # redeploy with more workers must still unseal its MSK.
    UNMEASURED_CONFIG = frozenset({"workers", "precompute"})

    def __init__(self, device, config=None) -> None:
        super().__init__(device, config)
        group = (self.config or {}).get("pairing_group")
        if not isinstance(group, PairingGroup):
            raise EnclaveError(
                "IbbeEnclave requires a 'pairing_group' config entry"
            )
        self._group: PairingGroup = group
        self._msk: Optional[ibbe.IbbeMasterSecret] = None
        self._pk: Optional[ibbe.IbbePublicKey] = None
        # The identity key is derived from the platform sealing root and
        # this enclave's measurement (the moral equivalent of sealing it):
        # the same enclave build on the same device presents the same
        # certified identity across restarts, which the persistent CLI
        # deployment relies on.
        from repro.crypto.kdf import hkdf
        from repro.ec.p256 import P256
        scalar = 1 + int.from_bytes(
            hkdf(self.device.sealing_root_key(), 48,
                 salt=self.measurement, info=b"repro:enclave-identity"),
            "big",
        ) % (P256.order - 1)
        self._identity_key = ecies.EciesPrivateKey(scalar)
        # Monotonic counters are a *platform* service: use the device's
        # registry (when present) so sealed-blob versions keep advancing
        # across enclave restarts — a restarted enclave must still detect
        # a replayed old sealed group key.
        self._counters = getattr(device, "counters", None) \
            or MonotonicCounterService()
        self._seal_counters: Dict[str, int] = {}
        # MAGE-style peer registry (multi-enclave deployments).  Keyed
        # by the peer's identity public key bytes; entries are added
        # only by a completed mutual-attestation handshake
        # (:meth:`register_peer`) and never cross the boundary.
        self._peers: Dict[bytes, bool] = {}
        #: Nonces this enclave issued (:meth:`peer_offer`) and has not
        #: yet seen answered — the freshness check of the handshake.
        self._peer_nonces: set = set()
        # Parallel engine configuration (repro.par).  The pool itself is
        # created lazily on first use (it needs the public key) and its
        # par.* metrics ride this enclave's meter registry.
        self._workers = resolve_workers((self.config or {}).get("workers"))
        self._precompute = bool((self.config or {}).get("precompute", False))
        self._pool: Optional[WorkerPool] = None
        self.meter.registry.gauge("par.workers", lambda: self._workers)

    def destroy(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        super().destroy()

    # -- system lifecycle -------------------------------------------------------

    @ecall
    def setup_system(self, m: int,
                     precompute: bool = False,
                     ) -> Tuple[ibbe.IbbePublicKey, bytes]:
        """IBBE system setup bound to partition capacity ``m`` (Fig. 6a).

        Returns the public key and the MSK sealed for persistence.  The
        plaintext MSK never crosses the boundary.  ``precompute`` enables
        fixed-base window tables (see :func:`repro.ibbe.setup`).
        """
        if self._msk is not None:
            raise EnclaveError("system already set up")
        msk, pk = ibbe.setup(self._group, m, self.rng,
                             precompute=precompute)
        self._install_msk(msk, pk)
        sealed = self.seal_data(self._encode_msk(msk), aad=b"ibbe-msk")
        return pk, sealed

    @ecall
    def restore_system(self, sealed_msk: bytes,
                       pk: ibbe.IbbePublicKey) -> None:
        """Reload a previously sealed master secret (enclave restart)."""
        data = self.unseal_data(sealed_msk, aad=b"ibbe-msk")
        self._install_msk(self._decode_msk(data), pk)

    def _install_msk(self, msk: ibbe.IbbeMasterSecret,
                     pk: ibbe.IbbePublicKey) -> None:
        self._msk = msk
        self._pk = pk
        if self._precompute:
            pk.enable_precomputation()
        self.track_secret(msk.gamma.to_bytes(32, "big"))
        self.track_secret(msk.g.encode())

    def _encode_msk(self, msk: ibbe.IbbeMasterSecret) -> bytes:
        return msk.gamma.to_bytes(64, "big") + msk.g.encode()

    def _decode_msk(self, data: bytes) -> ibbe.IbbeMasterSecret:
        gamma = int.from_bytes(data[:64], "big")
        from repro.pairing.group import G1Element
        g = G1Element.decode(self._group, data[64:])
        return ibbe.IbbeMasterSecret(g=g, gamma=gamma)

    # -- trust establishment (Fig. 3) ---------------------------------------------

    @ecall(batchable=True)
    def get_system_bound(self) -> int:
        """The maximal broadcast-set (partition) size ``m`` fixed at setup."""
        return self._require_pk().m

    @ecall
    def get_public_key(self) -> bytes:
        return self._identity_key.public_key().encode()

    @ecall
    def get_attestation_quote(self) -> Quote:
        commitment = sha256(self._identity_key.public_key().encode())
        return self.get_quote(commitment)

    @ecall
    def provision_user_key(self, sealed_request: bytes) -> bytes:
        """Extract a user's IBBE secret key, returned over the channel the
        user established (their response key travelled inside the request,
        which only this enclave could decrypt)."""
        request = self._identity_key.decrypt(sealed_request, aad=b"usk-request")
        identity, response_key = parse_provision_request(request)
        usk = ibbe.extract(self._require_msk(), self._require_pk(), identity)
        return response_key.encrypt(usk.encode(), self.rng, aad=b"usk-response")

    @ecall
    def extract_user_key_raw(self, identity: str) -> bytes:
        """Bootstrap-phase extraction without channel wrapping.

        Used by the Fig. 6b throughput benchmark; in deployment the wrapped
        :meth:`provision_user_key` path is used instead.
        """
        usk = ibbe.extract(self._require_msk(), self._require_pk(), identity)
        return usk.encode()

    # -- master-secret migration (multi-admin, paper §VIII avenue 2) -------------

    @ecall
    def export_master_secret(self, target_certificate) -> bytes:
        """Encrypt the MSK to another *attested* admin enclave.

        Preconditions enforced inside the boundary:

        * this enclave's configuration pins the Auditor CA key
          (``ca_public_key`` config entry, hex) — the pin is part of the
          measurement, so it cannot be swapped without changing the
          audited identity;
        * the presented certificate verifies under that CA;
        * the certificate's measurement equals OUR measurement (same
          audited build — the MSK never migrates to different code).

        Returns an ECIES blob only the certified enclave can open.
        """
        from repro.sgx.auditor import EnclaveCertificate

        pinned_hex = self.config.get("ca_public_key")
        if not pinned_hex:
            raise EnclaveError(
                "MSK export requires a pinned 'ca_public_key' in the "
                "enclave configuration"
            )
        from repro.crypto import ecdsa
        ca_key = ecdsa.EcdsaPublicKey.decode(bytes.fromhex(str(pinned_hex)))
        if not isinstance(target_certificate, EnclaveCertificate):
            raise EnclaveError("malformed enclave certificate")
        target_certificate.verify(ca_key)
        if target_certificate.measurement != self.measurement:
            raise EnclaveError(
                "refusing MSK export: target enclave runs different code"
            )
        msk = self._require_msk()
        target_key = ecies.EciesPublicKey.decode(
            target_certificate.enclave_public_key
        )
        return target_key.encrypt(self._encode_msk(msk), self.rng,
                                  aad=b"msk-migration")

    @ecall
    def import_master_secret(self, blob: bytes,
                             pk: ibbe.IbbePublicKey) -> None:
        """Counterpart of :meth:`export_master_secret` on the target."""
        if self._msk is not None:
            raise EnclaveError("enclave already holds a master secret")
        data = self._identity_key.decrypt(blob, aad=b"msk-migration")
        self._install_msk(self._decode_msk(data), pk)

    # -- MAGE-style mutual attestation (multi-enclave shards, §VIII) -------------
    #
    # The certificate path above needs the Auditor/CA as a trusted third
    # party.  The peer path below removes it (the MAGE construction,
    # arXiv:2008.09501): two enclaves of the *same build* attest each
    # other directly, each verifying the other's IAS-signed report under
    # an IAS report key pinned in the measured configuration and
    # requiring the peer's measurement to equal its OWN.  The hardware
    # root of trust (IAS) stays; the auditing middleman goes.

    @ecall
    def peer_offer(self) -> Dict[str, bytes]:
        """Step 1 of the peer handshake: this enclave's identity public
        key plus a fresh nonce the *peer* must echo inside its quote's
        report data (freshness: a replayed quote carries a nonce this
        enclave never issued, or one already consumed)."""
        nonce = self.rng.random_bytes(32)
        self._peer_nonces.add(nonce)
        return {
            "public_key": self._identity_key.public_key().encode(),
            "nonce": nonce,
        }

    @ecall
    def peer_quote(self, peer_nonce: bytes) -> Quote:
        """Step 2: a quote whose 64-byte report data commits to this
        enclave's identity key (first half) and echoes the peer's
        challenge nonce (second half)."""
        if not isinstance(peer_nonce, bytes) or len(peer_nonce) != 32:
            raise AttestationError("peer nonce must be 32 bytes")
        commitment = sha256(self._identity_key.public_key().encode())
        return self.get_quote(commitment + peer_nonce)

    @ecall
    def register_peer(self, report, peer_public_key: bytes) -> None:
        """Step 3, run inside the boundary: admit a peer after checking
        the full MAGE predicate.

        * the report verifies under the IAS report key pinned in this
          enclave's *measured* configuration (``ias_report_key``) and
          says the quote checked out (genuine, non-revoked platform);
        * the quoted measurement equals OUR measurement — same audited
          build, no third party needed to say which builds are good;
        * the report data commits to the presented peer key and echoes
          a nonce this enclave issued (and consumes it).
        """
        from repro.sgx.ias import AttestationReport, IntelAttestationService

        pinned_hex = (self.config or {}).get("ias_report_key")
        if not pinned_hex:
            raise AttestationError(
                "peer attestation requires a pinned 'ias_report_key' in "
                "the enclave configuration"
            )
        if not isinstance(report, AttestationReport):
            raise AttestationError("malformed attestation report")
        from repro.crypto import ecdsa
        ias_key = ecdsa.EcdsaPublicKey.decode(bytes.fromhex(str(pinned_hex)))
        IntelAttestationService.verify_report(report, ias_key)
        if not report.is_ok:
            raise AttestationError(
                f"peer quote rejected by IAS: {report.quote_status}"
            )
        if report.measurement != self.measurement:
            raise AttestationError(
                "refusing peer: enclave runs different code"
            )
        expected = sha256(peer_public_key)
        if report.report_data[:32] != expected:
            raise AttestationError(
                "peer report does not commit to the presented key"
            )
        nonce = report.report_data[32:64]
        if nonce not in self._peer_nonces:
            raise AttestationError(
                "peer report does not answer an outstanding challenge"
            )
        self._peer_nonces.discard(nonce)
        self._peers[bytes(peer_public_key)] = True

    @ecall
    def has_peer(self, peer_public_key: bytes) -> bool:
        """Whether a mutual-attestation handshake admitted this key."""
        return bytes(peer_public_key) in self._peers

    @ecall
    def export_master_secret_to_peer(self, peer_public_key: bytes) -> bytes:
        """Encrypt the MSK to a *mutually attested* peer enclave.

        Unlike :meth:`export_master_secret` there is no certificate: the
        authorisation is membership in the peer registry, which only
        :meth:`register_peer`'s in-boundary checks can grant."""
        key = bytes(peer_public_key)
        if key not in self._peers:
            raise AttestationError(
                "refusing MSK export: key is not a mutually attested peer"
            )
        msk = self._require_msk()
        target_key = ecies.EciesPublicKey.decode(key)
        return target_key.encrypt(self._encode_msk(msk), self.rng,
                                  aad=b"msk-peer")

    @ecall
    def import_master_secret_from_peer(self, blob: bytes,
                                       pk: ibbe.IbbePublicKey,
                                       sender_public_key: bytes) -> None:
        """Counterpart of :meth:`export_master_secret_to_peer`.

        The sender must be in OUR peer registry too (the handshake is
        mutual), so an unattested party cannot feed this enclave a
        master secret of its choosing."""
        if self._msk is not None:
            raise EnclaveError("enclave already holds a master secret")
        if bytes(sender_public_key) not in self._peers:
            raise AttestationError(
                "refusing MSK import: sender is not a mutually attested peer"
            )
        data = self._identity_key.decrypt(blob, aad=b"msk-peer")
        self._install_msk(self._decode_msk(data), pk)

    @ecall
    def seal_master_secret(self) -> bytes:
        """Seal the installed MSK for this platform, so a later restart
        can :meth:`restore_system` without repeating the migration.
        Byte-compatible with the blob :meth:`setup_system` returns."""
        msk = self._require_msk()
        return self.seal_data(self._encode_msk(msk), aad=b"ibbe-msk")

    # -- Algorithm 1: create group -------------------------------------------------

    @ecall(batchable=True)
    def create_group(self, group_id: str,
                     partitions: Sequence[Sequence[str]],
                     ) -> Tuple[List[PartitionBlob], bytes]:
        """Lines 2-6 of Algorithm 1 (the enclaved region).

        Generates ``gk``, then per partition: an IBBE-SGX broadcast key and
        ciphertext via the O(|p|) MSK path, and the envelope ``y_p``.
        Returns the per-partition blobs and the sealed group key.

        The per-partition work runs on the parallel engine (the paper's
        enclave worker threads); the result is byte-identical for every
        worker count.
        """
        msk, pk = self._require_msk(), self._require_pk()
        gk = self.track_secret(self.rng.random_bytes(GROUP_KEY_SIZE))
        blobs = self._build_partitions(
            msk, pk, [list(members) for members in partitions], gk, group_id
        )
        sealed_gk = self._seal_group_key(group_id, gk)
        return blobs, sealed_gk

    # -- Algorithm 2: add user -------------------------------------------------------

    @ecall(batchable=True)
    def create_partition(self, group_id: str, members: Sequence[str],
                         sealed_gk: bytes) -> PartitionBlob:
        """Algorithm 2 lines 4-6: new partition enveloping the current gk."""
        msk, pk = self._require_msk(), self._require_pk()
        gk = self.track_secret(self._unseal_group_key(group_id, sealed_gk))
        return self._build_partition(msk, pk, members, gk, group_id)

    @ecall(batchable=True)
    def add_user_to_partition(self, partition_ciphertext: bytes,
                              identity: str) -> bytes:
        """Algorithm 2 line 11: O(1) ciphertext extension, bk unchanged."""
        msk, pk = self._require_msk(), self._require_pk()
        ct = ibbe.IbbeCiphertext.decode(self._group, partition_ciphertext)
        return ibbe.add_user_msk(msk, pk, ct, identity).encode()

    @ecall(batchable=True)
    def add_users_to_partition(self, partition_ciphertext: bytes,
                               identities: Sequence[str]) -> bytes:
        """Algorithm 2 line 11 iterated inside one entry (batch add).

        Each extension is the same deterministic O(1) ``add_user_msk``
        step, so the resulting ciphertext is byte-identical to applying
        :meth:`add_user_to_partition` once per identity — without the
        per-user boundary crossing.
        """
        msk, pk = self._require_msk(), self._require_pk()
        ct = ibbe.IbbeCiphertext.decode(self._group, partition_ciphertext)
        self._account_epc(len(partition_ciphertext))
        for identity in identities:
            ct = ibbe.add_user_msk(msk, pk, ct, identity)
        return ct.encode()

    # -- Algorithm 3: remove user -------------------------------------------------------

    @ecall(batchable=True)
    def remove_user(self, group_id: str, identity: str,
                    hosting_ciphertext: bytes,
                    other_ciphertexts: Sequence[bytes],
                    ) -> Tuple[PartitionBlob, List[PartitionBlob], bytes]:
        """Lines 3-9 of Algorithm 3 (the enclaved region).

        A fresh ``gk`` is generated; the hosting partition's ciphertext
        drops the revoked user in O(1); every other partition is re-keyed
        in O(1); each partition envelopes the new ``gk``.
        """
        msk, pk = self._require_msk(), self._require_pk()
        gk = self.track_secret(self.rng.random_bytes(GROUP_KEY_SIZE))
        # Dropping the revoked user divides C3's exponent by (γ + H(u))
        # — the only γ-dependent step, so it stays in the enclave; the
        # per-partition re-keys are public-base work for the engine.
        host_c3 = ibbe.IbbeCiphertext.decode_c3(self._group,
                                                hosting_ciphertext)
        q = self._group.q
        factor_inv = modinv((msk.gamma + pk.hash_identity(identity)) % q, q)
        c3_encodings = [(host_c3 ** factor_inv).encode()]
        for encoded in other_ciphertexts:
            self._account_epc(len(encoded))
            c3_encodings.append(
                ibbe.IbbeCiphertext.encoded_c3(self._group, encoded)
            )
        blobs = self._rekey_partitions(pk, c3_encodings, gk, group_id)
        sealed_gk = self._seal_group_key(group_id, gk)
        return blobs[0], blobs[1:], sealed_gk

    @ecall(batchable=True)
    def recover_and_reseal(self, group_id: str, members: Sequence[str],
                           ciphertext: bytes, envelope: bytes) -> bytes:
        """Recover ``gk`` from current partition metadata and seal it for
        *this* enclave.

        Sealed blobs are bound to the sealing platform, so in a
        multi-administrator deployment a sealed ``gk`` produced by one
        admin's enclave is opaque to another's.  No secret needs to travel
        though: holding the MSK, this enclave can extract any listed
        member's key, run the ordinary IBBE decryption and unwrap the
        envelope — exactly what that member could do — then re-seal.

        The caller must supply a *current* (admin-signed) partition
        record; replaying an outdated record would merely revive an old
        ``gk``, which the client-side epoch freshness tracking already
        guards against.
        """
        msk, pk = self._require_msk(), self._require_pk()
        if not members:
            raise EnclaveError("cannot recover from an empty partition")
        usk = ibbe.extract(msk, pk, members[0])
        ct = ibbe.IbbeCiphertext.decode(self._group, ciphertext)
        bk = ibbe.decrypt(pk, usk, list(members), ct)
        from repro.core.envelope import unwrap_group_key
        gk = self.track_secret(unwrap_group_key(
            bk.digest(), envelope, aad=group_id.encode("utf-8")
        ))
        return self._seal_group_key(group_id, gk)

    @ecall(batchable=True)
    def rekey_group(self, group_id: str, ciphertexts: Sequence[bytes],
                    ) -> Tuple[List[PartitionBlob], bytes]:
        """Refresh ``gk`` for all partitions without membership changes."""
        pk = self._require_pk()
        gk = self.track_secret(self.rng.random_bytes(GROUP_KEY_SIZE))
        c3_encodings = [
            ibbe.IbbeCiphertext.encoded_c3(self._group, encoded)
            for encoded in ciphertexts
        ]
        blobs = self._rekey_partitions(pk, c3_encodings, gk, group_id)
        sealed_gk = self._seal_group_key(group_id, gk)
        return blobs, sealed_gk

    # -- parallel engine (repro.par) ------------------------------------------------

    @ecall
    def prepare_workers(self) -> int:
        """Start every pool worker (decode the public key, build tables)
        ahead of real work, so pool start-up never lands inside a measured
        group operation.  Returns the worker count."""
        return self._worker_pool().warm()

    @ecall
    def set_workers(self, workers: Optional[int]) -> int:
        """Reconfigure the engine's worker count at runtime.

        The current pool (if any) is shut down; the next parallel
        operation starts a fresh one.  Worker count never affects
        results, only wall-clock — see the module docstring.
        """
        count = resolve_workers(workers)
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._workers = count
        # Re-point the gauge at the live setting (a closed pool's gauge
        # registration would otherwise report the stale count).
        self.meter.registry.gauge("par.workers", lambda: self._workers)
        return count

    def _worker_pool(self) -> WorkerPool:
        """The lazily-created engine pool (needs the public key).

        Worker processes rebuild their context from wire format
        (``init_worker``): the preset name and the *public* key bytes —
        never γ, ``g`` or any group key.  ``full_pk=False`` skips the
        h-power ladder the partition kernels don't touch.  The serial
        path installs this enclave's own objects inline instead.
        """
        if self._pool is None:
            pk, group = self._require_pk(), self._group
            self._pool = WorkerPool(
                self._workers,
                initializer=par_kernels.init_worker,
                initargs=(group.params.name, pk.encode(), False,
                          self._precompute),
                inline_initializer=lambda: par_kernels.set_context(group, pk),
                registry=self.meter.registry,
            )
        return self._pool

    def _build_partitions(self, msk, pk,
                          partitions: Sequence[Sequence[str]], gk: bytes,
                          group_id: str) -> List[PartitionBlob]:
        """Algorithm 1's per-partition loop on the parallel engine.

        Phase 1 (workers, public): hash every member identity.
        Phase 2 (enclave, γ): fold hashes into ``∏(γ + H(u)) mod q``.
        Phase 3 (workers, public bases): the three exponentiations and
        the pairing-free broadcast key, randomness derived by partition
        index from one parent seed (byte-identical at any worker count).
        Phase 4 (enclave, gk): EPC accounting + envelope wrap, in order.
        """
        with _span("enclave.build_partitions", partitions=len(partitions),
                   workers=self._workers):
            for members in partitions:
                ibbe.check_broadcast_set(pk, list(members))
            pool = self._worker_pool()
            hashes = pool.run(par_kernels.hash_members_task,
                              [tuple(members) for members in partitions])
            q, gamma = self._group.q, msk.gamma
            products = []
            for member_hashes in hashes:
                product = 1
                for h in member_hashes:
                    product = (product * ((gamma + h) % q)) % q
                products.append(product)
            parent = self.rng.random_bytes(32)
            results = pool.run(par_kernels.build_partition_task, [
                (products[i], derive_seed(parent, i, "partition"))
                for i in range(len(partitions))
            ])
            return self._assemble_blobs(partitions, results, gk, group_id)

    def _rekey_partitions(self, pk, c3_encodings: Sequence[bytes],
                          gk: bytes, group_id: str) -> List[PartitionBlob]:
        """The A-G re-key loop (Algorithm 3 / re-partitioning) on the
        engine: each partition's fresh ``(C1, C2, bk)`` needs only its
        public aggregate ``C3`` and the public key."""
        with _span("enclave.rekey_partitions",
                   partitions=len(c3_encodings), workers=self._workers):
            pool = self._worker_pool()
            parent = self.rng.random_bytes(32)
            results = pool.run(par_kernels.rekey_partition_task, [
                (c3_encodings[i], derive_seed(parent, i, "rekey"))
                for i in range(len(c3_encodings))
            ])
            return self._assemble_blobs(None, results, gk, group_id)

    def _assemble_blobs(self, partitions: Optional[Sequence[Sequence[str]]],
                        results: Sequence[Tuple[bytes, bytes]], gk: bytes,
                        group_id: str) -> List[PartitionBlob]:
        """Phase 4: wrap ``gk`` under each partition's broadcast-key
        digest.  Runs in the enclave (``gk`` never reaches a worker), in
        task order, drawing envelope nonces from the enclave RNG."""
        aad = group_id.encode("utf-8")
        blobs = []
        for index, (ct_bytes, bk_digest) in enumerate(results):
            if partitions is not None:
                members = partitions[index]
                self._account_epc(
                    sum(len(m.encode("utf-8")) for m in members) + 256,
                    write=True,
                )
            blobs.append(PartitionBlob(
                ciphertext=ct_bytes,
                envelope=wrap_group_key(bk_digest, gk, self.rng, aad=aad),
            ))
        return blobs

    # -- internals -----------------------------------------------------------------

    def _account_epc(self, nbytes: int, write: bool = False) -> None:
        """Charge the EPC model for a transient working set.

        Ciphertexts and member lists crossing the boundary are staged in
        enclave memory; accounting them keeps the §III-B comparison (tiny
        IBBE metadata vs EPC-thrashing HE metadata) measurable at the
        system level (``device.epc.stats``).
        """
        if nbytes <= 0:
            return
        handle = self.epc_allocate(nbytes)
        try:
            self.epc_touch(handle, nbytes, write=write)
        finally:
            self.device.epc.free(handle)
            self._epc_regions.remove(handle)

    def _build_partition(self, msk, pk, members: Sequence[str], gk: bytes,
                         group_id: str) -> PartitionBlob:
        return self._build_partitions(msk, pk, [list(members)], gk,
                                      group_id)[0]

    def _seal_group_key(self, group_id: str, gk: bytes) -> bytes:
        """Seal gk with a monotonic version for rollback protection."""
        counter_id = f"gk:{group_id}"
        if not self._counters.exists(counter_id):
            self._counters.create(counter_id)
        version = self._counters.increment(counter_id)
        self._seal_counters[group_id] = version
        payload = version.to_bytes(8, "big") + gk
        return self.seal_data(payload, aad=b"gk:" + group_id.encode("utf-8"))

    def _unseal_group_key(self, group_id: str, sealed: bytes) -> bytes:
        payload = self.unseal_data(sealed,
                                   aad=b"gk:" + group_id.encode("utf-8"))
        version = int.from_bytes(payload[:8], "big")
        current = self._seal_counters.get(group_id)
        if current is None:
            # Fresh enclave instance (e.g. after a restart): fall back to
            # the platform counter, which outlives the enclave.
            counter_id = f"gk:{group_id}"
            if self._counters.exists(counter_id):
                current = self._counters.read(counter_id)
                self._seal_counters[group_id] = current
        if current is not None and version < current:
            raise EnclaveError(
                f"rollback detected: sealed group key version {version} is "
                f"older than the counter {current}"
            )
        return payload[8:]

    def _require_msk(self) -> ibbe.IbbeMasterSecret:
        if self._msk is None:
            raise EnclaveError("system not set up: call setup_system first")
        return self._msk

    def _require_pk(self) -> ibbe.IbbePublicKey:
        if self._pk is None:
            raise EnclaveError("system not set up: call setup_system first")
        return self._pk
