"""Finite fields used by the elliptic-curve and pairing substrates."""

from repro.fields.fp import Fp, FpElement
from repro.fields.fp2 import Fp2, Fp2Element

__all__ = ["Fp", "FpElement", "Fp2", "Fp2Element"]
