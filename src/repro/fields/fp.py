"""Prime field F_p.

A lightweight object wrapper over Python integers.  Hot loops in the pairing
code work on raw integers for speed; this wrapper provides the readable,
operator-overloaded interface used by scheme-level code and tests.
"""

from __future__ import annotations

from typing import Union

from repro.errors import MathError, ParameterError
from repro.mathutils.modular import jacobi_symbol, modinv, modsqrt

IntoFp = Union["FpElement", int]


class Fp:
    """The prime field of order ``p``."""

    __slots__ = ("p",)

    def __init__(self, p: int) -> None:
        if p < 2:
            raise ParameterError(f"field order must be >= 2, got {p}")
        self.p = p

    def __call__(self, value: IntoFp) -> "FpElement":
        if isinstance(value, FpElement):
            if value.field.p != self.p:
                raise MathError("element belongs to a different field")
            return value
        return FpElement(self, value % self.p)

    def zero(self) -> "FpElement":
        return FpElement(self, 0)

    def one(self) -> "FpElement":
        return FpElement(self, 1)

    def random(self, rng) -> "FpElement":
        return FpElement(self, rng.randint_below(self.p))

    def random_nonzero(self, rng) -> "FpElement":
        return FpElement(self, 1 + rng.randint_below(self.p - 1))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Fp) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("Fp", self.p))

    def __repr__(self) -> str:
        return f"Fp({self.p})"


class FpElement:
    """An element of F_p supporting full field arithmetic."""

    __slots__ = ("field", "value")

    def __init__(self, field: Fp, value: int) -> None:
        self.field = field
        self.value = value % field.p

    def _coerce(self, other: IntoFp) -> "FpElement":
        if isinstance(other, FpElement):
            if other.field.p != self.field.p:
                raise MathError("mixed-field arithmetic")
            return other
        if isinstance(other, int):
            return FpElement(self.field, other)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: IntoFp) -> "FpElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.value + o.value)

    __radd__ = __add__

    def __sub__(self, other: IntoFp) -> "FpElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.value - o.value)

    def __rsub__(self, other: IntoFp) -> "FpElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return FpElement(self.field, o.value - self.value)

    def __mul__(self, other: IntoFp) -> "FpElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.value * o.value)

    __rmul__ = __mul__

    def __truediv__(self, other: IntoFp) -> "FpElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return self * o.inverse()

    def __rtruediv__(self, other: IntoFp) -> "FpElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return o * self.inverse()

    def __neg__(self) -> "FpElement":
        return FpElement(self.field, -self.value)

    def __pow__(self, exponent: int) -> "FpElement":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        return FpElement(self.field, pow(self.value, exponent, self.field.p))

    def inverse(self) -> "FpElement":
        return FpElement(self.field, modinv(self.value, self.field.p))

    def sqrt(self) -> "FpElement":
        """A square root (raises MathError for non-residues)."""
        return FpElement(self.field, modsqrt(self.value, self.field.p))

    def is_square(self) -> bool:
        if self.value == 0:
            return True
        return jacobi_symbol(self.value, self.field.p) == 1

    def is_zero(self) -> bool:
        return self.value == 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.value == other % self.field.p
        return (
            isinstance(other, FpElement)
            and other.field.p == self.field.p
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.field.p, self.value))

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"FpElement({self.value} mod {self.field.p})"
