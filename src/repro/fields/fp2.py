"""Quadratic extension field F_p² = F_p[i] / (i² + 1).

Requires ``p ≡ 3 (mod 4)`` so that ``-1`` is a non-residue and the polynomial
``i² + 1`` is irreducible.  This is the target group field of the type-A
(supersingular, embedding degree 2) pairing used throughout the paper's
implementation via PBC.

Elements are ``a + b·i``.  A raw-tuple fast path (:func:`fp2_mul`,
:func:`fp2_sqr`, ...) is provided for the Miller-loop inner code; the
:class:`Fp2Element` wrapper offers the ergonomic interface.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.errors import MathError, ParameterError
from repro.mathutils.modular import modinv

RawFp2 = Tuple[int, int]


# ---------------------------------------------------------------------------
# Raw-tuple arithmetic (hot path)
# ---------------------------------------------------------------------------

def fp2_add(x: RawFp2, y: RawFp2, p: int) -> RawFp2:
    return ((x[0] + y[0]) % p, (x[1] + y[1]) % p)


def fp2_sub(x: RawFp2, y: RawFp2, p: int) -> RawFp2:
    return ((x[0] - y[0]) % p, (x[1] - y[1]) % p)


def fp2_mul(x: RawFp2, y: RawFp2, p: int) -> RawFp2:
    a, b = x
    c, d = y
    # Karatsuba: (a+bi)(c+di) = (ac - bd) + ((a+b)(c+d) - ac - bd) i
    ac = a * c
    bd = b * d
    return ((ac - bd) % p, ((a + b) * (c + d) - ac - bd) % p)


def fp2_sqr(x: RawFp2, p: int) -> RawFp2:
    a, b = x
    # (a+bi)² = (a-b)(a+b) + 2ab·i
    return (((a - b) * (a + b)) % p, (2 * a * b) % p)


def fp2_neg(x: RawFp2, p: int) -> RawFp2:
    return ((-x[0]) % p, (-x[1]) % p)


def fp2_conj(x: RawFp2, p: int) -> RawFp2:
    return (x[0], (-x[1]) % p)


def fp2_inv(x: RawFp2, p: int) -> RawFp2:
    a, b = x
    norm = (a * a + b * b) % p
    if norm == 0:
        raise MathError("zero has no inverse in F_p2")
    ninv = modinv(norm, p)
    return ((a * ninv) % p, ((-b) * ninv) % p)


def fp2_pow(x: RawFp2, e: int, p: int) -> RawFp2:
    if e < 0:
        return fp2_pow(fp2_inv(x, p), -e, p)
    result: RawFp2 = (1, 0)
    base = x
    while e:
        if e & 1:
            result = fp2_mul(result, base, p)
        base = fp2_sqr(base, p)
        e >>= 1
    return result


# ---------------------------------------------------------------------------
# Wrapper classes
# ---------------------------------------------------------------------------

IntoFp2 = Union["Fp2Element", int, RawFp2]


class Fp2:
    """The field F_p² for ``p ≡ 3 (mod 4)``."""

    __slots__ = ("p",)

    def __init__(self, p: int) -> None:
        if p % 4 != 3:
            raise ParameterError(
                f"F_p2 with i²=-1 requires p ≡ 3 (mod 4); got p % 4 = {p % 4}"
            )
        self.p = p

    def __call__(self, value: IntoFp2) -> "Fp2Element":
        if isinstance(value, Fp2Element):
            if value.field.p != self.p:
                raise MathError("element belongs to a different field")
            return value
        if isinstance(value, int):
            return Fp2Element(self, (value % self.p, 0))
        a, b = value
        return Fp2Element(self, (a % self.p, b % self.p))

    def zero(self) -> "Fp2Element":
        return Fp2Element(self, (0, 0))

    def one(self) -> "Fp2Element":
        return Fp2Element(self, (1, 0))

    def i(self) -> "Fp2Element":
        return Fp2Element(self, (0, 1))

    def random(self, rng) -> "Fp2Element":
        return Fp2Element(
            self, (rng.randint_below(self.p), rng.randint_below(self.p))
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Fp2) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("Fp2", self.p))

    def __repr__(self) -> str:
        return f"Fp2({self.p})"


class Fp2Element:
    """An element ``a + b·i`` of F_p²."""

    __slots__ = ("field", "raw")

    def __init__(self, field: Fp2, raw: RawFp2) -> None:
        self.field = field
        self.raw = raw

    @property
    def a(self) -> int:
        return self.raw[0]

    @property
    def b(self) -> int:
        return self.raw[1]

    def _coerce(self, other: IntoFp2) -> "Fp2Element":
        if isinstance(other, Fp2Element):
            if other.field.p != self.field.p:
                raise MathError("mixed-field arithmetic")
            return other
        if isinstance(other, int):
            return Fp2Element(self.field, (other % self.field.p, 0))
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: IntoFp2) -> "Fp2Element":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return Fp2Element(self.field, fp2_add(self.raw, o.raw, self.field.p))

    __radd__ = __add__

    def __sub__(self, other: IntoFp2) -> "Fp2Element":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return Fp2Element(self.field, fp2_sub(self.raw, o.raw, self.field.p))

    def __rsub__(self, other: IntoFp2) -> "Fp2Element":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return Fp2Element(self.field, fp2_sub(o.raw, self.raw, self.field.p))

    def __mul__(self, other: IntoFp2) -> "Fp2Element":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return Fp2Element(self.field, fp2_mul(self.raw, o.raw, self.field.p))

    __rmul__ = __mul__

    def __truediv__(self, other: IntoFp2) -> "Fp2Element":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return self * o.inverse()

    def __neg__(self) -> "Fp2Element":
        return Fp2Element(self.field, fp2_neg(self.raw, self.field.p))

    def __pow__(self, exponent: int) -> "Fp2Element":
        return Fp2Element(self.field, fp2_pow(self.raw, exponent, self.field.p))

    def inverse(self) -> "Fp2Element":
        return Fp2Element(self.field, fp2_inv(self.raw, self.field.p))

    def conjugate(self) -> "Fp2Element":
        return Fp2Element(self.field, fp2_conj(self.raw, self.field.p))

    def is_zero(self) -> bool:
        return self.raw == (0, 0)

    def is_one(self) -> bool:
        return self.raw == (1, 0)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.raw == (other % self.field.p, 0)
        return (
            isinstance(other, Fp2Element)
            and other.field.p == self.field.p
            and other.raw == self.raw
        )

    def __hash__(self) -> int:
        return hash((self.field.p, self.raw))

    def __repr__(self) -> str:
        return f"Fp2Element({self.raw[0]} + {self.raw[1]}i mod {self.field.p})"
