"""Metadata record codec and signature tests, envelope tests, serializer."""

import pytest

from repro.core.envelope import ENVELOPE_SIZE, unwrap_group_key, wrap_group_key
from repro.core.metadata import (
    GroupDescriptor,
    PartitionRecord,
    descriptor_path,
    group_dir,
    partition_path,
)
from repro.core.serialize import Reader, Writer, join_signed, split_signed
from repro.crypto import ecdsa
from repro.crypto.kdf import sha256
from repro.crypto.rng import DeterministicRng
from repro.errors import AuthenticationError, CryptoError, StorageError


@pytest.fixture(scope="module")
def admin_key():
    return ecdsa.generate_keypair(DeterministicRng("meta-admin"))


RECORD = PartitionRecord(
    group_id="team",
    partition_id=3,
    members=("alice", "bob"),
    ciphertext=b"C" * 90,
    envelope=b"Y" * ENVELOPE_SIZE,
)


class TestPartitionRecord:
    def test_signed_roundtrip(self, admin_key):
        data = RECORD.signed(admin_key)
        decoded = PartitionRecord.verify_and_decode(
            data, admin_key.public_key()
        )
        assert decoded == RECORD

    def test_foreign_signature_rejected(self, admin_key):
        other = ecdsa.generate_keypair(DeterministicRng("other-admin"))
        data = RECORD.signed(other)
        with pytest.raises(AuthenticationError):
            PartitionRecord.verify_and_decode(data, admin_key.public_key())

    def test_payload_tamper_rejected(self, admin_key):
        data = bytearray(RECORD.signed(admin_key))
        data[20] ^= 1
        with pytest.raises(AuthenticationError):
            PartitionRecord.verify_and_decode(bytes(data),
                                              admin_key.public_key())

    def test_crypto_bytes(self):
        assert RECORD.crypto_bytes() == 90 + ENVELOPE_SIZE

    def test_not_a_record(self, admin_key):
        descriptor = GroupDescriptor("g", 4, {}, epoch=0)
        data = descriptor.signed(admin_key)
        with pytest.raises(StorageError):
            PartitionRecord.verify_and_decode(data, admin_key.public_key())


class TestGroupDescriptor:
    def test_signed_roundtrip(self, admin_key):
        descriptor = GroupDescriptor(
            group_id="team", partition_capacity=100,
            user_to_partition={"alice": 0, "bob": 1}, epoch=7,
        )
        decoded = GroupDescriptor.verify_and_decode(
            descriptor.signed(admin_key), admin_key.public_key()
        )
        assert decoded == descriptor

    def test_tamper_rejected(self, admin_key):
        descriptor = GroupDescriptor("team", 10, {"a": 0}, epoch=1)
        data = bytearray(descriptor.signed(admin_key))
        data[15] ^= 0xFF
        with pytest.raises(AuthenticationError):
            GroupDescriptor.verify_and_decode(bytes(data),
                                              admin_key.public_key())


class TestPaths:
    def test_layout(self):
        assert partition_path("g", 2) == "/g/p2"
        assert descriptor_path("g") == "/g/descriptor"
        assert group_dir("g") == "/g"


class TestEnvelope:
    KEY = sha256(b"broadcast key")
    GK = bytes(range(32))

    def test_roundtrip(self, rng):
        envelope = wrap_group_key(self.KEY, self.GK, rng, aad=b"g")
        assert len(envelope) == ENVELOPE_SIZE
        assert unwrap_group_key(self.KEY, envelope, aad=b"g") == self.GK

    def test_wrong_key(self, rng):
        envelope = wrap_group_key(self.KEY, self.GK, rng)
        with pytest.raises(Exception):
            unwrap_group_key(sha256(b"other"), envelope)

    def test_wrong_aad(self, rng):
        envelope = wrap_group_key(self.KEY, self.GK, rng, aad=b"g1")
        with pytest.raises(Exception):
            unwrap_group_key(self.KEY, envelope, aad=b"g2")

    def test_size_enforced(self, rng):
        with pytest.raises(CryptoError):
            wrap_group_key(self.KEY, b"short", rng)
        with pytest.raises(CryptoError):
            wrap_group_key(b"short", self.GK, rng)
        with pytest.raises(CryptoError):
            unwrap_group_key(self.KEY, b"short")


class TestSerializer:
    def test_field_roundtrip(self):
        writer = (Writer().str_field("héllo").u32(42).u64(2**40)
                  .bytes_field(b"raw").str_list(["a", "b"]))
        reader = Reader(writer.getvalue())
        assert reader.str_field() == "héllo"
        assert reader.u32() == 42
        assert reader.u64() == 2**40
        assert reader.bytes_field() == b"raw"
        assert reader.str_list() == ["a", "b"]
        reader.expect_end()

    def test_truncation_detected(self):
        data = Writer().str_field("hello").getvalue()
        reader = Reader(data[:-1])
        with pytest.raises(StorageError):
            reader.str_field()

    def test_trailing_bytes_detected(self):
        reader = Reader(Writer().u32(1).getvalue() + b"x")
        reader.u32()
        with pytest.raises(StorageError):
            reader.expect_end()

    def test_u32_range(self):
        with pytest.raises(StorageError):
            Writer().u32(2**32)
        with pytest.raises(StorageError):
            Writer().u32(-1)

    def test_signed_envelope_roundtrip(self):
        data = join_signed(b"payload", b"signature")
        payload, signature = split_signed(data)
        assert payload == b"payload"
        assert signature == b"signature"

    def test_signed_envelope_corrupt(self):
        with pytest.raises(StorageError):
            split_signed(b"\x00\x00\x00\xff")
        with pytest.raises(StorageError):
            split_signed(b"ab")
