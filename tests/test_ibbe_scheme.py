"""Unit tests for the Delerablée IBBE scheme and the IBBE-SGX fast paths."""

import pytest

from repro import ibbe
from repro.crypto.rng import DeterministicRng
from repro.errors import ParameterError, SchemeError

USERS = [f"user{i}" for i in range(8)]


class TestSetupAndExtract:
    def test_public_key_size_linear_in_m(self, group, rng):
        _, pk4 = ibbe.setup(group, 4, rng)
        _, pk8 = ibbe.setup(group, 8, rng)
        assert len(pk8.h_powers) == 9
        assert pk8.size_bytes() > pk4.size_bytes()

    def test_invalid_m(self, group, rng):
        with pytest.raises(ParameterError):
            ibbe.setup(group, 0, rng)

    def test_extract_deterministic(self, ibbe_system):
        msk, pk = ibbe_system
        a = ibbe.extract(msk, pk, "alice")
        b = ibbe.extract(msk, pk, "alice")
        assert a.element == b.element

    def test_extract_verifies_against_pairing(self, ibbe_system, group):
        """e(USK_u, h^γ · h^H(u)) == e(g, h) — the defining equation."""
        msk, pk = ibbe_system
        usk = ibbe.extract(msk, pk, "alice")
        h_u = pk.hash_identity("alice")
        rhs = pk.h_powers[1] * (pk.h_powers[0] ** h_u)
        assert group.pair(usk.element, rhs) == pk.v


class TestEncryptionPaths:
    def test_pk_and_msk_paths_agree_on_c3(self, ibbe_system, rng):
        msk, pk = ibbe_system
        _, ct_pk = ibbe.encrypt_pk(pk, USERS, rng)
        _, ct_msk = ibbe.encrypt_msk(msk, pk, USERS, rng)
        assert ct_pk.c3 == ct_msk.c3

    def test_all_members_decrypt_pk_path(self, ibbe_system, user_keys, rng):
        msk, pk = ibbe_system
        bk, ct = ibbe.encrypt_pk(pk, USERS, rng)
        for user in USERS:
            assert ibbe.decrypt(pk, user_keys[user], USERS, ct) == bk

    def test_all_members_decrypt_msk_path(self, ibbe_system, user_keys, rng):
        msk, pk = ibbe_system
        bk, ct = ibbe.encrypt_msk(msk, pk, USERS, rng)
        for user in USERS:
            assert ibbe.decrypt(pk, user_keys[user], USERS, ct) == bk

    def test_singleton_set(self, ibbe_system, user_keys, rng):
        msk, pk = ibbe_system
        bk, ct = ibbe.encrypt_msk(msk, pk, ["user0"], rng)
        assert ibbe.decrypt(pk, user_keys["user0"], ["user0"], ct) == bk

    def test_nonmember_rejected(self, ibbe_system, user_keys, rng):
        msk, pk = ibbe_system
        bk, ct = ibbe.encrypt_msk(msk, pk, USERS[:4], rng)
        with pytest.raises(SchemeError):
            ibbe.decrypt(pk, user_keys["mallory"], USERS[:4], ct)

    def test_nonmember_with_padded_set_gets_wrong_key(self, ibbe_system,
                                                      user_keys, rng):
        """Mallory lying about the broadcast set cannot recover bk."""
        msk, pk = ibbe_system
        bk, ct = ibbe.encrypt_msk(msk, pk, USERS[:4], rng)
        forged_set = USERS[:4] + ["mallory"]
        derived = ibbe.decrypt(pk, user_keys["mallory"], forged_set, ct)
        assert derived != bk

    def test_empty_set_rejected(self, ibbe_system, rng):
        msk, pk = ibbe_system
        with pytest.raises(SchemeError):
            ibbe.encrypt_msk(msk, pk, [], rng)
        with pytest.raises(SchemeError):
            ibbe.encrypt_pk(pk, [], rng)

    def test_oversized_set_rejected(self, ibbe_system, rng):
        msk, pk = ibbe_system
        too_many = [f"x{i}" for i in range(pk.m + 1)]
        with pytest.raises(ParameterError):
            ibbe.encrypt_pk(pk, too_many, rng)
        with pytest.raises(ParameterError):
            ibbe.encrypt_msk(msk, pk, too_many, rng)

    def test_duplicate_identities_rejected(self, ibbe_system, rng):
        msk, pk = ibbe_system
        with pytest.raises(SchemeError):
            ibbe.encrypt_msk(msk, pk, ["a", "a"], rng)

    def test_broadcast_keys_are_fresh(self, ibbe_system, rng):
        msk, pk = ibbe_system
        bk1, _ = ibbe.encrypt_msk(msk, pk, USERS, rng)
        bk2, _ = ibbe.encrypt_msk(msk, pk, USERS, rng)
        assert bk1 != bk2


class TestMembershipUpdates:
    def test_add_keeps_bk(self, ibbe_system, user_keys, rng):
        msk, pk = ibbe_system
        bk, ct = ibbe.encrypt_msk(msk, pk, USERS[:4], rng)
        ct2 = ibbe.add_user_msk(msk, pk, ct, "newcomer")
        members = USERS[:4] + ["newcomer"]
        assert ibbe.decrypt(pk, user_keys["newcomer"], members, ct2) == bk
        assert ibbe.decrypt(pk, user_keys["user0"], members, ct2) == bk

    def test_add_matches_fresh_encrypt_structure(self, ibbe_system, rng):
        """C3 after add equals C3 of a fresh encryption of the new set."""
        msk, pk = ibbe_system
        _, ct = ibbe.encrypt_msk(msk, pk, USERS[:4], rng)
        ct2 = ibbe.add_user_msk(msk, pk, ct, "newcomer")
        _, fresh = ibbe.encrypt_msk(msk, pk, USERS[:4] + ["newcomer"], rng)
        assert ct2.c3 == fresh.c3

    def test_remove_changes_bk_and_excludes(self, ibbe_system, user_keys, rng):
        msk, pk = ibbe_system
        bk, ct = ibbe.encrypt_msk(msk, pk, USERS[:5], rng)
        bk2, ct2 = ibbe.remove_user_msk(msk, pk, ct, "user2", rng)
        remaining = [u for u in USERS[:5] if u != "user2"]
        assert bk2 != bk
        assert ibbe.decrypt(pk, user_keys["user0"], remaining, ct2) == bk2
        # The revoked user, lying about the set, still fails.
        derived = ibbe.decrypt(pk, user_keys["user2"],
                               remaining + ["user2"], ct2)
        assert derived != bk2

    def test_remove_matches_fresh_c3(self, ibbe_system, rng):
        msk, pk = ibbe_system
        _, ct = ibbe.encrypt_msk(msk, pk, USERS[:5], rng)
        _, ct2 = ibbe.remove_user_msk(msk, pk, ct, "user2", rng)
        _, fresh = ibbe.encrypt_msk(
            msk, pk, [u for u in USERS[:5] if u != "user2"], rng
        )
        assert ct2.c3 == fresh.c3

    def test_rekey_preserves_membership(self, ibbe_system, user_keys, rng):
        msk, pk = ibbe_system
        bk, ct = ibbe.encrypt_msk(msk, pk, USERS[:4], rng)
        bk2, ct2 = ibbe.rekey(pk, ct, rng)
        assert bk2 != bk
        assert ct2.c3 == ct.c3
        for user in USERS[:4]:
            assert ibbe.decrypt(pk, user_keys[user], USERS[:4], ct2) == bk2

    def test_old_ciphertext_invalid_after_remove(self, ibbe_system,
                                                 user_keys, rng):
        """Forward secrecy of the broadcast key: the old ct still decrypts
        to the OLD bk only — the new bk is unreachable from it."""
        msk, pk = ibbe_system
        bk, ct = ibbe.encrypt_msk(msk, pk, USERS[:4], rng)
        bk2, _ = ibbe.remove_user_msk(msk, pk, ct, "user1", rng)
        old = ibbe.decrypt(pk, user_keys["user1"], USERS[:4], ct)
        assert old == bk and old != bk2


class TestCiphertextSerialization:
    def test_roundtrip(self, ibbe_system, rng, group):
        msk, pk = ibbe_system
        _, ct = ibbe.encrypt_msk(msk, pk, USERS, rng)
        decoded = ibbe.IbbeCiphertext.decode(group, ct.encode())
        assert decoded == ct

    def test_constant_size(self, ibbe_system, rng):
        """The paper's headline metadata property (Fig. 2b)."""
        msk, pk = ibbe_system
        _, small = ibbe.encrypt_msk(msk, pk, USERS[:1], rng)
        _, large = ibbe.encrypt_msk(msk, pk, USERS, rng)
        assert small.size_bytes() == large.size_bytes()

    def test_malformed_rejected(self, group):
        with pytest.raises(SchemeError):
            ibbe.IbbeCiphertext.decode(group, b"nonsense")
