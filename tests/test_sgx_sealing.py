"""Sealing tests: identity binding, tamper detection, policies."""

import pytest

from repro.crypto.rng import DeterministicRng
from repro.errors import SealingError
from repro.sgx.sealing import (
    POLICY_MRENCLAVE,
    POLICY_MRSIGNER,
    derive_seal_key,
    seal,
    unseal,
)

DEVICE = b"d" * 32
IDENTITY = b"m" * 32


@pytest.fixture()
def blob(rng):
    return seal(DEVICE, IDENTITY, b"master secret", rng)


class TestSealing:
    def test_roundtrip(self, blob):
        assert unseal(DEVICE, IDENTITY, blob) == b"master secret"

    def test_wrong_identity_fails(self, blob):
        with pytest.raises(SealingError):
            unseal(DEVICE, b"x" * 32, blob)

    def test_wrong_device_fails(self, blob):
        with pytest.raises(SealingError):
            unseal(b"e" * 32, IDENTITY, blob)

    def test_tamper_fails(self, blob):
        tampered = blob[:-1] + bytes([blob[-1] ^ 1])
        with pytest.raises(SealingError):
            unseal(DEVICE, IDENTITY, tampered)

    def test_not_a_blob(self):
        with pytest.raises(SealingError):
            unseal(DEVICE, IDENTITY, b"junk")

    def test_aad_binding(self, rng):
        blob = seal(DEVICE, IDENTITY, b"s", rng, aad=b"gk:group1")
        assert unseal(DEVICE, IDENTITY, blob, aad=b"gk:group1") == b"s"
        with pytest.raises(SealingError):
            unseal(DEVICE, IDENTITY, blob, aad=b"gk:group2")

    def test_randomized_blobs(self, rng):
        a = seal(DEVICE, IDENTITY, b"s", rng)
        b = seal(DEVICE, IDENTITY, b"s", rng)
        assert a != b
        assert unseal(DEVICE, IDENTITY, a) == unseal(DEVICE, IDENTITY, b)


class TestPolicies:
    def test_policy_keys_differ(self):
        a = derive_seal_key(DEVICE, IDENTITY, POLICY_MRENCLAVE)
        b = derive_seal_key(DEVICE, IDENTITY, POLICY_MRSIGNER)
        assert a != b

    def test_unknown_policy(self):
        with pytest.raises(SealingError):
            derive_seal_key(DEVICE, IDENTITY, "WHATEVER")

    def test_mrsigner_roundtrip(self, rng):
        blob = seal(DEVICE, b"vendor", b"s", rng, policy=POLICY_MRSIGNER)
        assert unseal(DEVICE, b"vendor", blob) == b"s"
