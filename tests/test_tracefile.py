"""Trace file round-trip and validation tests, plus the CLI trace flow."""

import pytest

from repro.cli import main
from repro.errors import StorageError
from repro.workloads import (
    generate_trace,
    load_trace,
    save_trace,
    synthesize_kernel_trace,
)
from repro.workloads.kernel_trace import KernelTraceConfig


class TestRoundtrip:
    def test_synthetic(self, tmp_path):
        trace = generate_trace(100, 0.4, seed="tf")
        path = tmp_path / "t.jsonl"
        save_trace(path, trace)
        assert load_trace(path) == trace

    def test_kernel(self, tmp_path):
        trace = synthesize_kernel_trace(KernelTraceConfig(scale=0.001))
        path = tmp_path / "k.jsonl"
        save_trace(path, trace)
        loaded = load_trace(path)
        assert loaded == trace

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "e.jsonl"
        save_trace(path, [])
        assert load_trace(path) == []


class TestValidation:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "add", "user": "x"}\n')
        with pytest.raises(StorageError):
            load_trace(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "other"}\n')
        with pytest.raises(StorageError):
            load_trace(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "repro-trace", "version": 99}\n')
        with pytest.raises(StorageError):
            load_trace(path)

    def test_bad_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format": "repro-trace", "version": 1}\n'
            '{"kind": "explode", "user": "x"}\n'
        )
        with pytest.raises(StorageError):
            load_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(StorageError):
            load_trace(path)


class TestCliTraceFlow:
    def test_gen_and_replay(self, tmp_path, capsys):
        state, cloud = str(tmp_path / "st"), str(tmp_path / "cl")
        assert main(["init", "--state", state, "--cloud", cloud,
                     "--params", "toy64", "--capacity", "4",
                     "--bound", "8"]) == 0
        trace_path = str(tmp_path / "trace.jsonl")
        assert main(["gen-trace", "--ops", "20", "--rate", "0.2",
                     "--out", trace_path]) == 0
        capsys.readouterr()
        assert main(["replay", "--state", state, "--cloud", cloud,
                     "--trace", trace_path, "--sample-every", "5"]) == 0
        out = capsys.readouterr().out
        assert "replayed 20 operations" in out
        assert "mean client decrypt" in out

    def test_replay_with_injected_faults(self, tmp_path, capsys):
        """--faults SEED injects transient store faults that the retry
        layers absorb: the replay still applies every operation."""
        state, cloud = str(tmp_path / "st"), str(tmp_path / "cl")
        assert main(["init", "--state", state, "--cloud", cloud,
                     "--params", "toy64", "--capacity", "4",
                     "--bound", "8"]) == 0
        trace_path = str(tmp_path / "trace.jsonl")
        assert main(["gen-trace", "--ops", "12", "--rate", "0.2",
                     "--out", trace_path]) == 0
        capsys.readouterr()
        assert main(["replay", "--state", state, "--cloud", cloud,
                     "--trace", trace_path, "--faults", "cli-chaos"]) == 0
        out = capsys.readouterr().out
        assert "replayed 12 operations" in out
        assert "injected (seed 'cli-chaos')" in out

    def test_gen_kernel_trace(self, tmp_path, capsys):
        trace_path = str(tmp_path / "k.jsonl")
        assert main(["gen-trace", "--kind", "kernel", "--scale", "0.001",
                     "--out", trace_path]) == 0
        assert load_trace(trace_path)
