"""Boneh-Franklin IBE tests (the HE-IBE primitive)."""

import pytest

from repro import ibe
from repro.crypto.rng import DeterministicRng
from repro.errors import AuthenticationError, SchemeError


@pytest.fixture(scope="module")
def ibe_setup(group):
    rng = DeterministicRng("ibe-fixture")
    msk, params = ibe.setup(group, rng)
    return msk, params, rng


class TestIbe:
    def test_roundtrip(self, ibe_setup):
        msk, params, rng = ibe_setup
        key = ibe.extract(msk, params, "alice@example.com")
        ct = ibe.encrypt(params, "alice@example.com", b"the group key", rng)
        assert ibe.decrypt(params, key, ct) == b"the group key"

    def test_identity_is_the_public_key(self, ibe_setup):
        """Encryption requires no per-user registration."""
        msk, params, rng = ibe_setup
        ct = ibe.encrypt(params, "never-seen-before", b"m", rng)
        key = ibe.extract(msk, params, "never-seen-before")
        assert ibe.decrypt(params, key, ct) == b"m"

    def test_wrong_identity_cannot_decrypt(self, ibe_setup):
        msk, params, rng = ibe_setup
        ct = ibe.encrypt(params, "alice", b"m", rng)
        eve = ibe.extract(msk, params, "eve")
        with pytest.raises(AuthenticationError):
            ibe.decrypt(params, eve, ct)

    def test_wrong_authority_cannot_decrypt(self, ibe_setup, group):
        msk, params, rng = ibe_setup
        other_msk, other_params = ibe.setup(group, DeterministicRng("other"))
        ct = ibe.encrypt(params, "alice", b"m", rng)
        foreign = ibe.extract(other_msk, other_params, "alice")
        with pytest.raises(AuthenticationError):
            ibe.decrypt(params, foreign, ct)

    def test_randomized_ciphertexts(self, ibe_setup):
        _, params, rng = ibe_setup
        a = ibe.encrypt(params, "alice", b"m", rng)
        b = ibe.encrypt(params, "alice", b"m", rng)
        assert a.encode() != b.encode()

    def test_ciphertext_size_linear_in_message(self, ibe_setup):
        _, params, rng = ibe_setup
        base = ibe.encrypt(params, "alice", b"", rng).size_bytes()
        bigger = ibe.encrypt(params, "alice", bytes(100), rng).size_bytes()
        assert bigger == base + 100

    def test_empty_body_rejected(self, ibe_setup):
        msk, params, rng = ibe_setup
        key = ibe.extract(msk, params, "alice")
        bad = ibe.IbeCiphertext(u=params.p_pub, body=b"short")
        with pytest.raises(SchemeError):
            ibe.decrypt(params, key, bad)

    def test_tampered_body_rejected(self, ibe_setup):
        msk, params, rng = ibe_setup
        key = ibe.extract(msk, params, "alice")
        ct = ibe.encrypt(params, "alice", b"m", rng)
        tampered = ibe.IbeCiphertext(
            u=ct.u, body=ct.body[:-1] + bytes([ct.body[-1] ^ 1])
        )
        with pytest.raises(AuthenticationError):
            ibe.decrypt(params, key, tampered)

    def test_hash_identity_in_subgroup(self, ibe_setup, group):
        _, params, _ = ibe_setup
        q_id = params.hash_identity("anyone")
        assert (q_id ** group.q).is_identity()
        assert not q_id.is_identity()
